//! Failure-injection and edge-regime tests: the implementations stay
//! well-defined under pathological networks, total message loss, mass
//! crashes, absorbing parameter regimes, and degenerate environments.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn::core::{
    assert_distribution, BernoulliRewards, FinitePopulation, GroupDynamics, Params, RewardModel,
};
use sociolearn::dist::{DistConfig, EventRuntime, FaultPlan, Runtime};
use sociolearn::env::PeriodicRewards;
use sociolearn::graph::Graph;
use sociolearn::network::NetworkPopulation;

#[test]
fn dist_total_message_loss_degrades_to_adoption_only() {
    let params = Params::new(2, 0.65).unwrap();
    let cfg = DistConfig::new(params, 300).with_faults(FaultPlan::with_drop_prob(1.0).unwrap());
    let mut net = Runtime::new(cfg, 1);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
    let mut rewards = vec![false; 2];
    let mut share = 0.0;
    for t in 1..=100 {
        env.sample(t, &mut rng, &mut rewards);
        net.round(&rewards);
        share += net.distribution()[0];
    }
    share /= 100.0;
    assert_distribution(&net.distribution(), 1e-12);
    // Adoption-only keeps a quality-proportional split, clearly above
    // 1/2 but below a converged population.
    assert!(share > 0.55 && share < 0.95, "share {share}");
    assert_eq!(net.metrics().replies_received, 0);
}

#[test]
fn dist_all_nodes_crash_is_silent_but_defined() {
    let mut fault = FaultPlan::none();
    for i in 0..50 {
        fault = fault.crash(i, 1);
    }
    let params = Params::new(2, 0.65).unwrap();
    let mut net = Runtime::new(DistConfig::new(params, 50).with_faults(fault), 3);
    for _ in 0..10 {
        let rm = net.round(&[true, false]);
        assert_eq!(rm.alive, 0);
        assert_eq!(rm.committed, 0);
        assert_eq!(rm.queries_sent, 0);
    }
    // Distribution falls back to uniform once nobody is committed.
    assert_eq!(net.distribution(), vec![0.5, 0.5]);
}

#[test]
fn dist_half_crash_mid_run_still_converges() {
    let params = Params::new(2, 0.65).unwrap();
    let n = 400;
    let mut fault = FaultPlan::none();
    for i in 0..n / 2 {
        fault = fault.crash(i, 50);
    }
    let mut net = Runtime::new(DistConfig::new(params, n).with_faults(fault), 4);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
    let mut rewards = vec![false; 2];
    let mut tail_share = 0.0;
    for t in 1..=300 {
        env.sample(t, &mut rng, &mut rewards);
        net.round(&rewards);
        if t > 200 {
            tail_share += net.distribution()[0];
        }
    }
    tail_share /= 100.0;
    assert!(
        tail_share > 0.8,
        "survivors failed to converge: {tail_share}"
    );
}

#[test]
fn event_total_message_loss_degrades_to_adoption_only() {
    let params = Params::new(2, 0.65).unwrap();
    let cfg = DistConfig::new(params, 300).with_faults(FaultPlan::with_drop_prob(1.0).unwrap());
    let mut net = EventRuntime::new(cfg, 1);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
    let mut rewards = vec![false; 2];
    let mut share = 0.0;
    for t in 1..=100 {
        env.sample(t, &mut rng, &mut rewards);
        net.tick(&rewards);
        share += net.distribution()[0];
    }
    share /= 100.0;
    assert_distribution(&net.distribution(), 1e-12);
    // Adoption-only keeps a quality-proportional split, clearly above
    // 1/2 but below a converged population.
    assert!(share > 0.55 && share < 0.95, "share {share}");
    assert_eq!(net.metrics().replies_received, 0);
    // Every alive node burns its whole retry budget before falling
    // back, every epoch.
    assert!(net.metrics().fallbacks >= 100);
}

#[test]
fn event_all_nodes_crash_is_silent_but_defined() {
    let mut fault = FaultPlan::none();
    for i in 0..50 {
        fault = fault.crash(i, 1);
    }
    let params = Params::new(2, 0.65).unwrap();
    let mut net = EventRuntime::new(DistConfig::new(params, 50).with_faults(fault), 3);
    for _ in 0..10 {
        let rm = net.tick(&[true, false]);
        assert_eq!(rm.alive, 0);
        assert_eq!(rm.committed, 0);
        assert_eq!(rm.queries_sent, 0);
    }
    assert_eq!(net.alive_count(), 0);
    assert_eq!(net.distribution(), vec![0.5, 0.5]);
}

#[test]
fn event_half_crash_mid_run_still_converges() {
    let params = Params::new(2, 0.65).unwrap();
    let n = 400;
    let mut fault = FaultPlan::none();
    for i in 0..n / 2 {
        fault = fault.crash(i, 50);
    }
    let mut net = EventRuntime::new(DistConfig::new(params, n).with_faults(fault), 4);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
    let mut rewards = vec![false; 2];
    let mut tail_share = 0.0;
    for t in 1..=300 {
        env.sample(t, &mut rng, &mut rewards);
        net.tick(&rewards);
        if t > 200 {
            tail_share += net.distribution()[0];
        }
    }
    tail_share /= 100.0;
    assert_eq!(net.alive_count(), n / 2);
    assert!(
        tail_share > 0.8,
        "survivors failed to converge: {tail_share}"
    );
}

#[test]
fn event_starved_queue_keeps_learning_under_loss_and_crashes() {
    // Worst of every world at once: inbox bound 1, 30% message loss,
    // and a fifth of the fleet crashing early. The runtime must stay
    // well-defined and keep a learning signal.
    let params = Params::new(2, 0.65).unwrap();
    let n = 200;
    let mut fault = FaultPlan::with_drop_prob(0.3).unwrap();
    for i in 0..n / 5 {
        fault = fault.crash(i, 20);
    }
    let mut net =
        EventRuntime::new(DistConfig::new(params, n).with_faults(fault), 6).with_queue_bound(1);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
    let mut rewards = vec![false; 2];
    let mut tail_share = 0.0;
    for t in 1..=300 {
        env.sample(t, &mut rng, &mut rewards);
        net.tick(&rewards);
        assert_distribution(&net.distribution(), 1e-12);
        if t > 200 {
            tail_share += net.distribution()[0];
        }
    }
    tail_share /= 100.0;
    assert!(net.max_queue_depth() <= 1);
    assert!(net.metrics().queue_drops > 0, "bound 1 never backpressured");
    assert!(tail_share > 0.6, "fleet stopped learning: {tail_share}");
}

#[test]
fn network_disconnected_components_learn_independently() {
    // Two components: a clique of 50 and an isolated path of 2.
    let mut edges = Vec::new();
    for a in 0..50usize {
        for b in (a + 1)..50 {
            edges.push((a, b));
        }
    }
    edges.push((50, 51));
    let g = Graph::from_edges(52, &edges).unwrap();
    assert!(!g.is_connected());

    let params = Params::new(2, 0.65).unwrap();
    let mut pop = NetworkPopulation::new(params, g);
    let mut rng = SmallRng::seed_from_u64(6);
    let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
    let mut rewards = vec![false; 2];
    for t in 1..=300 {
        env.sample(t, &mut rng, &mut rewards);
        pop.step(&rewards, &mut rng);
        assert_distribution(&pop.distribution(), 1e-12);
    }
    // The big component dominates the counts; global share converges.
    assert!(pop.distribution()[0] > 0.8);
}

#[test]
fn mu_zero_absorption_is_permanent() {
    // Force extinction of option 0, then verify it can never return
    // when mu = 0 (the absorbing state the paper's mu > 0 rules out).
    let params = Params::with_all(2, 0.65, 0.35, 0.0).unwrap();
    let mut pop = FinitePopulation::from_counts(params, 100, vec![0, 100]);
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..200 {
        pop.step(&[true, true], &mut rng);
        assert_eq!(pop.counts()[0], 0, "extinct option revived despite mu = 0");
    }
}

#[test]
fn always_bad_rewards_keep_population_defined() {
    // alpha = 0 and all-bad rewards: everyone sits out every step; the
    // dynamics must keep reporting the uniform fallback, not NaN.
    let params = Params::with_all(3, 0.9, 0.0, 0.1).unwrap();
    let mut pop = FinitePopulation::new(params, 500);
    let mut rng = SmallRng::seed_from_u64(8);
    for _ in 0..50 {
        pop.step(&[false, false, false], &mut rng);
        assert_distribution(&pop.distribution(), 1e-12);
    }
    assert_eq!(pop.distribution(), vec![1.0 / 3.0; 3]);
}

#[test]
fn adversarial_periodic_rewards_do_not_break_invariants() {
    let params = Params::new(2, 0.6).unwrap();
    let mut env = PeriodicRewards::alternating(5, 5).unwrap();
    let mut pop = FinitePopulation::new(params, 1_000);
    let mut rng = SmallRng::seed_from_u64(9);
    let mut rewards = vec![false; 2];
    let mut share = 0.0;
    let steps = 400;
    for t in 1..=steps {
        env.sample(t, &mut rng, &mut rewards);
        pop.step(&rewards, &mut rng);
        assert_distribution(&pop.distribution(), 1e-12);
        share += pop.distribution()[0];
    }
    share /= steps as f64;
    // Symmetric duty cycle: neither option should dominate on average.
    assert!((share - 0.5).abs() < 0.15, "share {share}");
}

#[test]
fn single_option_population_is_trivially_stable() {
    let params = Params::new(1, 0.6).unwrap();
    let mut pop = FinitePopulation::new(params, 100);
    let mut rng = SmallRng::seed_from_u64(10);
    for _ in 0..20 {
        pop.step(&[true], &mut rng);
        assert_eq!(pop.distribution(), vec![1.0]);
    }
}
