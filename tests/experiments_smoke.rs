//! Smoke tests of the reproduction suite through its public API: every
//! registered experiment runs in quick mode, passes its paper check,
//! and writes its artifacts.

use sociolearn::experiments::{registry, run_by_id, ExpContext};

fn ctx(tag: &str) -> ExpContext {
    let dir = std::env::temp_dir().join(format!("sociolearn_smoke_{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    ExpContext::new(dir, true, 20170508)
}

#[test]
fn registry_covers_all_paper_claims() {
    let reg = registry();
    assert_eq!(reg.len(), 18);
    // Spot-check that the headline theorems are represented.
    let titles: Vec<&str> = reg.iter().map(|e| e.title).collect();
    assert!(titles.iter().any(|t| t.contains("Theorem 4.3")));
    assert!(titles.iter().any(|t| t.contains("Theorem 4.4")));
    assert!(titles.iter().any(|t| t.contains("Lemma 4.5")));
    assert!(titles.iter().any(|t| t.contains("Theorem 4.6")));
}

#[test]
fn headline_theorem_experiments_pass_and_write_artifacts() {
    let ctx = ctx("headline");
    for id in ["E1", "E4"] {
        let report = run_by_id(id, &ctx).expect("experiment runs");
        assert!(report.pass, "{id} failed:\n{}", report.render());
        assert!(ctx.path(&format!("{id}.md")).exists(), "{id}.md missing");
        assert!(ctx.path(&format!("{id}.csv")).exists(), "{id}.csv missing");
    }
}

#[test]
fn mechanism_experiments_pass() {
    let ctx = ctx("mechanism");
    for id in ["E7", "E8", "E13"] {
        let report = run_by_id(id, &ctx).expect("experiment runs");
        assert!(report.pass, "{id} failed:\n{}", report.render());
    }
}

#[test]
fn extension_experiments_pass() {
    let ctx = ctx("extension");
    for id in ["E11", "E15", "E17", "E19"] {
        let report = run_by_id(id, &ctx).expect("experiment runs");
        assert!(report.pass, "{id} failed:\n{}", report.render());
    }
}

#[test]
fn reports_mention_their_seeds() {
    let ctx = ctx("seeded");
    let report = run_by_id("E2", &ctx).expect("experiment runs");
    assert!(
        report.markdown.contains("20170508"),
        "report should cite its seed for reproducibility"
    );
}
