//! Property-based invariants across the workspace: for arbitrary valid
//! parameters and reward sequences, every dynamics maintains a valid
//! distribution, counts conserve, and the analytic helpers obey their
//! algebraic identities.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn::core::{
    assert_distribution, ratio_deviation, sample_categorical, sample_multinomial, tv_distance,
    AgentPopulation, AliasTable, FinitePopulation, GroupDynamics, InfiniteDynamics, Params,
    StochasticMwu,
};
use sociolearn::dist::{
    DistConfig, EventRuntime, FaultPlan, RoundMetrics, Runtime, SchedulerKind, StalenessBound,
};
use sociolearn::stats::Summary;

/// Strategy: valid model parameters (alpha <= beta enforced).
fn params_strategy() -> impl Strategy<Value = Params> {
    (2usize..8, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(m, beta, frac, mu)| {
        let alpha = beta * frac;
        Params::with_all(m, beta, alpha, mu).expect("constructed within bounds")
    })
}

/// Strategy: a reward sequence of the given width.
fn rewards_strategy(m: usize, steps: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), m), steps)
}

/// Build a conflict-free membership script: optional flash-crowd joins
/// on the last `flash` ids, plus leave→rejoin pairs on distinct stable
/// nodes drawn from the raw churn tuples.
fn membership_plan(
    n: usize,
    drop: f64,
    flash: usize,
    churn: &[(usize, u64, u64)],
) -> (FaultPlan, usize) {
    let flash = flash.min(n.saturating_sub(2));
    let mut fault = FaultPlan::with_drop_prob(drop).expect("valid drop prob");
    if flash > 0 {
        fault = fault.flash_crowd(flash, 3);
    }
    let stable = n - flash;
    let mut used = std::collections::HashSet::new();
    for &(node, round, gap) in churn {
        let node = node % stable;
        if !used.insert(node) {
            continue;
        }
        fault = fault.leave(node, round).rejoin(node, round + gap);
    }
    (fault, n - flash)
}

/// Drive one runtime through `steps` rounds and check the
/// membership-aware invariants: `alive` follows exact conservation
/// (previous alive + joins + rejoins − leaves — it may now *increase*),
/// commits never exceed the live population, and the bootstrapping
/// gauge stays within it. Returns the cumulative (joins, leaves,
/// rejoins) flow so callers can compare runtimes against each other.
fn check_membership_run<F: FnMut(&[bool]) -> RoundMetrics>(
    mut step: F,
    initial_alive: usize,
    n: usize,
    m: usize,
    steps: usize,
    seed: u64,
    barriered: bool,
) -> Result<(u64, u64, u64), TestCaseError> {
    let mut reward_rng = SmallRng::seed_from_u64(seed ^ 0xC0DE);
    let mut expected = initial_alive;
    let mut totals = (0u64, 0u64, 0u64);
    for _ in 0..steps {
        let rewards: Vec<bool> = (0..m)
            .map(|_| rand::Rng::gen_bool(&mut reward_rng, 0.5))
            .collect();
        let rm = step(&rewards);
        expected = expected + rm.joins as usize + rm.rejoins as usize - rm.leaves as usize;
        prop_assert_eq!(
            rm.alive,
            expected,
            "round {}: alive must equal previous alive + joins + rejoins - leaves",
            rm.round
        );
        prop_assert!(rm.alive <= n);
        prop_assert!(rm.bootstrapping <= rm.alive as u64);
        if barriered {
            prop_assert!(rm.committed <= rm.alive);
            // Barriered execution resolves every bootstrap within its
            // round, so the gauge equals the inbound flow.
            prop_assert_eq!(rm.bootstrapping, rm.joins + rm.rejoins);
        } else {
            // Async ticks may land several catch-up epochs at once, so
            // commits are bounded by resolved stage-1 outcomes instead
            // of the instantaneous population.
            prop_assert!(
                (rm.committed as u64) <= rm.explorations + rm.fallbacks + rm.replies_received
            );
        }
        totals.0 += rm.joins;
        totals.1 += rm.leaves;
        totals.2 += rm.rejoins;
    }
    Ok(totals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn finite_population_invariants(
        params in params_strategy(),
        seed in any::<u64>(),
        steps in 1usize..30,
        n in 1usize..500,
    ) {
        let m = params.num_options();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pop = FinitePopulation::new(params, n);
        let mut reward_rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..steps {
            let rewards: Vec<bool> = (0..m).map(|_| rand::Rng::gen_bool(&mut reward_rng, 0.5)).collect();
            let rec = pop.step_detailed(&rewards, &mut rng);
            prop_assert_eq!(rec.sampled.iter().sum::<u64>(), n as u64);
            prop_assert!(rec.total_committed() <= n as u64);
            for (s, d) in rec.sampled.iter().zip(&rec.committed) {
                prop_assert!(d <= s);
            }
            assert_distribution(&pop.distribution(), 1e-9);
        }
    }

    #[test]
    fn agent_population_invariants(
        params in params_strategy(),
        seed in any::<u64>(),
        steps in 1usize..20,
        n in 1usize..200,
    ) {
        let m = params.num_options();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pop = AgentPopulation::new(params, n);
        let mut reward_rng = SmallRng::seed_from_u64(seed ^ 0x1234);
        for _ in 0..steps {
            let rewards: Vec<bool> = (0..m).map(|_| rand::Rng::gen_bool(&mut reward_rng, 0.5)).collect();
            pop.step(&rewards, &mut rng);
            assert_distribution(&pop.distribution(), 1e-9);
            let committed: u64 = pop.counts().iter().sum();
            prop_assert_eq!(committed, pop.choices().iter().flatten().count() as u64);
        }
    }

    #[test]
    fn infinite_and_mwu_identical_for_any_rewards(
        params in params_strategy(),
        rewards in rewards_strategy(4, 25),
    ) {
        // Re-map params to m=4 to match the reward width.
        let params = Params::with_all(4, params.beta().max(0.01), params.alpha().min(params.beta().max(0.01)), params.mu())
            .expect("valid");
        // Skip the degenerate case where both adopt probabilities are 0
        // (weights collapse to zero and the distribution is undefined).
        prop_assume!(params.alpha() > 0.0 || params.beta() > 0.0);
        let mut inf = InfiniteDynamics::new(params);
        let mut mwu = StochasticMwu::new(params);
        for row in &rewards {
            // All-false rewards with alpha == 0 kill every weight; the
            // paper's regime always has alpha > 0, so skip those rows.
            if params.alpha() == 0.0 && row.iter().all(|&r| !r) {
                continue;
            }
            inf.step_rewards(row);
            mwu.step_rewards(row);
            let a = inf.distribution();
            let b = mwu.distribution();
            assert_distribution(&a, 1e-9);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9, "divergence: {} vs {}", x, y);
            }
        }
    }

    #[test]
    fn deviation_metrics_algebra(
        p in proptest::collection::vec(0.01f64..1.0, 4),
        q in proptest::collection::vec(0.01f64..1.0, 4),
    ) {
        // Normalize into distributions.
        let zp: f64 = p.iter().sum();
        let zq: f64 = q.iter().sum();
        let p: Vec<f64> = p.iter().map(|x| x / zp).collect();
        let q: Vec<f64> = q.iter().map(|x| x / zq).collect();

        let dev_pq = ratio_deviation(&p, &q);
        let dev_qp = ratio_deviation(&q, &p);
        prop_assert!((dev_pq - dev_qp).abs() < 1e-12, "ratio deviation must be symmetric");
        prop_assert!(dev_pq >= 0.0);
        prop_assert!(ratio_deviation(&p, &p).abs() < 1e-12);

        let tv = tv_distance(&p, &q);
        prop_assert!((0.0..=1.0).contains(&tv));
        prop_assert!((tv - tv_distance(&q, &p)).abs() < 1e-12);
        // TV is dominated by the multiplicative deviation:
        // |p - q| <= dev * min(p, q) pointwise.
        prop_assert!(tv <= dev_pq / 2.0 * 4.0 + 1e-9);
    }

    #[test]
    fn multinomial_conserves_and_respects_support(
        n in 0u64..5_000,
        weights in proptest::collection::vec(0.0f64..10.0, 2..8),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = vec![0u64; weights.len()];
        sample_multinomial(&mut rng, n, &weights, &mut out);
        prop_assert_eq!(out.iter().sum::<u64>(), n);
        for (w, &count) in weights.iter().zip(&out) {
            if *w == 0.0 {
                prop_assert_eq!(count, 0, "zero-weight category drawn");
            }
        }
    }

    #[test]
    fn multinomial_conserves_with_interleaved_zero_weights(
        n in 0u64..5_000,
        // Each slot is independently forced to an exact 0.0 or given a
        // positive weight, so zeros land at every position — including
        // the trailing positions the drifted-mass fallback used to
        // dump leftover trials on.
        slots in proptest::collection::vec((any::<bool>(), 0.01f64..10.0), 2..10),
        seed in any::<u64>(),
    ) {
        let weights: Vec<f64> = slots
            .iter()
            .map(|&(zero, w)| if zero { 0.0 } else { w })
            .collect();
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = vec![0u64; weights.len()];
        sample_multinomial(&mut rng, n, &weights, &mut out);
        prop_assert_eq!(out.iter().sum::<u64>(), n, "trials not conserved");
        for (w, &count) in weights.iter().zip(&out) {
            if *w == 0.0 {
                prop_assert_eq!(count, 0, "zero-weight category drawn");
            }
        }
    }

    #[test]
    fn categorical_never_returns_zero_weight(
        slots in proptest::collection::vec((any::<bool>(), 0.01f64..10.0), 1..10),
        seed in any::<u64>(),
    ) {
        let weights: Vec<f64> = slots
            .iter()
            .map(|&(zero, w)| if zero { 0.0 } else { w })
            .collect();
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = sample_categorical(&mut rng, &weights);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "drew zero-weight category {}", i);
        }
    }

    #[test]
    fn alias_table_respects_support(
        weights in proptest::collection::vec(0.0f64..10.0, 1..16),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).expect("positive total");
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {}", i);
        }
    }

    #[test]
    fn params_bounds_consistent(beta in 0.501f64..0.731) {
        let p = Params::new(5, beta).expect("valid beta");
        // delta and beta are inverse through the logistic map.
        let d = p.delta();
        let back = d.exp() / (1.0 + d.exp());
        prop_assert!((back - beta).abs() < 1e-9);
        // Bounds scale consistently.
        prop_assert!((p.regret_bound_finite() - 2.0 * p.regret_bound_infinite()).abs() < 1e-12);
        // Horizons: floor start needs at least as long as uniform.
        prop_assert!(p.epoch_length() >= p.min_horizon());
        // The default mu respects the regime.
        prop_assert!(p.in_theorem_regime().is_ok());
    }

    #[test]
    fn dist_runtime_invariants(
        seed in any::<u64>(),
        m in 2usize..5,
        n in 1usize..80,
        steps in 1usize..15,
        drop in 0.0f64..=1.0,
        crashes in proptest::collection::vec((0usize..80, 1u64..15), 0..6),
    ) {
        let params = Params::new(m, 0.65).expect("valid");
        let mut fault = FaultPlan::with_drop_prob(drop).expect("valid drop prob");
        for (node, round) in crashes {
            fault = fault.crash(node % n, round);
        }
        let mut net = Runtime::new(DistConfig::new(params, n).with_faults(fault), seed);
        let mut reward_rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        for _ in 0..steps {
            let rewards: Vec<bool> =
                (0..m).map(|_| rand::Rng::gen_bool(&mut reward_rng, 0.5)).collect();
            let rm = net.round(&rewards);
            // Round metrics are mutually consistent.
            prop_assert!(rm.committed <= rm.alive);
            prop_assert!(rm.alive <= n);
            prop_assert!(rm.replies_received <= rm.queries_sent);
            // The distribution is always a distribution, committed or
            // not (uniform fallback when nobody is committed).
            assert_distribution(&net.distribution(), 1e-9);
        }
        let totals = net.metrics();
        prop_assert_eq!(totals.rounds, steps as u64);
        prop_assert!(totals.replies_received <= totals.queries_sent);
    }

    #[test]
    fn event_runtime_invariants(
        seed in any::<u64>(),
        m in 2usize..5,
        n in 1usize..80,
        steps in 1usize..15,
        drop in 0.0f64..=1.0,
        queue_bound in 1usize..40,
        crashes in proptest::collection::vec((0usize..80, 1u64..15), 0..6),
    ) {
        let params = Params::new(m, 0.65).expect("valid");
        let mut fault = FaultPlan::with_drop_prob(drop).expect("valid drop prob");
        for (node, round) in crashes {
            fault = fault.crash(node % n, round);
        }
        let mut net = EventRuntime::new(DistConfig::new(params, n).with_faults(fault), seed)
            .with_queue_bound(queue_bound);
        let mut reward_rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        for _ in 0..steps {
            let rewards: Vec<bool> =
                (0..m).map(|_| rand::Rng::gen_bool(&mut reward_rng, 0.5)).collect();
            let rm = net.tick(&rewards);
            // Round metrics are mutually consistent.
            prop_assert!(rm.committed <= rm.alive);
            prop_assert!(rm.alive <= n);
            // The O(1) running counter now reports next epoch's
            // population, which crashes can only shrink.
            prop_assert!(rm.alive >= net.alive_count());
            prop_assert!(rm.replies_received <= rm.queries_sent);
            prop_assert!(rm.queries_sent <= (n as u64) * 8);
            // Every alive node resolves stage 1 exactly once per epoch.
            prop_assert!(
                rm.explorations + rm.fallbacks + rm.replies_received >= rm.alive as u64
            );
            // The bounded inbox really is bounded.
            prop_assert!(net.max_queue_depth() <= queue_bound);
            // The distribution is always a distribution, committed or
            // not (uniform fallback when nobody is committed).
            assert_distribution(&net.distribution(), 1e-9);
        }
        let totals = net.metrics();
        prop_assert_eq!(totals.rounds, steps as u64);
        prop_assert!(totals.replies_received <= totals.queries_sent);
    }

    #[test]
    fn async_event_runtime_invariants(
        seed in any::<u64>(),
        m in 2usize..5,
        n in 1usize..60,
        steps in 1usize..12,
        drop in 0.0f64..=1.0,
        // 0..6 are finite staleness bounds; 6 encodes `Unbounded`.
        raw_bound in 0u64..7,
        crashes in proptest::collection::vec((0usize..60, 1u64..12), 0..4),
    ) {
        let params = Params::new(m, 0.65).expect("valid");
        let mut fault = FaultPlan::with_drop_prob(drop).expect("valid drop prob");
        for (node, round) in crashes {
            fault = fault.crash(node % n, round);
        }
        let bound = (raw_bound < 6).then_some(raw_bound);
        let sb = bound.map_or(StalenessBound::Unbounded, StalenessBound::Epochs);
        let mut net = EventRuntime::new(DistConfig::new(params, n).with_faults(fault), seed)
            .with_async_epochs(sb);
        let mut reward_rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let mut prev_epochs: Vec<u64> = vec![0; n];
        for t in 1..=steps as u64 {
            let rewards: Vec<bool> =
                (0..m).map(|_| rand::Rng::gen_bool(&mut reward_rng, 0.5)).collect();
            let rm = net.tick(&rewards);
            // Per-node local epochs are monotone and capped by the
            // cadence (about one epoch per tick, never more than a
            // couple ahead of the tick count).
            for (i, prev) in prev_epochs.iter_mut().enumerate() {
                let e = net.local_epoch(i);
                prop_assert!(e >= *prev, "node {i} epoch went backwards");
                prop_assert!(e <= t + 2, "node {i} outran the cadence");
                *prev = e;
            }
            // An unbounded staleness bound never withholds a reply.
            if bound.is_none() {
                prop_assert_eq!(rm.stale_replies, 0);
            }
            // Every commit comes from a resolved stage 1.
            prop_assert!(
                (rm.committed as u64) <= rm.explorations + rm.fallbacks + rm.replies_received
            );
            prop_assert!(rm.replies_received <= rm.queries_sent);
            prop_assert!(net.max_queue_depth() <= net.queue_bound());
            // The distribution is always a distribution, whatever mix
            // of local epochs the fleet is spread over.
            assert_distribution(&net.distribution(), 1e-9);
        }
        let totals = net.metrics();
        prop_assert_eq!(totals.rounds, steps as u64);
        prop_assert!(totals.replies_received <= totals.queries_sent);
        if bound.is_none() {
            prop_assert_eq!(totals.stale_replies, 0);
        }
    }

    #[test]
    fn async_event_runtime_deterministic_for_fixed_seed(
        seed in any::<u64>(),
        n in 1usize..50,
        drop in 0.0f64..=0.9,
        // 0..4 are finite staleness bounds; 4 encodes `Unbounded`.
        raw_bound in 0u64..5,
    ) {
        let params = Params::new(3, 0.6).expect("valid");
        let sb = if raw_bound < 4 {
            StalenessBound::Epochs(raw_bound)
        } else {
            StalenessBound::Unbounded
        };
        let run = |seed: u64| {
            let fault = FaultPlan::with_drop_prob(drop).expect("valid").crash(0, 5);
            let mut net = EventRuntime::new(DistConfig::new(params, n).with_faults(fault), seed)
                .with_async_epochs(sb);
            let mut dists = Vec::new();
            for t in 0..10u64 {
                net.tick(&[t % 2 == 0, t % 3 == 0, true]);
                dists.push(net.distribution());
            }
            (dists, net.metrics())
        };
        let (da, ma) = run(seed);
        let (db, mb) = run(seed);
        prop_assert_eq!(da, db, "same seed must reproduce the trajectory");
        prop_assert_eq!(ma, mb, "same seed must reproduce the message counters");
    }

    #[test]
    fn event_runtime_deterministic_for_fixed_seed(
        seed in any::<u64>(),
        n in 1usize..60,
        drop in 0.0f64..=0.9,
        queue_bound in 1usize..20,
    ) {
        let params = Params::new(3, 0.6).expect("valid");
        let run = |seed: u64| {
            let fault = FaultPlan::with_drop_prob(drop).expect("valid").crash(0, 5);
            let mut net = EventRuntime::new(DistConfig::new(params, n).with_faults(fault), seed)
                .with_queue_bound(queue_bound);
            let mut dists = Vec::new();
            for t in 0..10u64 {
                net.tick(&[t % 2 == 0, t % 3 == 0, true]);
                dists.push(net.distribution());
            }
            (dists, net.metrics())
        };
        let (da, ma) = run(seed);
        let (db, mb) = run(seed);
        prop_assert_eq!(da, db, "same seed must reproduce the trajectory");
        prop_assert_eq!(ma, mb, "same seed must reproduce the message counters");
    }

    #[test]
    fn dist_runtime_deterministic_for_fixed_seed(
        seed in any::<u64>(),
        n in 1usize..60,
        drop in 0.0f64..=0.9,
    ) {
        let params = Params::new(3, 0.6).expect("valid");
        let run = |seed: u64| {
            let fault = FaultPlan::with_drop_prob(drop).expect("valid").crash(0, 5);
            let mut net = Runtime::new(DistConfig::new(params, n).with_faults(fault), seed);
            let mut dists = Vec::new();
            for t in 0..10u64 {
                net.round(&[t % 2 == 0, t % 3 == 0, true]);
                dists.push(net.distribution());
            }
            (dists, net.metrics())
        };
        let (da, ma) = run(seed);
        let (db, mb) = run(seed);
        prop_assert_eq!(da, db, "same seed must reproduce the trajectory");
        prop_assert_eq!(ma, mb, "same seed must reproduce the message counters");
    }

    #[test]
    fn membership_script_conservation_across_runtimes(
        seed in any::<u64>(),
        m in 2usize..5,
        n in 4usize..48,
        steps in 1usize..14,
        drop in 0.0f64..=0.6,
        flash in 0usize..4,
        churn in proptest::collection::vec((0usize..1000, 1u64..10, 1u64..5), 0..6),
    ) {
        let params = Params::new(m, 0.65).expect("valid");
        let (fault, initial_alive) = membership_plan(n, drop, flash, &churn);
        let cfg = DistConfig::new(params, n).with_faults(fault);

        // Round-synchronous reference.
        let mut sync = Runtime::new(cfg.clone(), seed);
        let t_sync = check_membership_run(
            |r| sync.round(r), initial_alive, n, m, steps, seed, true,
        )?;
        // Quiesced event-driven runtime, single-heap scheduler.
        let mut ev = EventRuntime::new(cfg.clone(), seed);
        let t_ev = check_membership_run(
            |r| ev.tick(r), initial_alive, n, m, steps, seed, true,
        )?;
        // Quiesced event-driven runtime, sharded-calendar scheduler.
        let mut sh = EventRuntime::new(cfg.clone(), seed)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 3 });
        let t_sh = check_membership_run(
            |r| sh.tick(r), initial_alive, n, m, steps, seed, true,
        )?;
        // Fully-async execution: bootstraps may straddle rounds, so
        // only the gauge bound applies, not the barriered identity.
        let mut async_ev = EventRuntime::new(cfg, seed)
            .with_async_epochs(StalenessBound::Epochs(2));
        let t_async = check_membership_run(
            |r| async_ev.tick(r), initial_alive, n, m, steps, seed, false,
        )?;

        // The script is data, not chance: every execution model must
        // observe the exact same membership flows.
        prop_assert_eq!(t_sync, t_ev);
        prop_assert_eq!(t_sync, t_sh);
        prop_assert_eq!(t_sync, t_async);
        // Cumulative metrics agree with the per-round flows.
        let totals = sync.metrics();
        prop_assert_eq!((totals.joins, totals.leaves, totals.rejoins), t_sync);
    }

    #[test]
    fn summary_quantiles_monotone(data in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::from_slice(&data);
        let mut prev = s.quantile(0.0);
        for i in 1..=10 {
            let q = s.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev - 1e-9);
            prev = q;
        }
        prop_assert_eq!(s.quantile(0.0), s.min());
        prop_assert_eq!(s.quantile(1.0), s.max());
        prop_assert!(s.ci(0.95).contains(s.mean()));
    }
}
