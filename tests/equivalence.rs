//! Cross-crate equivalence tests: every implementation of the
//! dynamics (collective-statistic, per-agent, network-on-complete-
//! graph, message-passing under all three execution models and both
//! event schedulers) is the same process.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn::core::{AgentPopulation, FinitePopulation, GroupDynamics, Params};
use sociolearn::dist::{DistConfig, EventRuntime, Runtime, SchedulerKind, StalenessBound};
use sociolearn::env::TraceRewards;
use sociolearn::graph::topology;
use sociolearn::network::NetworkPopulation;
use sociolearn::stats::ks_two_sample;

/// Fixed reward trace so every implementation sees identical signals.
fn trace(m: usize, steps: usize, seed: u64) -> TraceRewards {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows: Vec<Vec<bool>> = (0..steps)
        .map(|_| {
            (0..m)
                .map(|j| rand::Rng::gen_bool(&mut rng, if j == 0 { 0.85 } else { 0.45 }))
                .collect()
        })
        .collect();
    TraceRewards::new(rows).expect("valid trace")
}

/// Runs a dynamics against the shared trace, returning Q_0 after
/// `steps` steps.
fn final_share<D: GroupDynamics>(mut d: D, steps: usize, m: usize, seed: u64) -> f64 {
    use sociolearn::core::RewardModel;
    let mut env = trace(m, steps, 555);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rewards = vec![false; m];
    for t in 1..=steps as u64 {
        env.sample(t, &mut rng, &mut rewards);
        d.step(&rewards, &mut rng);
    }
    d.distribution()[0]
}

#[test]
fn collective_and_agent_forms_agree_in_distribution() {
    let m = 3;
    let n = 200;
    let steps = 12;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 300u64;

    // Seed offsets re-rolled when the exact BTPE binomial changed the
    // per-step RNG draw count (the collective trajectories moved, the
    // laws did not; the old offsets landed at p = 0.00078, a hair past
    // the 0.001 acceptance threshold).
    let collective: Vec<f64> = (0..reps)
        .map(|i| final_share(FinitePopulation::new(params, n), steps, m, 2000 + i))
        .collect();
    let agent: Vec<f64> = (0..reps)
        .map(|i| final_share(AgentPopulation::new(params, n), steps, m, 6000 + i))
        .collect();

    let ks = ks_two_sample(&collective, &agent);
    assert!(
        ks.accepts_at(0.001),
        "collective vs agent forms differ in law: {ks:?}"
    );
}

#[test]
fn network_on_complete_graph_matches_agent_form() {
    // On the complete graph, neighbor-restricted sampling is sampling
    // among all other adopters; for N in the hundreds the self-exclusion
    // bias is O(1/N) and the two laws are statistically identical.
    let m = 3;
    let n = 200;
    let steps = 12;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 300u64;

    let network: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                NetworkPopulation::new(params, topology::complete(n)),
                steps,
                m,
                9000 + i,
            )
        })
        .collect();
    let agent: Vec<f64> = (0..reps)
        .map(|i| final_share(AgentPopulation::new(params, n), steps, m, 13_000 + i))
        .collect();

    let ks = ks_two_sample(&network, &agent);
    assert!(
        ks.accepts_at(0.001),
        "network(complete) vs agent form differ in law: {ks:?}"
    );
}

#[test]
fn message_passing_runtime_matches_collective_form() {
    let m = 2;
    let n = 400;
    let steps = 15;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let dist: Vec<f64> = (0..reps)
        .map(|i| {
            // The runtime seed is salted relative to the driver seed:
            // `Runtime` keeps its own RNG, and an identical u64 would
            // expand to the very stream the driver uses for rewards.
            final_share(
                Runtime::new(DistConfig::new(params, n), 170_000 + i),
                steps,
                m,
                17_000 + i,
            )
        })
        .collect();
    let collective: Vec<f64> = (0..reps)
        .map(|i| final_share(FinitePopulation::new(params, n), steps, m, 21_000 + i))
        .collect();

    let ks = ks_two_sample(&dist, &collective);
    assert!(
        ks.accepts_at(0.001),
        "message-passing vs collective form differ in law: {ks:?}"
    );
}

#[test]
fn event_runtime_matches_collective_form() {
    // The tentpole equivalence claim: on a clean network the
    // event-driven runtime — jittered wakes, latency-jittered
    // messages, bounded inboxes, timeout retries — is *still* the
    // finite-population dynamics in law, because conditioned on a
    // reply the copied option is a uniform draw over last epoch's
    // committed nodes.
    let m = 2;
    let n = 400;
    let steps = 15;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let event: Vec<f64> = (0..reps)
        .map(|i| {
            // Salted like the round-synchronous runtime: EventRuntime
            // keeps its own RNG and must not share the driver stream.
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 570_000 + i),
                steps,
                m,
                57_000 + i,
            )
        })
        .collect();
    let collective: Vec<f64> = (0..reps)
        .map(|i| final_share(FinitePopulation::new(params, n), steps, m, 61_000 + i))
        .collect();

    let ks = ks_two_sample(&event, &collective);
    assert!(
        ks.accepts_at(0.001),
        "event-driven vs collective form differ in law: {ks:?}"
    );
}

#[test]
fn two_runtimes_agree_in_law_with_each_other() {
    // Transitivity check made explicit: round-synchronous and
    // event-driven runs of the *same* deployment are exchangeable.
    let m = 3;
    let n = 300;
    let steps = 12;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let round_sync: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                Runtime::new(DistConfig::new(params, n), 710_000 + i),
                steps,
                m,
                71_000 + i,
            )
        })
        .collect();
    let event: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 730_000 + i),
                steps,
                m,
                73_000 + i,
            )
        })
        .collect();

    let ks = ks_two_sample(&round_sync, &event);
    assert!(
        ks.accepts_at(0.001),
        "round-sync vs event-driven differ in law: {ks:?}"
    );
}

#[test]
fn async_bound_zero_matches_quiesced_event_runtime() {
    // The staleness-bound sanity anchor: with bound 0 a fully-async
    // responder only answers when its information is at least as
    // current as a synchronized peer's would be, so removing the
    // barrier changes the *schedule* but not the law. (Unbounded
    // staleness is the regime E17 charts; bound 0 is the limit that
    // must coincide with quiesced execution.)
    let m = 2;
    let n = 400;
    let steps = 15;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let quiesced: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 810_000 + i),
                steps,
                m,
                81_000 + i,
            )
        })
        .collect();
    let asynch: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 830_000 + i)
                    .with_async_epochs(StalenessBound::Epochs(0)),
                steps,
                m,
                83_000 + i,
            )
        })
        .collect();

    let ks = ks_two_sample(&asynch, &quiesced);
    assert!(
        ks.accepts_at(0.001),
        "async(bound 0) vs quiesced event runtime differ in law: {ks:?}"
    );
}

#[test]
fn sharded_calendar_matches_single_heap_quiesced() {
    // The scheduler-equivalence anchor for the tentpole: swapping the
    // global `BinaryHeap` for the sharded calendar engine (per-node
    // RNG streams, per-window `(src, seq)` total order, cross-shard
    // mailboxes) changes the *schedule realization*, not the law of
    // the per-epoch process.
    let m = 2;
    let n = 400;
    let steps = 15;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let single: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 910_000 + i),
                steps,
                m,
                91_000 + i,
            )
        })
        .collect();
    let sharded: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 930_000 + i)
                    .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 }),
                steps,
                m,
                93_000 + i,
            )
        })
        .collect();

    let ks = ks_two_sample(&sharded, &single);
    assert!(
        ks.accepts_at(0.001),
        "sharded calendar vs single heap (quiesced) differ in law: {ks:?}"
    );
}

#[test]
fn sharded_calendar_matches_single_heap_async_bound_zero() {
    // Same anchor, fully-async at the tightest staleness bound — the
    // regime where scheduling details matter most (bound 0 means a
    // responder must be at least as current as a synchronized peer).
    let m = 2;
    let n = 400;
    let steps = 15;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let single: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 950_000 + i)
                    .with_async_epochs(StalenessBound::Epochs(0)),
                steps,
                m,
                95_000 + i,
            )
        })
        .collect();
    let sharded: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 970_000 + i)
                    .with_async_epochs(StalenessBound::Epochs(0))
                    .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 }),
                steps,
                m,
                97_000 + i,
            )
        })
        .collect();

    let ks = ks_two_sample(&sharded, &single);
    assert!(
        ks.accepts_at(0.001),
        "sharded calendar vs single heap (async, bound 0) differ in law: {ks:?}"
    );
}

#[test]
fn sharded_calendar_matches_single_heap_async_bound_two() {
    // And at a loose-but-finite bound: staleness filtering engages
    // only through genuine epoch drift, which the sharded engine must
    // reproduce in distribution.
    let m = 2;
    let n = 400;
    let steps = 15;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    let single: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 990_000 + i)
                    .with_async_epochs(StalenessBound::Epochs(2)),
                steps,
                m,
                99_000 + i,
            )
        })
        .collect();
    let sharded: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                EventRuntime::new(DistConfig::new(params, n), 1_010_000 + i)
                    .with_async_epochs(StalenessBound::Epochs(2))
                    .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 }),
                steps,
                m,
                101_000 + i,
            )
        })
        .collect();

    let ks = ks_two_sample(&sharded, &single);
    assert!(
        ks.accepts_at(0.001),
        "sharded calendar vs single heap (async, bound 2) differ in law: {ks:?}"
    );
}

#[test]
fn rolling_restart_cohort_matches_crash_free_reference_in_law() {
    // The churn-equivalence anchor: a rolling restart wipes every
    // node's commitment batch by batch, but each batch re-bootstraps
    // through the ordinary query/reply protocol — an unbiased copy of
    // the surviving cohort's popularity distribution. Once the last
    // batch is back, the dynamics must re-converge to the same law as
    // a deployment that never restarted at all.
    use sociolearn::dist::FaultPlan;
    let m = 2;
    let n = 400;
    let steps = 22;
    let params = Params::new(m, 0.65).unwrap();
    let reps = 200u64;

    // Four batches of 100 leave at rounds 2, 5, 8, 11 and rejoin one
    // round later; the fleet is whole again well before measurement.
    let restarted: Vec<f64> = (0..reps)
        .map(|i| {
            let plan = FaultPlan::default().rolling_restart(100, 3);
            final_share(
                Runtime::new(DistConfig::new(params, n).with_faults(plan), 1_030_000 + i),
                steps,
                m,
                103_000 + i,
            )
        })
        .collect();
    let crash_free: Vec<f64> = (0..reps)
        .map(|i| {
            final_share(
                Runtime::new(DistConfig::new(params, n), 1_050_000 + i),
                steps,
                m,
                105_000 + i,
            )
        })
        .collect();

    let ks = ks_two_sample(&restarted, &crash_free);
    assert!(
        ks.accepts_at(0.001),
        "rolling restart vs crash-free reference differ in law: {ks:?}"
    );
}

#[test]
fn all_forms_converge_to_same_steady_share() {
    let m = 2;
    let n = 2_000;
    let params = Params::new(m, 0.65).unwrap();
    let steps = 300;

    let shares = [
        final_share(FinitePopulation::new(params, n), steps, m, 1),
        final_share(AgentPopulation::new(params, n), steps, m, 2),
        final_share(
            NetworkPopulation::new(params, topology::complete(n)),
            steps,
            m,
            3,
        ),
        final_share(Runtime::new(DistConfig::new(params, n), 40), steps, m, 4),
        final_share(
            EventRuntime::new(DistConfig::new(params, n), 50),
            steps,
            m,
            5,
        ),
        final_share(
            EventRuntime::new(DistConfig::new(params, n), 60)
                .with_async_epochs(StalenessBound::Unbounded),
            steps,
            m,
            6,
        ),
        final_share(
            EventRuntime::new(DistConfig::new(params, n), 70)
                .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 }),
            steps,
            m,
            7,
        ),
        final_share(
            EventRuntime::new(DistConfig::new(params, n), 80)
                .with_async_epochs(StalenessBound::Unbounded)
                .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 }),
            steps,
            m,
            8,
        ),
    ];
    for (i, &s) in shares.iter().enumerate() {
        assert!(s > 0.85, "form {i} failed to converge: share {s}");
    }
    let spread = shares.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - shares.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.1, "steady-state spread too large: {shares:?}");
}
