//! Integration checks of the paper's quantitative statements at test
//! scale (the full-size versions live in the E1–E16 experiment suite).

use sociolearn::core::{
    BernoulliRewards, CoupledRun, EpochRegret, EpochSchedule, FinitePopulation, InfiniteDynamics,
    Params, BETA_MAX,
};
use sociolearn::sim::{replicate, run_one, RunConfig};
use sociolearn::stats::mean;

#[test]
fn theorem_4_3_bound_across_betas() {
    for &beta in &[0.55, 0.6, 0.7, BETA_MAX] {
        let m = 8;
        let params = Params::new(m, beta).unwrap();
        let env = BernoulliRewards::one_good(m, 0.9).unwrap();
        let cfg = RunConfig::new(params.min_horizon());
        let finals = replicate(16, 42, |seed| {
            run_one(InfiniteDynamics::new(params), env.clone(), &cfg, seed)
                .tracker
                .average_regret()
        });
        let regret = mean(&finals);
        assert!(
            regret <= params.regret_bound_infinite(),
            "beta={beta}: regret {regret} > bound {}",
            params.regret_bound_infinite()
        );
    }
}

#[test]
fn theorem_4_4_bound_for_large_population() {
    let m = 8;
    let params = Params::new(m, 0.6).unwrap();
    let env = BernoulliRewards::one_good(m, 0.9).unwrap();
    for factor in [1u64, 10] {
        let cfg = RunConfig::new(factor * params.min_horizon());
        let finals = replicate(12, 7, |seed| {
            run_one(
                FinitePopulation::new(params, 20_000),
                env.clone(),
                &cfg,
                seed,
            )
            .tracker
            .average_regret()
        });
        let regret = mean(&finals);
        assert!(
            regret <= params.regret_bound_finite(),
            "T factor {factor}: regret {regret} > 6 delta {}",
            params.regret_bound_finite()
        );
    }
}

#[test]
fn theorem_4_3_part2_best_share_bound() {
    let params = Params::new(2, 0.53).unwrap();
    let gap = 0.5f64;
    let env = BernoulliRewards::new(vec![0.9, 0.9 - gap]).unwrap();
    let cfg = RunConfig::new(8 * params.min_horizon());
    let shares = replicate(16, 3, |seed| {
        run_one(InfiniteDynamics::new(params), env.clone(), &cfg, seed)
            .tracker
            .average_best_share()
    });
    let bound = 1.0 - 3.0 * params.delta() / gap;
    assert!(bound > 0.0, "test must use a non-vacuous bound");
    assert!(
        mean(&shares) >= bound,
        "avg best share {} below bound {bound}",
        mean(&shares)
    );
}

#[test]
fn lemma_4_5_deviation_grows_with_t_and_shrinks_with_n() {
    let params = Params::new(3, 0.6).unwrap();
    let env = BernoulliRewards::linear(3, 0.9, 0.3).unwrap();
    let horizon = 8;

    let mean_dev = |n: usize, seed_base: u64| -> Vec<f64> {
        let reps = 12u64;
        let all: Vec<Vec<f64>> = replicate(reps, seed_base, |seed| {
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
            let mut run = CoupledRun::new(params, n);
            run.run(env.clone(), horizon, &mut rng)
                .deviations
                .into_iter()
                .map(|d| if d.is_finite() { d } else { 2.0 })
                .collect()
        });
        (0..horizon as usize)
            .map(|t| all.iter().map(|d| d[t]).sum::<f64>() / reps as f64)
            .collect()
    };

    let small = mean_dev(500, 11);
    let large = mean_dev(50_000, 13);
    // Shrinks with N at every horizon.
    for t in 0..horizon as usize {
        assert!(
            large[t] < small[t] + 0.02,
            "t={}: large-N deviation {} vs small-N {}",
            t + 1,
            large[t],
            small[t]
        );
    }
    // Grows with t (endpoints suffice; the paths are noisy in between).
    assert!(large[horizon as usize - 1] > large[0]);
    // And stays within the lemma's bound at t=1 for the large run.
    assert!(large[0] <= params.coupling_deviation_bound(50_000, 1));
}

#[test]
fn theorem_4_6_nonuniform_start() {
    let m = 6;
    let params = Params::new(m, 0.6).unwrap();
    let zeta = params.popularity_floor();
    // Mass on the worst option, zeta sliver everywhere else.
    let mut start = vec![zeta; m];
    start[m - 1] = 1.0 - zeta * (m - 1) as f64;
    let env = BernoulliRewards::one_good(m, 0.9).unwrap();
    let cfg = RunConfig::new(params.min_horizon_from_floor(zeta));
    let finals = replicate(16, 5, |seed| {
        run_one(
            InfiniteDynamics::from_distribution(params, start.clone()),
            env.clone(),
            &cfg,
            seed,
        )
        .tracker
        .average_regret()
    });
    assert!(
        mean(&finals) <= params.regret_bound_infinite(),
        "nonuniform-start regret {} above 3 delta {}",
        mean(&finals),
        params.regret_bound_infinite()
    );
}

#[test]
fn epoch_decomposition_bounds_every_epoch() {
    // Run the finite dynamics for several epochs; each epoch's average
    // regret (the quantity the large-T proof sums) stays within the
    // finite bound.
    use sociolearn::core::{GroupDynamics, RewardModel};
    let m = 5;
    let params = Params::new(m, 0.6).unwrap();
    let schedule = EpochSchedule::for_params(&params);
    let mut env = BernoulliRewards::one_good(m, 0.9).unwrap();
    let mut pop = FinitePopulation::new(params, 20_000);
    let mut acc = EpochRegret::new(schedule, 0.9, 0);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(8);
    let mut rewards = vec![false; m];
    let horizon = 3 * schedule.epoch_len();
    for t in 1..=horizon {
        let before = pop.distribution();
        env.sample(t, &mut rng, &mut rewards);
        pop.step(&rewards, &mut rng);
        acc.record(&before, &rewards, env.qualities().as_deref());
    }
    let per_epoch = acc.per_epoch_regret();
    assert_eq!(per_epoch.len(), 3);
    for (e, r) in per_epoch.iter().enumerate() {
        assert!(
            *r <= params.regret_bound_finite(),
            "epoch {e} regret {r} above 6 delta"
        );
    }
    assert!(acc.total().average_regret() <= params.regret_bound_finite());
}

#[test]
fn tuned_beta_beats_generic_beta_at_long_horizon() {
    let m = 10;
    let t = 20_000u64;
    let env = BernoulliRewards::one_good(m, 0.9).unwrap();
    let cfg = RunConfig::new(t);

    let tuned = Params::new(m, Params::tuned_beta(m, t)).unwrap();
    let generic = Params::new(m, 0.7).unwrap();

    let regret = |p: Params, base: u64| {
        let finals = replicate(8, base, |seed| {
            run_one(InfiniteDynamics::new(p), env.clone(), &cfg, seed)
                .tracker
                .average_regret()
        });
        mean(&finals)
    };
    let r_tuned = regret(tuned, 1);
    let r_generic = regret(generic, 2);
    assert!(
        r_tuned < r_generic,
        "tuned beta should win at T={t}: {r_tuned} vs {r_generic}"
    );
}
