//! Goodness-of-fit of the exact binomial sampler against the exact
//! distribution, across a grid spanning the old normal-approximation
//! cutoff `n·min(p,1-p) > 5000`.
//!
//! Until this suite existed, the vendored `Binomial` silently switched
//! to a rounded-normal approximation exactly in the large-`n` regime
//! the paper's concentration results (Propositions 4.1–4.2,
//! Theorem 4.6) are about. The sampler is now exact at every `(n, p)`
//! (BINV inverse transform below mean 10, BTPE rejection above), and
//! these chi-square tests are the referee: each grid point is binned
//! into roughly equal-probability cells from the exact pmf and tested
//! at significance 1e-3.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn::core::sample_binomial;
use sociolearn::stats::binomial_ln_pmf;

/// Draws per grid point.
const DRAWS: usize = 20_000;
/// Target number of (approximately equal-probability) bins.
const TARGET_BINS: usize = 30;
/// Minimum expected count per bin (else merged into its neighbor).
const MIN_EXPECTED: f64 = 5.0;

/// Upper chi-square critical value at significance 1e-3 via the
/// Wilson–Hilferty cube approximation (accurate to well under 1% for
/// the degrees of freedom used here).
fn chi2_critical_1e3(df: f64) -> f64 {
    let z = 3.090_232_306_167_813; // Phi^{-1}(1 - 1e-3)
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3)
}

/// Bins the support `lo..=hi` into consecutive runs of roughly equal
/// exact probability; returns (inclusive upper edges, bin probabilities).
fn equal_probability_bins(n: u64, p: f64, lo: u64, hi: u64) -> (Vec<u64>, Vec<f64>) {
    let pmf: Vec<f64> = (lo..=hi).map(|k| binomial_ln_pmf(n, k, p).exp()).collect();
    let mass: f64 = pmf.iter().sum();
    assert!(
        mass > 1.0 - 1e-6,
        "support window dropped real mass: {mass} (n={n}, p={p})"
    );
    let target = mass / TARGET_BINS as f64;
    let mut edges = Vec::new();
    let mut probs = Vec::new();
    let mut acc = 0.0;
    for (i, &f) in pmf.iter().enumerate() {
        acc += f;
        if acc >= target || i == pmf.len() - 1 {
            edges.push(lo + i as u64);
            probs.push(acc / mass);
            acc = 0.0;
        }
    }
    // A sparse trailing bin would break the chi-square approximation;
    // fold it into its neighbor.
    while probs.len() > 1 && *probs.last().unwrap() * DRAWS as f64 <= MIN_EXPECTED {
        let last = probs.pop().unwrap();
        *probs.last_mut().unwrap() += last;
        let e = edges.pop().unwrap();
        *edges.last_mut().unwrap() = e;
    }
    (edges, probs)
}

/// Chi-square GOF statistic of `DRAWS` sampler draws against the exact
/// binned distribution; panics if it exceeds the 1e-3 critical value.
fn assert_gof(n: u64, p: f64, seed: u64) {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt().max(1.0);
    // 12σ window: negligible truncated mass even for the skewed
    // small-mean points, checked by the mass assertion below.
    let lo = (mean - 12.0 * sd).floor().max(0.0) as u64;
    let hi = ((mean + 12.0 * sd).ceil() as u64).min(n);
    let (edges, probs) = equal_probability_bins(n, p, lo, hi);

    let mut observed = vec![0u64; probs.len()];
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..DRAWS {
        let x = sample_binomial(&mut rng, n, p).clamp(lo, hi);
        let bin = edges.partition_point(|&e| e < x);
        observed[bin] += 1;
    }

    let mut chi2 = 0.0;
    for (&obs, &pr) in observed.iter().zip(&probs) {
        let expected = pr * DRAWS as f64;
        chi2 += (obs as f64 - expected).powi(2) / expected;
    }
    let df = (probs.len() - 1) as f64;
    let crit = chi2_critical_1e3(df);
    assert!(
        chi2 < crit,
        "chi-square GOF failed at n={n}, p={p}: chi2={chi2:.2} > crit={crit:.2} (df={df})"
    );
}

#[test]
fn gof_small_mean_binv_regime() {
    // Mean below the BINV threshold of 10.
    assert_gof(100, 0.01, 0xB10);
    assert_gof(40, 0.1, 0xB11);
    assert_gof(100_000_000, 1e-8, 0xB12);
}

#[test]
fn gof_btpe_below_old_cutoff() {
    // BTPE regime, but still inside the old shim's "exact" band
    // (n·min(p,1-p) <= 5000).
    assert_gof(50, 0.5, 0xB20);
    assert_gof(1_000, 0.9, 0xB21);
    assert_gof(10_000, 0.4, 0xB22);
}

#[test]
fn gof_at_old_cutoff() {
    // n·q ≈ 5000: the exact boundary where the old shim flipped from
    // waiting-time sampling to the rounded normal.
    assert_gof(16_667, 0.3, 0xB30);
    assert_gof(10_000, 0.5, 0xB31);
}

#[test]
fn gof_beyond_old_cutoff() {
    // n·min(p,1-p) > 5000: the regime the old shim approximated. This
    // is the band the paper's large-N concentration claims live in.
    assert_gof(100_000, 0.5, 0xB40);
    assert_gof(1_000_000, 0.4, 0xB41);
    assert_gof(100_000_000, 0.01, 0xB42);
    assert_gof(100_000_000, 0.4, 0xB43);
    assert_gof(100_000_000, 0.5, 0xB44);
    assert_gof(100_000_000, 0.9, 0xB45);
}

#[test]
fn gof_tiny_p_large_n() {
    // p = 1e-6 at n = 1e8: mean 100, far into BTPE by mean but with
    // extreme asymmetry.
    assert_gof(100_000_000, 1e-6, 0xB50);
}

#[test]
fn moments_match_theory_across_regimes() {
    let mut rng = SmallRng::seed_from_u64(0x40404);
    for &(n, p) in &[
        (1_000u64, 0.3f64),
        (100_000, 0.5),
        (10_000_000, 0.2),
        (100_000_000, 1e-6),
    ] {
        let reps = 4_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p) as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sum_sq / reps as f64 - mean * mean;
        let (t_mean, t_var) = (n as f64 * p, n as f64 * p * (1.0 - p));
        // Mean within 6 standard errors; variance within 15%.
        let se = (t_var / reps as f64).sqrt();
        assert!(
            (mean - t_mean).abs() < 6.0 * se,
            "mean off at n={n}, p={p}: {mean} vs {t_mean}"
        );
        assert!(
            (var - t_var).abs() < 0.15 * t_var,
            "variance off at n={n}, p={p}: {var} vs {t_var}"
        );
    }
}

#[test]
fn degenerate_edges() {
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..100 {
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 1_000_000, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 1_000_000, 1.0), 1_000_000);
    }
}

#[test]
fn draws_stay_in_support() {
    let mut rng = SmallRng::seed_from_u64(8);
    for &(n, p) in &[(10u64, 0.5f64), (16_667, 0.3), (1_000_000, 0.999)] {
        for _ in 0..2_000 {
            assert!(sample_binomial(&mut rng, n, p) <= n);
        }
    }
}

#[test]
fn deterministic_under_seed() {
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        [
            (1_000u64, 0.3f64),
            (16_667, 0.3),
            (100_000_000, 0.5),
            (100_000_000, 1e-6),
        ]
        .iter()
        .map(|&(n, p)| sample_binomial(&mut rng, n, p))
        .collect::<Vec<_>>()
    };
    assert_eq!(run(0xD5), run(0xD5));
    assert_ne!(run(0xD5), run(0xD6), "different seeds should differ");
}
