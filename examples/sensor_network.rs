//! The conclusion's engineering suggestion, run end to end: a fleet of
//! low-power sensor nodes picks the best of several radio channels
//! using the social-learning protocol as a distributed, O(1)-memory
//! MWU — under message loss, node crashes, and membership churn
//! (rolling restarts, flash crowds), on **all three**
//! execution models: round-synchronous gossip, the epoch-quiesced
//! event scheduler (latency jitter, bounded inboxes, timeout
//! retries), and fully-async overlapping epochs where each sensor
//! runs on its own local timer with no barrier at all.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

#![forbid(unsafe_code)]

use rand::SeedableRng;
use sociolearn::core::{BernoulliRewards, Params, RewardModel};
use sociolearn::dist::{
    DistConfig, EventRuntime, FaultPlan, ProtocolRuntime, Runtime, SchedulerKind, StalenessBound,
    NODE_STATE_BYTES,
};
use sociolearn::plot::MarkdownTable;

/// Drives any [`ProtocolRuntime`] through one fleet scenario and
/// returns (mean clean-channel share over the back half, msgs/round,
/// fallbacks/round). The same code path runs every execution model —
/// that is the point of the shared trait.
fn run_fleet<Rt: ProtocolRuntime>(
    mut net: Rt,
    env: &BernoulliRewards,
    rounds: u64,
) -> (f64, f64, f64) {
    let mut env = env.clone();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let mut rewards = vec![false; net.num_options()];
    let mut share = 0.0;
    for t in 1..=rounds {
        env.sample(t, &mut rng, &mut rewards);
        net.round(&rewards);
        if t > rounds / 2 {
            share += net.distribution()[0];
        }
    }
    share /= (rounds / 2) as f64;
    let metrics = net.metrics();
    (
        share,
        metrics.messages_per_round(),
        metrics.fallbacks as f64 / metrics.rounds as f64,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 512 sensors, 4 radio channels. Channel 0 is clean 85% of rounds;
    // the others suffer interference (quality 0.5, 0.4, 0.3).
    let params = Params::new(4, 0.65)?;
    let env = BernoulliRewards::new(vec![0.85, 0.5, 0.4, 0.3])?;
    let n = 512;
    let rounds = 400u64;

    println!(
        "protocol state per node: {NODE_STATE_BYTES} bytes (current channel only — no weight \
         vector, no history)\n"
    );

    let mut table = MarkdownTable::new(&[
        "runtime",
        "network condition",
        "share on clean channel",
        "msgs/round",
        "fallbacks/round",
    ]);

    let conditions: Vec<(&str, FaultPlan)> = vec![
        ("reliable links", FaultPlan::none()),
        ("20% message loss", FaultPlan::with_drop_prob(0.2)?),
        ("45% message loss", FaultPlan::with_drop_prob(0.45)?),
        ("1/4 nodes crash at round 100", {
            let mut f = FaultPlan::none();
            for node in 0..n / 4 {
                f = f.crash(node, 100);
            }
            f
        }),
        // Churn scenarios: nodes leave and come back (or arrive cold),
        // bootstrapping through the ordinary query/reply protocol.
        (
            "rolling restart (batches of 64, every 8 rounds)",
            FaultPlan::none().rolling_restart(64, 8),
        ),
        (
            "flash crowd: 128 cold sensors join at round 100",
            FaultPlan::none().flash_crowd(128, 100),
        ),
    ];

    for (label, fault) in conditions {
        let cfg = DistConfig::new(params, n).with_faults(fault);
        // The execution-model labels come from the shared trait, so
        // the table stays honest if a runtime is swapped out.
        let sync = Runtime::new(cfg.clone(), 42);
        let quiesced = EventRuntime::new(cfg.clone(), 42);
        // Sensors answer with what they used up to two local epochs
        // ago; anything older is withheld as stale.
        let asynch =
            EventRuntime::new(cfg.clone(), 42).with_async_epochs(StalenessBound::Epochs(2));
        // The same no-barrier fleet on the production scheduler: the
        // sharded calendar-queue engine (4 node-range shards). Same
        // law — only the scheduler changes.
        let sharded = EventRuntime::new(cfg, 42)
            .with_async_epochs(StalenessBound::Epochs(2))
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        let sharded_name = format!("{} ({})", sharded.execution_model(), sharded.scheduler());
        for (name, (share, msgs, fallbacks)) in [
            (
                sync.execution_model().label().to_string(),
                run_fleet(sync, &env, rounds),
            ),
            (
                quiesced.execution_model().label().to_string(),
                run_fleet(quiesced, &env, rounds),
            ),
            (
                asynch.execution_model().label().to_string(),
                run_fleet(asynch, &env, rounds),
            ),
            (sharded_name, run_fleet(sharded, &env, rounds)),
        ] {
            table.add_row(&[
                name,
                label.to_string(),
                format!("{share:.3}"),
                format!("{msgs:.0}"),
                format!("{fallbacks:.1}"),
            ]);
        }
    }

    println!("{table}");
    println!(
        "Every node runs the same two-line protocol — ask a random peer what it used last \
         round, keep it if this round's channel probe looks good — and the fleet as a whole \
         performs multiplicative-weights channel selection. Whether rounds are enforced by a \
         global barrier (round-sync), emerge from a jittered event scheduler run to \
         quiescence (epoch-quiesced), or never line up at all because each sensor acts on \
         its own timer (fully-async, staleness bound 2), faults slow the gossip but the \
         uniform-exploration fallback keeps the fleet learning. The last row repeats the \
         fully-async fleet on the sharded calendar-queue scheduler — the engine built for \
         six-figure fleets — and lands on the same answer."
    );
    Ok(())
}
