//! The paper's first worked example (Section 2.1, after Krafft et al.):
//! amateur investors on a copy-trading platform. Each user either
//! copies the portfolio of a random other user or picks one at random,
//! then commits only if the latest return signal looked good
//! (`alpha = 1 - beta`, one option with quality above 1/2, the rest
//! exactly 1/2).
//!
//! We run both the well-mixed dynamics and the Hedge benchmark on the
//! same reward stream and print the regret comparison the paper's
//! group-competitiveness result predicts.
//!
//! ```text
//! cargo run --release --example investor_platform
//! ```

#![forbid(unsafe_code)]

use rand::SeedableRng;
use sociolearn::baselines::Hedge;
use sociolearn::core::{
    BernoulliRewards, FinitePopulation, GroupDynamics, Params, RegretTracker, RewardModel,
};
use sociolearn::plot::MarkdownTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 strategies on the platform; strategy 0 genuinely beats the
    // market (good 65% of days), the others are noise (50%).
    let m = 12;
    let eta_good = 0.65;
    let params = Params::new(m, 0.6)?;
    let mut env = BernoulliRewards::one_good(m, eta_good)?;
    let investors = 5_000;
    let horizon = 40 * params.min_horizon();

    let mut group = FinitePopulation::new(params, investors);
    let mut hedge = Hedge::new(m, Hedge::tuned_eps(m, horizon))?;
    let mut group_tracker = RegretTracker::new(eta_good, 0);
    let mut hedge_tracker = RegretTracker::new(eta_good, 0);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1608_01987); // arXiv id of Krafft et al.

    let mut rewards = vec![false; m];
    for t in 1..=horizon {
        let group_before = group.distribution();
        let hedge_before = hedge.distribution();
        env.sample(t, &mut rng, &mut rewards);
        group.step(&rewards, &mut rng);
        hedge.step(&rewards, &mut rng);
        let q = env.qualities();
        group_tracker.record(&group_before, &rewards, q.as_deref());
        hedge_tracker.record(&hedge_before, &rewards, q.as_deref());
    }

    let mut table =
        MarkdownTable::new(&["learner", "memory per agent", "avg regret", "share on best"]);
    table.add_row(&[
        format!("{investors} copy-traders (social dynamics)"),
        "current pick only".into(),
        format!("{:.4}", group_tracker.average_regret()),
        format!("{:.3}", group_tracker.average_best_share()),
    ]);
    table.add_row(&[
        "centralized Hedge (full weight vector)".into(),
        format!("{m} weights"),
        format!("{:.4}", hedge_tracker.average_regret()),
        format!("{:.3}", hedge_tracker.average_best_share()),
    ]);

    println!(
        "copy-trading platform: m = {m} strategies, eta = ({eta_good}, 0.5, ..., 0.5), \
         T = {horizon}, beta = {:.2}\n",
        params.beta()
    );
    println!("{table}");
    println!(
        "theorem bound for the group: 6 delta = {:.3}; the memoryless crowd lands within \
         it despite storing nothing but each investor's current pick.",
        params.regret_bound_finite()
    );
    Ok(())
}
