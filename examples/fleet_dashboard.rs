//! Live fleet telemetry in ~60 lines: attach a [`MetricsRecorder`]
//! sink to a sharded fully-async fleet under a rolling-restart script,
//! feed the recorded frames into a [`SeriesRegistry`], and render the
//! same data twice — a terminal dashboard frame ([`LiveTerm`]) and a
//! self-contained SVG snapshot ([`LiveSvg`]).
//!
//! Everything here runs in virtual time (round numbers), so the
//! output is byte-identical on every run:
//!
//! ```text
//! cargo run --release --example fleet_dashboard
//! ```
//!
//! For the long-lived interactive version (ANSI redraw, churn flags,
//! wall-clock ms/tick series) use the CLI instead:
//! `cargo run --release -p sociolearn-experiments -- watch`.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use sociolearn::core::{BernoulliRewards, GroupDynamics, Params, RewardModel};
use sociolearn::dist::{
    DistConfig, EventRuntime, FaultPlan, MetricsRecorder, ProtocolRuntime, SchedulerKind,
    StalenessBound,
};
use sociolearn::plot::{LiveSvg, LiveTerm, SeriesRegistry};

fn main() {
    let ticks = 120u64;
    let params = Params::new(4, 0.6).expect("canonical params");
    let faults = FaultPlan::none().rolling_restart(40, 15);
    let cfg = DistConfig::new(params, 400).with_faults(faults);
    let mut fleet = EventRuntime::new(cfg, 20170508)
        .with_async_epochs(StalenessBound::Unbounded)
        .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });

    let mut env =
        BernoulliRewards::linear(params.num_options(), 0.9, 0.1).expect("valid reward spread");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let mut rewards = vec![false; params.num_options()];
    let mut recorder = MetricsRecorder::new(ticks as usize);
    for t in 1..=ticks {
        env.sample(t, &mut rng, &mut rewards);
        fleet.observed_round(&rewards, &mut recorder);
    }

    // One registry feeds both renderers; every series derives from the
    // recorder's per-window frames, i.e. from virtual time only.
    let mut reg = SeriesRegistry::new(ticks as usize);
    let alive = reg.gauge("alive nodes", "nodes");
    let commit = reg.gauge("commit fraction", "frac");
    let skew = reg.gauge("epoch skew", "epochs");
    let churn = reg.counter("churn events", "/tick");
    let imbalance = reg.gauge("shard imbalance", "nodes");
    for f in recorder.frames() {
        reg.push(alive, f.alive as f64);
        reg.push(commit, f.commit_fraction);
        reg.push(skew, f.epoch_skew as f64);
        reg.push(
            churn,
            (f.delta.joins + f.delta.leaves + f.delta.rejoins) as f64,
        );
        let (lo, hi) = f
            .shard_loads
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &l| (lo.min(l), hi.max(l)));
        reg.push(imbalance, hi.saturating_sub(lo) as f64);
    }

    println!("{}", LiveTerm::new().render(&reg));

    let svg = LiveSvg::new("fleet_dashboard example · sharded async fleet, rolling restarts");
    let path = std::path::Path::new("results").join("fleet_dashboard.svg");
    std::fs::create_dir_all("results").expect("create results dir");
    svg.save(&path, &reg).expect("write svg");
    println!(
        "best-option share {:.3} · {} rebalances · snapshot {}",
        fleet.distribution()[0],
        fleet.shard_rebalances(),
        path.display()
    );
}
