//! Quickstart: run the distributed learning dynamics on the paper's
//! base setting and watch the group converge on the best option.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use rand::SeedableRng;
use sociolearn::core::{
    BernoulliRewards, FinitePopulation, GroupDynamics, Params, RegretTracker, RewardModel,
};
use sociolearn::plot::AsciiChart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A group of 10,000 individuals facing 5 options. Option 0 is good
    // 90% of the time; the rest are coin flips (the "one good option"
    // environment the paper's investor example uses).
    let m = 5;
    let params = Params::new(m, 0.6)?;
    let mut env = BernoulliRewards::one_good(m, 0.9)?;
    let mut group = FinitePopulation::new(params, 10_000);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2017);

    println!("parameters: {params}");
    println!(
        "delta = {:.4}; theorem horizon T* = {}; finite-population bound 6 delta = {:.3}",
        params.delta(),
        params.min_horizon(),
        params.regret_bound_finite()
    );

    let horizon = 4 * params.min_horizon();
    let mut tracker = RegretTracker::new(0.9, 0);
    let mut rewards = vec![false; m];
    let mut share_trajectory = Vec::new();

    for t in 1..=horizon {
        let before = group.distribution();
        env.sample(t, &mut rng, &mut rewards);
        group.step(&rewards, &mut rng);
        tracker.record(&before, &rewards, env.qualities().as_deref());
        share_trajectory.push(group.distribution()[0]);
    }

    println!(
        "\nafter T = {horizon} steps: average regret = {:.4} (bound {:.3}), \
         average share on best option = {:.3}",
        tracker.average_regret(),
        params.regret_bound_finite(),
        tracker.average_best_share()
    );
    println!("\nshare of the best option over time:");
    print!(
        "{}",
        AsciiChart::new(70, 12)
            .with_y_range(0.0, 1.0)
            .with_caption("Q_best(t)")
            .render(&share_trajectory)
    );

    // No individual remembered anything beyond its current choice —
    // yet the group implements a stochastic multiplicative-weights
    // update and finds the best option.
    Ok(())
}
