//! Collective nest-site choice (the paper's animal-behaviour
//! motivation, after Pratt et al. and Seeley & Buhrman): a colony on a
//! *social network* — sampling only trail-mates — tracks the best nest
//! site even when site qualities drift and the best site collapses
//! mid-run.
//!
//! Combines two future-work directions from Section 6: network-
//! restricted sampling and changing qualities.
//!
//! ```text
//! cargo run --release --example ant_colony
//! ```

#![forbid(unsafe_code)]

use rand::SeedableRng;
use sociolearn::core::{GroupDynamics, Params, RewardModel};
use sociolearn::env::swap_best;
use sociolearn::graph::{metrics, topology};
use sociolearn::network::NetworkPopulation;
use sociolearn::plot::AsciiChart;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 300 ants on a small-world contact network; 3 candidate nest
    // sites. Site 0 starts best; at step 400 it collapses and site 2
    // becomes best.
    let n = 300;
    let params = Params::new(3, 0.65)?;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1023);
    let graph = topology::watts_strogatz(n, 3, 0.1, &mut rng);
    let deg = metrics::degree_stats(&graph);
    let apl = metrics::average_path_length(&graph, 50, &mut rng);
    println!(
        "colony network: {} ants, mean degree {:.1}, average path length {:.2}",
        n, deg.mean, apl
    );

    let mut env = swap_best(vec![0.9, 0.5, 0.3], 400, 2)?;
    let mut colony = NetworkPopulation::new(params, graph);
    let horizon = 800u64;
    let mut site0 = Vec::new();
    let mut site2 = Vec::new();
    let mut rewards = vec![false; 3];

    for t in 1..=horizon {
        env.sample(t, &mut rng, &mut rewards);
        colony.step(&rewards, &mut rng);
        let q = colony.distribution();
        site0.push(q[0]);
        site2.push(q[2]);
    }

    println!("\nshare of scouting ants per site (site 0 collapses at t = 400):");
    print!(
        "{}",
        AsciiChart::new(72, 14)
            .with_y_range(0.0, 1.0)
            .with_labels(["site 0 (best until 400)", "site 2 (best after 400)"])
            .render_multi(&[&site0, &site2])
    );

    let late: f64 = site2[650..].iter().sum::<f64>() / (horizon as usize - 650) as f64;
    println!(
        "\naverage share on the new best site over the final 150 steps: {late:.3} — the \
         colony re-converges after the swap because mu = {:.3} keeps every site under \
         occasional scout traffic, exactly the role Section 2.1 assigns to mu.",
        params.mu()
    );
    Ok(())
}
