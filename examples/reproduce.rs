//! Runs the full E1–E16 reproduction suite in quick mode through the
//! library API (the `experiments` binary offers the same via CLI with
//! full-size sweeps).
//!
//! ```text
//! cargo run --release --example reproduce
//! ```

#![forbid(unsafe_code)]

use sociolearn::experiments::{registry, run_by_id, ExpContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExpContext::new("results", true, 20170508);
    println!(
        "running {} experiments (quick mode, seed {})\n",
        registry().len(),
        ctx.seed
    );
    let mut failures = Vec::new();
    for exp in registry() {
        // detlint: allow(D2) — wall-clock stopwatch for the per-experiment duration display; no simulated state depends on it
        let started = std::time::Instant::now();
        let report = run_by_id(exp.id, &ctx).map_err(std::io::Error::other)?;
        println!(
            "{:4} {:70} [{}] ({:.1?})",
            report.id,
            exp.title,
            if report.pass { "PASS" } else { "FAIL" },
            started.elapsed()
        );
        if !report.pass {
            failures.push(report.id);
        }
    }
    if failures.is_empty() {
        println!("\nall paper predictions reproduced; reports in results/");
        Ok(())
    } else {
        Err(format!("failed: {failures:?}").into())
    }
}
