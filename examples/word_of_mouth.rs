//! The paper's second worked example (Section 2.1, after
//! Ellison–Fudenberg): word-of-mouth learning with *continuous*
//! rewards and player-specific taste shocks, and its reduction to the
//! paper's `(eta, alpha, beta)` framework.
//!
//! We simulate the full continuous-duel population, print the induced
//! binary-model parameters (closed form vs Monte Carlo), and show the
//! reduced model reaching the same outcome.
//!
//! ```text
//! cargo run --release --example word_of_mouth
//! ```

#![forbid(unsafe_code)]

use rand::SeedableRng;
use sociolearn::core::{FinitePopulation, GroupDynamics, Params, RewardModel};
use sociolearn::env::{BestOfTwoRewards, DuelPopulation, ShockDuel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two restaurants: on 70% of evenings restaurant A is the better
    // experience by a margin of 1.0 "utils"; diners' tastes add
    // N(0, 0.8^2) noise to every comparison.
    let duel = ShockDuel::new(0.7, 1.0, 0.8)?;
    let (eta1, eta2, beta, alpha) = duel.induced_params();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1995);
    let beta_mc = duel.estimate_beta(200_000, &mut rng);

    println!(
        "continuous word-of-mouth model: p = {}, gap = {}, sigma = {}",
        duel.p(),
        duel.gap(),
        duel.sigma()
    );
    println!(
        "induced binary parameters: eta = ({eta1:.3}, {eta2:.3}), beta = {beta:.4} \
         (Monte Carlo check: {beta_mc:.4}), alpha = {alpha:.4}\n"
    );

    // Full continuous model: diners switch restaurants when a sampled
    // acquaintance's experience, net of shocks, beats their own.
    let n = 3_000;
    let mu = 0.02;
    let mut diners = DuelPopulation::new(duel, mu, n)?;
    let horizon = 600u64;
    let mut duel_avg = 0.0;
    for t in 1..=horizon {
        diners.step(&mut rng);
        if t > horizon / 2 {
            duel_avg += diners.share_of_best();
        }
    }
    duel_avg /= (horizon / 2) as f64;

    // Reduced binary model with the induced parameters.
    let params = Params::with_all(2, beta, alpha, mu)?;
    let mut env = BestOfTwoRewards::new(eta1)?;
    let mut group = FinitePopulation::new(params, n);
    let mut rewards = vec![false; 2];
    let mut reduced_avg = 0.0;
    for t in 1..=horizon {
        env.sample(t, &mut rng, &mut rewards);
        group.step(&rewards, &mut rng);
        if t > horizon / 2 {
            reduced_avg += group.distribution()[0];
        }
    }
    reduced_avg /= (horizon / 2) as f64;

    println!("share of diners at the better restaurant (steady state):");
    println!("  full continuous duel : {duel_avg:.3}");
    println!("  reduced binary model : {reduced_avg:.3}");
    println!(
        "\nThe reduction (Section 2.1) maps shocks into a single symmetric variable xi and \
         reads beta off P[xi > -(r1 - r2) | r1 > r2]; both populations settle on the better \
         restaurant, so the binary theory's regret bounds transfer."
    );
    Ok(())
}
