//! # sociolearn
//!
//! A full Rust implementation and reproduction of **"A Distributed
//! Learning Dynamics in Social Groups"** (Celis, Krafft, Vishnoi —
//! PODC 2017, arXiv:1705.03414): the memoryless sample-then-adopt
//! dynamics by which a social group collectively solves a
//! best-option-identification problem, its infinite-population limit
//! (a stochastic multiplicative-weights update), quantitative regret
//! guarantees, and everything needed to re-derive the paper's claims
//! experimentally.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the dynamics themselves (finite, per-agent, infinite,
//!   stochastic MWU), parameters and theorem bounds, regret and
//!   coupling machinery.
//! * [`mod@env`] — reward environments: correlated
//!   best-of-two/best-of-m, continuous duels with shocks, drift,
//!   thresholded rewards, traces.
//! * [`graph`] / [`network`] — topologies and the network-restricted
//!   dynamics (future-work direction 1).
//! * [`baselines`] — Hedge, EXP3, UCB1, Thompson, ε-greedy, FTL,
//!   oracles, and N-agent independent-bandit groups.
//! * [`dist`] — the O(1)-memory message-passing implementation with
//!   fault injection (the paper's sensor-network suggestion).
//! * [`sim`] — seed trees, replication, parallel sweeps, aggregation.
//! * [`stats`] / [`plot`] — the numerics and figure substrate.
//! * [`experiments`] — the E1–E17 reproduction suite.
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sociolearn::core::{
//!     BernoulliRewards, FinitePopulation, GroupDynamics, Params, RegretTracker, RewardModel,
//! };
//!
//! // 10,000 individuals, 5 options, adoption sensitivity beta = 0.6.
//! let params = Params::new(5, 0.6)?;
//! let mut env = BernoulliRewards::one_good(5, 0.9)?;
//! let mut group = FinitePopulation::new(params, 10_000);
//! let mut tracker = RegretTracker::new(0.9, 0);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//!
//! let mut rewards = vec![false; 5];
//! for t in 1..=params.min_horizon() {
//!     let before = group.distribution();
//!     env.sample(t, &mut rng, &mut rewards);
//!     group.step(&rewards, &mut rng);
//!     tracker.record(&before, &rewards, env.qualities().as_deref());
//! }
//! assert!(tracker.average_regret() < params.regret_bound_finite());
//! # Ok::<(), sociolearn::core::ParamsError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sociolearn_baselines as baselines;
pub use sociolearn_core as core;
pub use sociolearn_dist as dist;
pub use sociolearn_env as env;
pub use sociolearn_experiments as experiments;
pub use sociolearn_graph as graph;
pub use sociolearn_network as network;
pub use sociolearn_plot as plot;
pub use sociolearn_sim as sim;
pub use sociolearn_stats as stats;
