//! The Ellison–Fudenberg word-of-mouth environment (the paper's second
//! worked example, Section 2.1): two options with *correlated* rewards
//! — exactly one is good each step — and a continuous-reward variant
//! with player-specific shocks, together with its exact reduction to
//! the paper's `(η, α, β)` parameterization.

use rand::{Rng, RngCore};
use sociolearn_core::{ParamsError, RewardModel};

/// Correlated two-option rewards: each step, option 0 is good with
/// probability `p` and option 1 is good otherwise — never both.
///
/// This induces `η₁ = p`, `η₂ = 1 − p` with perfectly anti-correlated
/// signals. The paper notes (footnote 3) that independence across
/// *time* is all its analysis needs, so the theorems still apply.
///
/// # Example
///
/// ```
/// use sociolearn_env::BestOfTwoRewards;
/// use sociolearn_core::RewardModel;
/// use rand::SeedableRng;
///
/// let mut env = BestOfTwoRewards::new(0.7)?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut out = [false; 2];
/// env.sample(1, &mut rng, &mut out);
/// assert_ne!(out[0], out[1]); // exactly one winner
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestOfTwoRewards {
    p: f64,
}

impl BestOfTwoRewards {
    /// Creates the environment; `p` is the probability option 0 wins.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `p` is not a probability.
    pub fn new(p: f64) -> Result<Self, ParamsError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "p",
                value: p,
            });
        }
        Ok(BestOfTwoRewards { p })
    }

    /// Probability that option 0 wins a given step.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl RewardModel for BestOfTwoRewards {
    fn num_options(&self) -> usize {
        2
    }

    fn sample(&mut self, _t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(out.len(), 2, "reward buffer has wrong length");
        let first_wins = Rng::gen_bool(&mut &mut *rng, self.p);
        out[0] = first_wins;
        out[1] = !first_wins;
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(vec![self.p, 1.0 - self.p])
    }
}

/// The continuous-reward duel underlying [`DuelPopulation`]: each step
/// the winning option pays `gap/2` more than the loser (option 0 wins
/// with probability `p`), and every adoption decision is perturbed by
/// the agent's and the sampled companion's i.i.d. `N(0, σ²)` shocks.
///
/// The paper's reduction replaces the four shock terms by one
/// symmetric variable `ξ ~ N(0, 4σ²)` and reads off
///
/// * `η₁ = p`, `η₂ = 1 − p`,
/// * `β = P[ξ > −gap] = Φ(gap / 2σ)`, `α = 1 − β`,
///
/// which [`ShockDuel::induced_beta`] computes in closed form and
/// [`ShockDuel::estimate_beta`] checks by Monte Carlo (experiment E14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShockDuel {
    p: f64,
    gap: f64,
    sigma: f64,
}

impl ShockDuel {
    /// Creates the duel environment.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `p` is not a probability, or the gap
    /// or shock scale is non-positive/non-finite.
    pub fn new(p: f64, gap: f64, sigma: f64) -> Result<Self, ParamsError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "p",
                value: p,
            });
        }
        if gap <= 0.0 || !gap.is_finite() {
            return Err(ParamsError::BadQuality {
                index: 0,
                value: gap,
            });
        }
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(ParamsError::BadQuality {
                index: 1,
                value: sigma,
            });
        }
        Ok(ShockDuel { p, gap, sigma })
    }

    /// Probability option 0 wins a step (`η₁` in the reduction).
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Reward gap between winner and loser.
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// Per-shock standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The closed-form induced adoption sensitivity
    /// `β = Φ(gap / (2σ))` (the four independent shocks sum to a
    /// `N(0, 4σ²)` variable).
    pub fn induced_beta(&self) -> f64 {
        normal_cdf(self.gap / (2.0 * self.sigma))
    }

    /// Monte Carlo estimate of `β`: frequency with which an agent
    /// facing a winner-by-`gap` comparison (with all four shocks)
    /// would stick with the winner.
    pub fn estimate_beta<R: Rng + ?Sized>(&self, samples: u32, rng: &mut R) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let mut hits = 0u32;
        for _ in 0..samples {
            let xi: f64 = (0..4).map(|_| normal_sample(rng) * self.sigma).sum();
            if self.gap + xi > 0.0 {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }

    /// The induced binary-model parameters `(η₁, η₂, β, α)`.
    pub fn induced_params(&self) -> (f64, f64, f64, f64) {
        let beta = self.induced_beta();
        (self.p, 1.0 - self.p, beta, 1.0 - beta)
    }
}

impl RewardModel for ShockDuel {
    fn num_options(&self) -> usize {
        2
    }

    /// Samples the induced *binary* signals (which option won).
    fn sample(&mut self, _t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(out.len(), 2, "reward buffer has wrong length");
        let first_wins = Rng::gen_bool(&mut &mut *rng, self.p);
        out[0] = first_wins;
        out[1] = !first_wins;
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(vec![self.p, 1.0 - self.p])
    }
}

/// The *full* Ellison–Fudenberg population dynamics over a
/// [`ShockDuel`] environment, simulated agent by agent with explicit
/// continuous rewards and shocks — no binary reduction.
///
/// Each step, every agent holding option `a` samples a companion
/// (uniformly from last step's population; with probability `mu` it
/// instead considers a uniformly random option) and so observes some
/// option `b`. If `b == a` nothing changes — word-of-mouth only
/// carries information about the option the companion actually holds.
/// If `b != a`, the agent compares the two shocked rewards
/// (`r_b + ε_{ib} + ε_{i'b}` vs `r_a + ε_{ia} + ε_{i'a}`) and switches
/// to `b` exactly when the comparison favors it — which happens with
/// probability `β = Φ(gap/2σ)` when `b` won the step and `1 − β`
/// otherwise, the paper's induced adoption rule. Unlike the base
/// model there is no sitting out: Ellison–Fudenberg agents always
/// hold an option, keeping their current one when not persuaded.
/// Experiment E14 quantifies how well the reduced binary model tracks
/// this full model.
#[derive(Debug, Clone, PartialEq)]
pub struct DuelPopulation {
    duel: ShockDuel,
    mu: f64,
    /// Current option per agent (0 or 1).
    choices: Vec<u8>,
    counts: [u64; 2],
    steps: u64,
}

impl DuelPopulation {
    /// Creates `n` agents split evenly between the two options.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `mu` is not a probability.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(duel: ShockDuel, mu: f64, n: usize) -> Result<Self, ParamsError> {
        assert!(n > 0, "population must be non-empty");
        if !(0.0..=1.0).contains(&mu) || mu.is_nan() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "mu",
                value: mu,
            });
        }
        let choices: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let ones = choices.iter().filter(|&&c| c == 1).count() as u64;
        Ok(DuelPopulation {
            duel,
            mu,
            counts: [n as u64 - ones, ones],
            choices,
            steps: 0,
        })
    }

    /// Fraction of agents currently on option 0.
    pub fn share_of_best(&self) -> f64 {
        self.counts[0] as f64 / self.choices.len() as f64
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances one step. The continuous winner (±gap) is drawn once
    /// for the whole step (rewards are common across agents, as in the
    /// source model); shocks are per agent/companion.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.choices.len();
        let first_wins = rng.gen_bool(self.duel.p());
        // r_0 - r_1 for this step:
        let reward_diff = if first_wins {
            self.duel.gap()
        } else {
            -self.duel.gap()
        };
        let sigma = self.duel.sigma();
        let prev = self.choices.clone();
        let mut counts = [0u64; 2];
        for choice in self.choices.iter_mut() {
            // Stage 1: what option does the agent observe?
            let observed = if self.mu > 0.0 && rng.gen_bool(self.mu) {
                rng.gen_range(0..2) as u8
            } else {
                prev[rng.gen_range(0..n)]
            };
            // Stage 2: switch to the observed option iff it differs
            // from the agent's own and the shocked comparison favors
            // it; otherwise keep the current option.
            if observed != *choice {
                let xi: f64 = (0..4).map(|_| normal_sample(rng) * sigma).sum();
                let observed_advantage = if observed == 0 {
                    reward_diff
                } else {
                    -reward_diff
                };
                if observed_advantage + xi > 0.0 {
                    *choice = observed;
                }
            }
            counts[*choice as usize] += 1;
        }
        self.counts = counts;
        self.steps += 1;
    }
}

/// Standard normal CDF (same Abramowitz–Stegun approximation as the
/// stats crate; duplicated here to keep `env` free of that dependency).
fn normal_cdf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.5;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let z = x.abs() / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * z);
    let erf = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-z * z).exp();
    0.5 * (1.0 + sign * erf)
}

/// One standard normal draw via Box–Muller.
fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn best_of_two_always_one_winner() {
        let mut env = BestOfTwoRewards::new(0.6).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = [false; 2];
        let mut wins = 0u32;
        for t in 0..20_000 {
            env.sample(t, &mut rng, &mut out);
            assert_ne!(out[0], out[1]);
            wins += out[0] as u32;
        }
        let freq = wins as f64 / 20_000.0;
        assert!((freq - 0.6).abs() < 0.02, "freq={freq}");
        assert_eq!(env.qualities(), Some(vec![0.6, 0.4]));
    }

    #[test]
    fn best_of_two_validates() {
        assert!(BestOfTwoRewards::new(1.5).is_err());
        assert!(BestOfTwoRewards::new(f64::NAN).is_err());
        assert!(BestOfTwoRewards::new(0.0).is_ok());
    }

    #[test]
    fn duel_validates() {
        assert!(ShockDuel::new(0.6, 0.0, 1.0).is_err());
        assert!(ShockDuel::new(0.6, 1.0, 0.0).is_err());
        assert!(ShockDuel::new(2.0, 1.0, 1.0).is_err());
        assert!(ShockDuel::new(0.6, 1.0, 1.0).is_ok());
    }

    #[test]
    fn induced_beta_closed_form_matches_monte_carlo() {
        let duel = ShockDuel::new(0.65, 1.0, 0.8).unwrap();
        let closed = duel.induced_beta();
        let mut rng = SmallRng::seed_from_u64(2);
        let mc = duel.estimate_beta(200_000, &mut rng);
        assert!(
            (closed - mc).abs() < 0.01,
            "closed {closed} vs Monte Carlo {mc}"
        );
        // beta must be informative (> 1/2) for a positive gap.
        assert!(closed > 0.5);
        let (eta1, eta2, beta, alpha) = duel.induced_params();
        assert!((eta1 + eta2 - 1.0).abs() < 1e-12);
        assert!((alpha + beta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_beta_monotone_in_gap() {
        let weak = ShockDuel::new(0.6, 0.2, 1.0).unwrap();
        let strong = ShockDuel::new(0.6, 3.0, 1.0).unwrap();
        assert!(strong.induced_beta() > weak.induced_beta());
    }

    #[test]
    fn duel_population_converges_to_winner() {
        let duel = ShockDuel::new(0.8, 2.0, 0.5).unwrap();
        let mut pop = DuelPopulation::new(duel, 0.02, 2_000).unwrap();
        assert!((pop.share_of_best() - 0.5).abs() < 0.01);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut avg = 0.0;
        for _ in 0..200 {
            pop.step(&mut rng);
        }
        for _ in 0..100 {
            pop.step(&mut rng);
            avg += pop.share_of_best();
        }
        avg /= 100.0;
        assert!(avg > 0.7, "duel population failed to favor winner: {avg}");
        assert_eq!(pop.steps(), 300);
    }

    #[test]
    fn duel_population_validates_mu() {
        let duel = ShockDuel::new(0.6, 1.0, 1.0).unwrap();
        assert!(DuelPopulation::new(duel, 1.5, 10).is_err());
    }

    #[test]
    fn normal_helpers_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(normal_cdf(5.0) > 0.999);
        assert!(normal_cdf(-5.0) < 0.001);
        let mut rng = SmallRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| normal_sample(&mut rng)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "normal mean {mean}");
    }
}

/// Correlated `m`-option rewards: exactly one option is good each
/// step, drawn from a fixed winner distribution — the natural
/// `m`-option generalization of [`BestOfTwoRewards`] (think: exactly
/// one queue is fast, exactly one route is clear).
///
/// Induces `η_j = w_j` with perfectly anti-correlated signals;
/// independence across time is what the paper's analysis needs
/// (footnote 3).
///
/// # Example
///
/// ```
/// use sociolearn_env::BestOfMRewards;
/// use sociolearn_core::RewardModel;
/// use rand::SeedableRng;
///
/// let mut env = BestOfMRewards::new(vec![0.5, 0.3, 0.2])?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut out = [false; 3];
/// env.sample(1, &mut rng, &mut out);
/// assert_eq!(out.iter().filter(|&&r| r).count(), 1);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BestOfMRewards {
    winner_probs: Vec<f64>,
}

impl BestOfMRewards {
    /// Creates the environment from winner probabilities (must sum to
    /// 1 within 1e-9).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if the vector is empty, any entry is
    /// not a probability, or the total is not 1.
    pub fn new(winner_probs: Vec<f64>) -> Result<Self, ParamsError> {
        if winner_probs.is_empty() {
            return Err(ParamsError::NoOptions);
        }
        for (index, &value) in winner_probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ParamsError::BadQuality { index, value });
            }
        }
        let total: f64 = winner_probs.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(ParamsError::BadQuality {
                index: 0,
                value: total,
            });
        }
        Ok(BestOfMRewards { winner_probs })
    }

    /// The winner distribution.
    pub fn winner_probs(&self) -> &[f64] {
        &self.winner_probs
    }
}

impl RewardModel for BestOfMRewards {
    fn num_options(&self) -> usize {
        self.winner_probs.len()
    }

    fn sample(&mut self, _t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(
            out.len(),
            self.winner_probs.len(),
            "reward buffer has wrong length"
        );
        out.fill(false);
        let winner = sociolearn_core::sample_categorical(&mut &mut *rng, &self.winner_probs);
        out[winner] = true;
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(self.winner_probs.clone())
    }
}

#[cfg(test)]
mod best_of_m_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(BestOfMRewards::new(vec![]).is_err());
        assert!(BestOfMRewards::new(vec![0.5, 0.4]).is_err()); // sums to 0.9
        assert!(BestOfMRewards::new(vec![0.5, -0.5, 1.0]).is_err());
        assert!(BestOfMRewards::new(vec![0.25; 4]).is_ok());
    }

    #[test]
    fn exactly_one_winner_with_right_frequency() {
        let mut env = BestOfMRewards::new(vec![0.6, 0.3, 0.1]).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut out = [false; 3];
        let mut wins = [0u32; 3];
        let trials = 30_000;
        for t in 0..trials {
            env.sample(t, &mut rng, &mut out);
            assert_eq!(out.iter().filter(|&&r| r).count(), 1);
            wins[out.iter().position(|&r| r).unwrap()] += 1;
        }
        for (j, &expect) in [0.6, 0.3, 0.1].iter().enumerate() {
            let freq = wins[j] as f64 / trials as f64;
            assert!(
                (freq - expect).abs() < 0.01,
                "option {j}: {freq} vs {expect}"
            );
        }
        assert_eq!(env.best_index(), Some(0));
    }

    #[test]
    fn two_option_case_matches_best_of_two_law() {
        let mut a = BestOfMRewards::new(vec![0.7, 0.3]).unwrap();
        let mut b = BestOfTwoRewards::new(0.7).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut out = [false; 2];
        let (mut wa, mut wb) = (0u32, 0u32);
        for t in 0..20_000 {
            a.sample(t, &mut rng, &mut out);
            wa += out[0] as u32;
            b.sample(t, &mut rng, &mut out);
            wb += out[0] as u32;
        }
        assert!((wa as f64 - wb as f64).abs() / 20_000.0 < 0.02);
    }
}
