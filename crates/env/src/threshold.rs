//! Continuous rewards binarized by a threshold — the standard
//! conversion the paper cites in Section 3 ("models that have
//! continuous rewards but whose adoption rule depends on whether the
//! reward is above or below a threshold ... can be converted to a
//! binary reward structure in a standard way").

use rand::{Rng, RngCore};
use sociolearn_core::{ParamsError, RewardModel};

/// A continuous reward distribution with samplable draws and a
/// closed-form CDF (so the induced Bernoulli quality is exact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContinuousDist {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be positive).
        sd: f64,
    },
    /// Exponential with the given rate (support `[0, ∞)`).
    Exponential {
        /// Rate parameter λ (must be positive).
        rate: f64,
    },
}

impl ContinuousDist {
    fn validate(&self) -> Result<(), ParamsError> {
        let ok = match self {
            ContinuousDist::Uniform { lo, hi } => lo.is_finite() && hi.is_finite() && lo < hi,
            ContinuousDist::Normal { mean, sd } => mean.is_finite() && *sd > 0.0 && sd.is_finite(),
            ContinuousDist::Exponential { rate } => *rate > 0.0 && rate.is_finite(),
        };
        if ok {
            Ok(())
        } else {
            Err(ParamsError::BadQuality {
                index: 0,
                value: f64::NAN,
            })
        }
    }

    /// One draw from the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ContinuousDist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            ContinuousDist::Normal { mean, sd } => {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            }
            ContinuousDist::Exponential { rate } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / rate
            }
        }
    }

    /// The CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            ContinuousDist::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            ContinuousDist::Normal { mean, sd } => {
                let z = (x - mean) / (sd * std::f64::consts::SQRT_2);
                0.5 * (1.0 + erf(z))
            }
            ContinuousDist::Exponential { rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
        }
    }
}

fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Continuous per-option rewards, binarized at threshold `tau`:
/// `R_j = 1{ r_j > tau }` with `r_j ~ dist_j` independently.
///
/// The induced qualities `η_j = 1 − F_j(tau)` are exact, so the
/// paper's theory applies verbatim to the binarized process.
///
/// # Example
///
/// ```
/// use sociolearn_env::{ContinuousDist, ThresholdRewards};
/// use sociolearn_core::RewardModel;
///
/// let env = ThresholdRewards::new(
///     vec![
///         ContinuousDist::Normal { mean: 1.0, sd: 1.0 },
///         ContinuousDist::Normal { mean: 0.0, sd: 1.0 },
///     ],
///     0.5,
/// )?;
/// let etas = env.qualities().unwrap();
/// assert!(etas[0] > etas[1]);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRewards {
    dists: Vec<ContinuousDist>,
    tau: f64,
}

impl ThresholdRewards {
    /// Creates the environment.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if the list is empty, any distribution
    /// is malformed, or `tau` is not finite.
    pub fn new(dists: Vec<ContinuousDist>, tau: f64) -> Result<Self, ParamsError> {
        if dists.is_empty() {
            return Err(ParamsError::NoOptions);
        }
        if !tau.is_finite() {
            return Err(ParamsError::BadQuality {
                index: 0,
                value: tau,
            });
        }
        for d in &dists {
            d.validate()?;
        }
        Ok(ThresholdRewards { dists, tau })
    }

    /// The threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The underlying distributions.
    pub fn dists(&self) -> &[ContinuousDist] {
        &self.dists
    }
}

impl RewardModel for ThresholdRewards {
    fn num_options(&self) -> usize {
        self.dists.len()
    }

    fn sample(&mut self, _t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(
            out.len(),
            self.dists.len(),
            "reward buffer has wrong length"
        );
        for (slot, d) in out.iter_mut().zip(&self.dists) {
            *slot = d.sample(&mut &mut *rng) > self.tau;
        }
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(self.dists.iter().map(|d| 1.0 - d.cdf(self.tau)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_cdf_and_sampling() {
        let d = ContinuousDist::Uniform { lo: 0.0, hi: 2.0 };
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(1.0), 0.5);
        assert_eq!(d.cdf(3.0), 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((0.0..2.0).contains(&x));
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        let d = ContinuousDist::Normal { mean: 3.0, sd: 2.0 };
        assert!((d.cdf(3.0) - 0.5).abs() < 1e-9);
        assert!((d.cdf(1.0) + d.cdf(5.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exponential_cdf() {
        let d = ContinuousDist::Exponential { rate: 2.0 };
        assert_eq!(d.cdf(-1.0), 0.0);
        assert!((d.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn empirical_quality_matches_cdf() {
        let mut env =
            ThresholdRewards::new(vec![ContinuousDist::Exponential { rate: 1.0 }], 1.0).unwrap();
        let eta = env.qualities().unwrap()[0];
        // P[Exp(1) > 1] = e^-1.
        assert!((eta - (-1.0f64).exp()).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = [false; 1];
        let mut hits = 0u32;
        for t in 0..30_000 {
            env.sample(t, &mut rng, &mut out);
            hits += out[0] as u32;
        }
        let freq = hits as f64 / 30_000.0;
        assert!((freq - eta).abs() < 0.01, "freq {freq} vs eta {eta}");
    }

    #[test]
    fn validation() {
        assert!(ThresholdRewards::new(vec![], 0.0).is_err());
        assert!(
            ThresholdRewards::new(vec![ContinuousDist::Uniform { lo: 1.0, hi: 0.0 }], 0.0).is_err()
        );
        assert!(ThresholdRewards::new(
            vec![ContinuousDist::Normal {
                mean: 0.0,
                sd: -1.0
            }],
            0.0
        )
        .is_err());
        assert!(
            ThresholdRewards::new(vec![ContinuousDist::Exponential { rate: 0.0 }], 0.0).is_err()
        );
        assert!(ThresholdRewards::new(
            vec![ContinuousDist::Uniform { lo: 0.0, hi: 1.0 }],
            f64::NAN
        )
        .is_err());
    }

    #[test]
    fn ordering_preserved_by_threshold() {
        let env = ThresholdRewards::new(
            vec![
                ContinuousDist::Normal { mean: 2.0, sd: 1.0 },
                ContinuousDist::Normal { mean: 1.0, sd: 1.0 },
                ContinuousDist::Normal { mean: 0.0, sd: 1.0 },
            ],
            1.0,
        )
        .unwrap();
        let etas = env.qualities().unwrap();
        assert!(etas[0] > etas[1]);
        assert!(etas[1] > etas[2]);
        assert_eq!(env.best_index(), Some(0));
    }
}
