//! Drifting qualities — the paper's future-work direction "when the
//! parameters controlling the quality of the options are allowed to
//! change".

use rand::{Rng, RngCore};
use sociolearn_core::{ParamsError, RewardModel};

/// Piecewise-stationary qualities: a schedule of quality vectors, each
/// taking effect at a given (1-based) step and lasting until the next.
///
/// # Example
///
/// ```
/// use sociolearn_env::PiecewiseStationary;
/// use sociolearn_core::RewardModel;
///
/// // Option 0 is best until step 100, then option 1 takes over.
/// let env = PiecewiseStationary::new(vec![
///     (1, vec![0.9, 0.5]),
///     (100, vec![0.5, 0.9]),
/// ])?;
/// assert_eq!(env.qualities_at(50), &[0.9, 0.5]);
/// assert_eq!(env.qualities_at(100), &[0.5, 0.9]);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseStationary {
    /// `(start_step, qualities)`, sorted by start step; first entry
    /// starts at step 1.
    schedule: Vec<(u64, Vec<f64>)>,
    current_t: u64,
}

impl PiecewiseStationary {
    /// Creates the schedule. Segments must be non-empty, start at step
    /// 1, be strictly increasing in start step, and agree on the
    /// number of options.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] on an empty or malformed schedule or
    /// out-of-range qualities.
    pub fn new(schedule: Vec<(u64, Vec<f64>)>) -> Result<Self, ParamsError> {
        if schedule.is_empty() || schedule[0].1.is_empty() {
            return Err(ParamsError::NoOptions);
        }
        if schedule[0].0 != 1 {
            return Err(ParamsError::BadQuality {
                index: 0,
                value: schedule[0].0 as f64,
            });
        }
        let m = schedule[0].1.len();
        let mut prev_start = 0;
        for (start, etas) in &schedule {
            if *start <= prev_start {
                return Err(ParamsError::BadQuality {
                    index: 0,
                    value: *start as f64,
                });
            }
            prev_start = *start;
            if etas.len() != m {
                return Err(ParamsError::NoOptions);
            }
            for (index, &value) in etas.iter().enumerate() {
                if !(0.0..=1.0).contains(&value) || value.is_nan() {
                    return Err(ParamsError::BadQuality { index, value });
                }
            }
        }
        Ok(PiecewiseStationary {
            schedule,
            current_t: 1,
        })
    }

    /// The quality vector in force at step `t` (1-based).
    pub fn qualities_at(&self, t: u64) -> &[f64] {
        let mut active = &self.schedule[0].1;
        for (start, etas) in &self.schedule {
            if *start <= t.max(1) {
                active = etas;
            } else {
                break;
            }
        }
        active
    }

    /// The step at which each segment begins.
    pub fn change_points(&self) -> Vec<u64> {
        self.schedule.iter().map(|(s, _)| *s).collect()
    }
}

impl RewardModel for PiecewiseStationary {
    fn num_options(&self) -> usize {
        self.schedule[0].1.len()
    }

    fn sample(&mut self, t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(
            out.len(),
            self.num_options(),
            "reward buffer has wrong length"
        );
        self.current_t = t;
        let etas = self.qualities_at(t).to_vec();
        for (slot, eta) in out.iter_mut().zip(etas) {
            *slot = Rng::gen_bool(&mut &mut *rng, eta);
        }
    }

    /// Qualities at the most recently sampled step.
    fn qualities(&self) -> Option<Vec<f64>> {
        Some(self.qualities_at(self.current_t).to_vec())
    }
}

/// Convenience: the "best option swaps" schedule used by the recovery
/// experiments — `etas` until `swap_at`, then options 0 and `swap_with`
/// exchange qualities.
///
/// # Errors
///
/// Returns [`ParamsError`] if the inputs are malformed.
///
/// # Panics
///
/// Panics if `swap_with` is out of range or `swap_at < 2`.
pub fn swap_best(
    etas: Vec<f64>,
    swap_at: u64,
    swap_with: usize,
) -> Result<PiecewiseStationary, ParamsError> {
    assert!(swap_with < etas.len(), "swap target out of range");
    assert!(swap_at >= 2, "swap must happen after step 1");
    let mut swapped = etas.clone();
    swapped.swap(0, swap_with);
    PiecewiseStationary::new(vec![(1, etas), (swap_at, swapped)])
}

/// Qualities performing independent bounded random walks: each step,
/// every `η_j` moves by `±step_size` (reflected into `[lo, hi]`).
///
/// Models slow environmental drift; the paper's regret machinery does
/// not cover this case, which is exactly why it is interesting to
/// measure (experiment E12 companion).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomWalkQualities {
    etas: Vec<f64>,
    step_size: f64,
    lo: f64,
    hi: f64,
}

impl RandomWalkQualities {
    /// Creates the walk from initial qualities and a step size, with
    /// reflection bounds `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] on empty/malformed input, or bounds not
    /// satisfying `0 ≤ lo < hi ≤ 1`.
    pub fn new(etas: Vec<f64>, step_size: f64, lo: f64, hi: f64) -> Result<Self, ParamsError> {
        if etas.is_empty() {
            return Err(ParamsError::NoOptions);
        }
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo >= hi {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "bounds",
                value: lo,
            });
        }
        if !step_size.is_finite() || step_size <= 0.0 || step_size >= (hi - lo) {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "step_size",
                value: step_size,
            });
        }
        for (index, &value) in etas.iter().enumerate() {
            if !(lo..=hi).contains(&value) {
                return Err(ParamsError::BadQuality { index, value });
            }
        }
        Ok(RandomWalkQualities {
            etas,
            step_size,
            lo,
            hi,
        })
    }

    /// Current quality vector.
    pub fn etas(&self) -> &[f64] {
        &self.etas
    }
}

impl RewardModel for RandomWalkQualities {
    fn num_options(&self) -> usize {
        self.etas.len()
    }

    fn sample(&mut self, _t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(out.len(), self.etas.len(), "reward buffer has wrong length");
        // Move first, then emit signals from the new qualities.
        for eta in self.etas.iter_mut() {
            let delta = if Rng::gen_bool(&mut &mut *rng, 0.5) {
                self.step_size
            } else {
                -self.step_size
            };
            let mut v = *eta + delta;
            if v > self.hi {
                v = 2.0 * self.hi - v;
            }
            if v < self.lo {
                v = 2.0 * self.lo - v;
            }
            *eta = v.clamp(self.lo, self.hi);
        }
        for (slot, &eta) in out.iter_mut().zip(&self.etas) {
            *slot = Rng::gen_bool(&mut &mut *rng, eta);
        }
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(self.etas.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_lookup() {
        let env = PiecewiseStationary::new(vec![
            (1, vec![0.9, 0.1]),
            (10, vec![0.5, 0.5]),
            (20, vec![0.1, 0.9]),
        ])
        .unwrap();
        assert_eq!(env.qualities_at(1), &[0.9, 0.1]);
        assert_eq!(env.qualities_at(9), &[0.9, 0.1]);
        assert_eq!(env.qualities_at(10), &[0.5, 0.5]);
        assert_eq!(env.qualities_at(25), &[0.1, 0.9]);
        assert_eq!(env.change_points(), vec![1, 10, 20]);
    }

    #[test]
    fn schedule_validation() {
        assert!(PiecewiseStationary::new(vec![]).is_err());
        assert!(PiecewiseStationary::new(vec![(2, vec![0.5])]).is_err());
        assert!(PiecewiseStationary::new(vec![(1, vec![0.5]), (1, vec![0.5])]).is_err());
        assert!(PiecewiseStationary::new(vec![(1, vec![0.5]), (5, vec![0.5, 0.5])]).is_err());
        assert!(PiecewiseStationary::new(vec![(1, vec![1.5])]).is_err());
    }

    #[test]
    fn qualities_follow_sampling_time() {
        let mut env =
            PiecewiseStationary::new(vec![(1, vec![1.0, 0.0]), (5, vec![0.0, 1.0])]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = [false; 2];
        env.sample(1, &mut rng, &mut out);
        assert_eq!(out, [true, false]);
        assert_eq!(env.qualities(), Some(vec![1.0, 0.0]));
        env.sample(5, &mut rng, &mut out);
        assert_eq!(out, [false, true]);
        assert_eq!(env.qualities(), Some(vec![0.0, 1.0]));
    }

    #[test]
    fn swap_best_schedule() {
        let env = swap_best(vec![0.9, 0.5, 0.3], 50, 2).unwrap();
        assert_eq!(env.qualities_at(49), &[0.9, 0.5, 0.3]);
        assert_eq!(env.qualities_at(50), &[0.3, 0.5, 0.9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn swap_best_validates_target() {
        let _ = swap_best(vec![0.9, 0.5], 50, 5);
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut env = RandomWalkQualities::new(vec![0.5, 0.5], 0.05, 0.2, 0.8).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = [false; 2];
        for t in 0..5_000 {
            env.sample(t, &mut rng, &mut out);
            for &eta in env.etas() {
                assert!((0.2..=0.8).contains(&eta), "walk escaped: {eta}");
            }
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut env = RandomWalkQualities::new(vec![0.5], 0.05, 0.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = [false; 1];
        let mut seen_low = false;
        let mut seen_high = false;
        for t in 0..20_000 {
            env.sample(t, &mut rng, &mut out);
            if env.etas()[0] < 0.3 {
                seen_low = true;
            }
            if env.etas()[0] > 0.7 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high, "walk failed to explore");
    }

    #[test]
    fn random_walk_validation() {
        assert!(RandomWalkQualities::new(vec![], 0.1, 0.0, 1.0).is_err());
        assert!(RandomWalkQualities::new(vec![0.5], 0.0, 0.0, 1.0).is_err());
        assert!(RandomWalkQualities::new(vec![0.5], 0.1, 0.6, 0.4).is_err());
        assert!(RandomWalkQualities::new(vec![0.9], 0.1, 0.0, 0.5).is_err());
    }
}
