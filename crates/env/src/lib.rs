//! # sociolearn-env
//!
//! Reward environments beyond the plain independent-Bernoulli base
//! model, covering every environment class the paper discusses:
//!
//! * [`BestOfTwoRewards`] / [`BestOfMRewards`] — correlated environments
//!   in which exactly one option is "good" each step (Ellison–Fudenberg
//!   and its m-option generalization),
//! * [`ShockDuel`] / [`DuelPopulation`] — the full continuous-reward
//!   word-of-mouth model with player-specific shocks, plus its exact
//!   reduction to the paper's `(η, α, β)` parameterization,
//! * [`PiecewiseStationary`], [`RandomWalkQualities`], [`swap_best`] —
//!   drifting qualities (the paper's future-work direction),
//! * [`ThresholdRewards`] — continuous rewards binarized by a
//!   threshold, the standard conversion cited in Section 3,
//! * [`TraceRewards`] / [`RecordingRewards`] — record/replay, used by
//!   the coupling experiments to feed identical reward realizations to
//!   different processes,
//! * [`PeriodicRewards`] — deterministic adversarial-ish sequences for
//!   robustness tests.
//!
//! All implement [`sociolearn_core::RewardModel`], so any dynamics in
//! the workspace can run against any of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod correlated;
mod drift;
mod threshold;
mod trace;

pub use adversarial::PeriodicRewards;
pub use correlated::{BestOfMRewards, BestOfTwoRewards, DuelPopulation, ShockDuel};
pub use drift::{swap_best, PiecewiseStationary, RandomWalkQualities};
pub use threshold::{ContinuousDist, ThresholdRewards};
pub use trace::{RecordingRewards, TraceRewards};
