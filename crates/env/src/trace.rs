//! Record-and-replay reward streams.
//!
//! The coupling experiments (Lemma 4.5) require feeding *identical*
//! reward realizations to several processes whose own sampling noise
//! differs. [`RecordingRewards`] captures a stream as it is drawn;
//! [`TraceRewards`] replays a captured (or hand-written) stream.

use rand::RngCore;
use sociolearn_core::{ParamsError, RewardModel};

/// Replays a fixed matrix of reward bits; step `t` (1-based) returns
/// row `t-1`, cycling if the trace is shorter than the run.
///
/// # Example
///
/// ```
/// use sociolearn_env::TraceRewards;
/// use sociolearn_core::RewardModel;
/// use rand::SeedableRng;
///
/// let mut env = TraceRewards::new(vec![vec![true, false], vec![false, true]])?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut out = [false; 2];
/// env.sample(1, &mut rng, &mut out);
/// assert_eq!(out, [true, false]);
/// env.sample(3, &mut rng, &mut out); // wraps around
/// assert_eq!(out, [true, false]);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRewards {
    rows: Vec<Vec<bool>>,
}

impl TraceRewards {
    /// Creates a replay source from reward rows.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if the trace is empty or rows have
    /// inconsistent widths.
    pub fn new(rows: Vec<Vec<bool>>) -> Result<Self, ParamsError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(ParamsError::NoOptions);
        }
        let m = rows[0].len();
        if rows.iter().any(|r| r.len() != m) {
            return Err(ParamsError::NoOptions);
        }
        Ok(TraceRewards { rows })
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the trace is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<bool>] {
        &self.rows
    }
}

impl RewardModel for TraceRewards {
    fn num_options(&self) -> usize {
        self.rows[0].len()
    }

    fn sample(&mut self, t: u64, _rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(
            out.len(),
            self.num_options(),
            "reward buffer has wrong length"
        );
        let idx = ((t.max(1) - 1) as usize) % self.rows.len();
        out.copy_from_slice(&self.rows[idx]);
    }

    // Qualities intentionally unknown: traces carry no distribution.
}

/// Wraps another reward model and records every drawn row, so the same
/// realization can later be replayed through [`TraceRewards`].
#[derive(Debug, Clone)]
pub struct RecordingRewards<M> {
    inner: M,
    recorded: Vec<Vec<bool>>,
}

impl<M: RewardModel> RecordingRewards<M> {
    /// Wraps `inner`.
    pub fn new(inner: M) -> Self {
        RecordingRewards {
            inner,
            recorded: Vec::new(),
        }
    }

    /// The rows drawn so far.
    pub fn recorded(&self) -> &[Vec<bool>] {
        &self.recorded
    }

    /// Consumes the recorder and returns a replayable trace.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if nothing was recorded.
    pub fn into_trace(self) -> Result<TraceRewards, ParamsError> {
        TraceRewards::new(self.recorded)
    }

    /// Consumes the recorder, returning the wrapped model.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: RewardModel> RewardModel for RecordingRewards<M> {
    fn num_options(&self) -> usize {
        self.inner.num_options()
    }

    fn sample(&mut self, t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        self.inner.sample(t, rng, out);
        self.recorded.push(out.to_vec());
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        self.inner.qualities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sociolearn_core::BernoulliRewards;

    #[test]
    fn trace_validation() {
        assert!(TraceRewards::new(vec![]).is_err());
        assert!(TraceRewards::new(vec![vec![]]).is_err());
        assert!(TraceRewards::new(vec![vec![true], vec![true, false]]).is_err());
        let t = TraceRewards::new(vec![vec![true, false]]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.num_options(), 2);
    }

    #[test]
    fn trace_has_no_qualities() {
        let t = TraceRewards::new(vec![vec![true]]).unwrap();
        assert_eq!(t.qualities(), None);
        assert_eq!(t.best_quality(), None);
    }

    #[test]
    fn record_then_replay_identical() {
        let base = BernoulliRewards::linear(3, 0.9, 0.1).unwrap();
        let mut recorder = RecordingRewards::new(base);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = [false; 3];
        let mut original = Vec::new();
        for t in 1..=50 {
            recorder.sample(t, &mut rng, &mut out);
            original.push(out.to_vec());
        }
        assert_eq!(recorder.recorded().len(), 50);
        let mut replay = recorder.into_trace().unwrap();
        for (t, want) in original.iter().enumerate() {
            replay.sample(t as u64 + 1, &mut rng, &mut out);
            assert_eq!(&out.to_vec(), want, "mismatch at step {t}");
        }
    }

    #[test]
    fn recorder_passes_through_qualities() {
        let base = BernoulliRewards::one_good(4, 0.8).unwrap();
        let rec = RecordingRewards::new(base);
        assert_eq!(rec.qualities().unwrap()[0], 0.8);
        assert_eq!(rec.num_options(), 4);
        let inner = rec.into_inner();
        assert_eq!(inner.etas()[0], 0.8);
    }

    #[test]
    fn empty_recorder_cannot_become_trace() {
        let base = BernoulliRewards::one_good(2, 0.8).unwrap();
        let rec = RecordingRewards::new(base);
        assert!(rec.into_trace().is_err());
    }
}
