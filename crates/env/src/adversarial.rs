//! Deterministic periodic reward sequences.
//!
//! The paper's analysis is for stochastic i.i.d. signals; these
//! deterministic patterns probe how the dynamics behave outside that
//! assumption (the classic MWU analysis would cover them — the
//! stochastic dynamics inherits some of that robustness, which the
//! robustness tests quantify).

use rand::RngCore;
use sociolearn_core::{ParamsError, RewardModel};

/// Cycles deterministically through a fixed list of reward patterns.
///
/// # Example
///
/// ```
/// use sociolearn_env::PeriodicRewards;
/// use sociolearn_core::RewardModel;
/// use rand::SeedableRng;
///
/// // Option 0 good on odd steps, option 1 on even steps.
/// let mut env = PeriodicRewards::new(vec![vec![true, false], vec![false, true]])?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut out = [false; 2];
/// env.sample(1, &mut rng, &mut out);
/// assert_eq!(out, [true, false]);
/// env.sample(2, &mut rng, &mut out);
/// assert_eq!(out, [false, true]);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicRewards {
    patterns: Vec<Vec<bool>>,
}

impl PeriodicRewards {
    /// Creates the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if the pattern list is empty or widths
    /// disagree.
    pub fn new(patterns: Vec<Vec<bool>>) -> Result<Self, ParamsError> {
        if patterns.is_empty() || patterns[0].is_empty() {
            return Err(ParamsError::NoOptions);
        }
        let m = patterns[0].len();
        if patterns.iter().any(|p| p.len() != m) {
            return Err(ParamsError::NoOptions);
        }
        Ok(PeriodicRewards { patterns })
    }

    /// An alternating two-option pattern with the given duty cycle:
    /// option 0 is good for `on` steps, then option 1 for `off` steps.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if either phase is empty.
    pub fn alternating(on: usize, off: usize) -> Result<Self, ParamsError> {
        if on == 0 || off == 0 {
            return Err(ParamsError::NoOptions);
        }
        let mut patterns = Vec::with_capacity(on + off);
        for _ in 0..on {
            patterns.push(vec![true, false]);
        }
        for _ in 0..off {
            patterns.push(vec![false, true]);
        }
        PeriodicRewards::new(patterns)
    }

    /// Cycle length.
    pub fn period(&self) -> usize {
        self.patterns.len()
    }

    /// Long-run average quality of each option over one period — the
    /// natural benchmark for regret against this sequence.
    pub fn average_qualities(&self) -> Vec<f64> {
        let m = self.patterns[0].len();
        let mut avg = vec![0.0; m];
        for p in &self.patterns {
            for (a, &bit) in avg.iter_mut().zip(p) {
                *a += bit as u8 as f64;
            }
        }
        for a in avg.iter_mut() {
            *a /= self.patterns.len() as f64;
        }
        avg
    }
}

impl RewardModel for PeriodicRewards {
    fn num_options(&self) -> usize {
        self.patterns[0].len()
    }

    fn sample(&mut self, t: u64, _rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(
            out.len(),
            self.num_options(),
            "reward buffer has wrong length"
        );
        let idx = ((t.max(1) - 1) as usize) % self.patterns.len();
        out.copy_from_slice(&self.patterns[idx]);
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(self.average_qualities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(PeriodicRewards::new(vec![]).is_err());
        assert!(PeriodicRewards::new(vec![vec![]]).is_err());
        assert!(PeriodicRewards::new(vec![vec![true], vec![true, false]]).is_err());
        assert!(PeriodicRewards::alternating(0, 1).is_err());
    }

    #[test]
    fn alternating_duty_cycle() {
        let env = PeriodicRewards::alternating(3, 1).unwrap();
        assert_eq!(env.period(), 4);
        let avg = env.average_qualities();
        assert!((avg[0] - 0.75).abs() < 1e-12);
        assert!((avg[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cycle_wraps() {
        let mut env = PeriodicRewards::new(vec![
            vec![true, false],
            vec![false, false],
            vec![false, true],
        ])
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = [false; 2];
        env.sample(4, &mut rng, &mut out); // == pattern index 0
        assert_eq!(out, [true, false]);
        env.sample(6, &mut rng, &mut out); // == pattern index 2
        assert_eq!(out, [false, true]);
    }

    #[test]
    fn qualities_are_period_averages() {
        let env = PeriodicRewards::alternating(1, 1).unwrap();
        assert_eq!(env.qualities(), Some(vec![0.5, 0.5]));
    }
}
