//! Full-information multiplicative-weights baselines.

use rand::RngCore;
use sociolearn_core::{GroupDynamics, ParamsError};

/// Classic Hedge / multiplicative weights with learning rate `eps`:
/// `w_j ← w_j · e^{ε R_j}` on the full reward vector, played as the
/// normalized weight distribution.
///
/// This is the centralized, memoryful algorithm the paper shows the
/// memoryless social dynamics implicitly implements; with
/// `ε = sqrt(ln m / T)` it attains the optimal `O(sqrt(ln m / T))`
/// average regret the conclusion section references.
///
/// # Example
///
/// ```
/// use sociolearn_baselines::Hedge;
/// use sociolearn_core::GroupDynamics;
/// use rand::SeedableRng;
///
/// let mut h = Hedge::new(2, 0.1)?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// h.step(&[true, false], &mut rng);
/// assert!(h.distribution()[0] > 0.5);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hedge {
    log_weights: Vec<f64>,
    eps: f64,
}

impl Hedge {
    /// Creates Hedge over `m` options with learning rate `eps > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or `eps` is not positive
    /// and finite.
    pub fn new(m: usize, eps: f64) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        if eps <= 0.0 || !eps.is_finite() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "eps",
                value: eps,
            });
        }
        Ok(Hedge {
            log_weights: vec![0.0; m],
            eps,
        })
    }

    /// The horizon-tuned learning rate `sqrt(ln m / T)`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn tuned_eps(m: usize, t: u64) -> f64 {
        assert!(t > 0, "horizon must be positive");
        ((m.max(2) as f64).ln() / t as f64).sqrt()
    }

    /// Learning rate in use.
    pub fn eps(&self) -> f64 {
        self.eps
    }
}

impl GroupDynamics for Hedge {
    fn num_options(&self) -> usize {
        self.log_weights.len()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.log_weights.len(), "buffer length mismatch");
        // Softmax with max-shift for stability.
        let max = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        for (slot, &lw) in out.iter_mut().zip(&self.log_weights) {
            *slot = (lw - max).exp();
            z += *slot;
        }
        for slot in out.iter_mut() {
            *slot /= z;
        }
    }

    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        assert_eq!(
            rewards.len(),
            self.log_weights.len(),
            "rewards length mismatch"
        );
        for (lw, &r) in self.log_weights.iter_mut().zip(rewards) {
            if r {
                *lw += self.eps;
            }
        }
    }

    fn label(&self) -> &str {
        "Hedge (full info)"
    }
}

/// The deterministic replicator/MWU limit: multiplicative updates on
/// the *expected* qualities `η_j`, ignoring the realized signals.
///
/// This is the "deterministic special case" prior work analyzed
/// (Section 3); it requires knowing `η` — it is an oracle baseline,
/// shown to bound what any full-information method could do once the
/// stochasticity is averaged out.
#[derive(Debug, Clone, PartialEq)]
pub struct DeterministicReplicator {
    probs: Vec<f64>,
    etas: Vec<f64>,
    eps: f64,
}

impl DeterministicReplicator {
    /// Creates the replicator from known qualities and a rate.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] on empty/out-of-range qualities or a
    /// non-positive rate.
    pub fn new(etas: Vec<f64>, eps: f64) -> Result<Self, ParamsError> {
        if etas.is_empty() {
            return Err(ParamsError::NoOptions);
        }
        for (index, &value) in etas.iter().enumerate() {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ParamsError::BadQuality { index, value });
            }
        }
        if eps <= 0.0 || !eps.is_finite() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "eps",
                value: eps,
            });
        }
        let m = etas.len();
        Ok(DeterministicReplicator {
            probs: vec![1.0 / m as f64; m],
            etas,
            eps,
        })
    }
}

impl GroupDynamics for DeterministicReplicator {
    fn num_options(&self) -> usize {
        self.probs.len()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.probs.len(), "buffer length mismatch");
        out.copy_from_slice(&self.probs);
    }

    fn step(&mut self, _rewards: &[bool], _rng: &mut dyn RngCore) {
        let mut z = 0.0;
        for (p, &eta) in self.probs.iter_mut().zip(&self.etas) {
            *p *= (self.eps * eta).exp();
            z += *p;
        }
        for p in self.probs.iter_mut() {
            *p /= z;
        }
    }

    fn label(&self) -> &str {
        "replicator (oracle)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sociolearn_core::assert_distribution;

    #[test]
    fn hedge_validates() {
        assert!(Hedge::new(0, 0.1).is_err());
        assert!(Hedge::new(3, 0.0).is_err());
        assert!(Hedge::new(3, f64::INFINITY).is_err());
    }

    #[test]
    fn hedge_concentrates_on_better_option() {
        let mut h = Hedge::new(2, 0.2).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            h.step(&[true, false], &mut rng);
        }
        let d = h.distribution();
        assert!(d[0] > 0.99);
        assert_distribution(&d, 1e-9);
    }

    #[test]
    fn hedge_numerically_stable_long_run() {
        let mut h = Hedge::new(3, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for t in 0..1_000_000u64 {
            h.step(&[t % 2 == 0, t % 3 == 0, true], &mut rng);
        }
        assert_distribution(&h.distribution(), 1e-9);
    }

    #[test]
    fn tuned_eps_shrinks_with_horizon() {
        assert!(Hedge::tuned_eps(10, 100) > Hedge::tuned_eps(10, 10_000));
    }

    #[test]
    fn hedge_symmetric_rewards_stay_uniform() {
        let mut h = Hedge::new(4, 0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        h.step(&[true; 4], &mut rng);
        h.step(&[false; 4], &mut rng);
        assert_eq!(h.distribution(), vec![0.25; 4]);
    }

    #[test]
    fn replicator_converges_to_best() {
        let mut r = DeterministicReplicator::new(vec![0.9, 0.6, 0.3], 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            r.step(&[false; 3], &mut rng); // rewards ignored by design
        }
        let d = r.distribution();
        assert!(d[0] > 0.99, "replicator share {d:?}");
    }

    #[test]
    fn replicator_validates() {
        assert!(DeterministicReplicator::new(vec![], 0.1).is_err());
        assert!(DeterministicReplicator::new(vec![1.5], 0.1).is_err());
        assert!(DeterministicReplicator::new(vec![0.5], -1.0).is_err());
    }

    #[test]
    fn labels_distinct() {
        let h = Hedge::new(2, 0.1).unwrap();
        let r = DeterministicReplicator::new(vec![0.5, 0.5], 0.1).unwrap();
        assert_ne!(h.label(), r.label());
    }
}
