//! Single-agent bandit policies (partial feedback: an agent sees only
//! the reward of the arm it pulled).

use rand::Rng;
use rand_distr::{Beta, Distribution};
use sociolearn_core::ParamsError;

/// A stateful bandit policy over `m` arms with Bernoulli rewards.
///
/// The trait is object safe so [`IndependentBanditGroup`] can hold
/// heterogeneous learners if desired.
///
/// [`IndependentBanditGroup`]: crate::IndependentBanditGroup
pub trait BanditPolicy {
    /// Number of arms.
    fn num_arms(&self) -> usize;

    /// Chooses an arm to pull this step.
    fn select_arm(&mut self, rng: &mut dyn rand::RngCore) -> usize;

    /// Observes the pulled arm's reward.
    fn update(&mut self, arm: usize, reward: bool);

    /// Short display name.
    fn policy_name(&self) -> &'static str;
}

/// UCB1 (Auer–Cesa-Bianchi–Fischer): play each arm once, then the arm
/// maximizing `mean + sqrt(2 ln t / n_j)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ucb1 {
    pulls: Vec<u64>,
    sums: Vec<f64>,
    t: u64,
}

impl Ucb1 {
    /// Creates UCB1 over `m` arms.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::NoOptions`] if `m == 0`.
    pub fn new(m: usize) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        Ok(Ucb1 {
            pulls: vec![0; m],
            sums: vec![0.0; m],
            t: 0,
        })
    }
}

impl BanditPolicy for Ucb1 {
    fn num_arms(&self) -> usize {
        self.pulls.len()
    }

    fn select_arm(&mut self, _rng: &mut dyn rand::RngCore) -> usize {
        // Initialization: round-robin through unpulled arms.
        if let Some(j) = self.pulls.iter().position(|&n| n == 0) {
            return j;
        }
        let t = (self.t.max(1)) as f64;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for j in 0..self.pulls.len() {
            let n = self.pulls[j] as f64;
            let score = self.sums[j] / n + (2.0 * t.ln() / n).sqrt();
            if score > best_score {
                best_score = score;
                best = j;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: bool) {
        self.t += 1;
        self.pulls[arm] += 1;
        self.sums[arm] += reward as u8 as f64;
    }

    fn policy_name(&self) -> &'static str {
        "UCB1"
    }
}

/// Beta–Bernoulli Thompson sampling: sample `θ_j ~ Beta(s_j+1, f_j+1)`
/// and play the argmax.
#[derive(Debug, Clone, PartialEq)]
pub struct ThompsonSampling {
    successes: Vec<u64>,
    failures: Vec<u64>,
}

impl ThompsonSampling {
    /// Creates Thompson sampling over `m` arms with uniform priors.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::NoOptions`] if `m == 0`.
    pub fn new(m: usize) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        Ok(ThompsonSampling {
            successes: vec![0; m],
            failures: vec![0; m],
        })
    }
}

impl BanditPolicy for ThompsonSampling {
    fn num_arms(&self) -> usize {
        self.successes.len()
    }

    fn select_arm(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let mut best = 0;
        let mut best_draw = f64::NEG_INFINITY;
        for j in 0..self.successes.len() {
            let beta = Beta::new(
                self.successes[j] as f64 + 1.0,
                self.failures[j] as f64 + 1.0,
            )
            .expect("parameters are >= 1");
            let draw = beta.sample(&mut &mut *rng);
            if draw > best_draw {
                best_draw = draw;
                best = j;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: bool) {
        if reward {
            self.successes[arm] += 1;
        } else {
            self.failures[arm] += 1;
        }
    }

    fn policy_name(&self) -> &'static str {
        "Thompson"
    }
}

/// ε-greedy: explore uniformly with probability `eps`, otherwise play
/// the empirical-mean argmax.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonGreedy {
    eps: f64,
    pulls: Vec<u64>,
    sums: Vec<f64>,
}

impl EpsilonGreedy {
    /// Creates ε-greedy over `m` arms.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or `eps` is not a
    /// probability.
    pub fn new(m: usize, eps: f64) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        if !(0.0..=1.0).contains(&eps) || eps.is_nan() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "eps",
                value: eps,
            });
        }
        Ok(EpsilonGreedy {
            eps,
            pulls: vec![0; m],
            sums: vec![0.0; m],
        })
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn num_arms(&self) -> usize {
        self.pulls.len()
    }

    fn select_arm(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        let r: f64 = Rng::gen(&mut &mut *rng);
        if r < self.eps {
            return Rng::gen_range(&mut &mut *rng, 0..self.pulls.len());
        }
        if let Some(j) = self.pulls.iter().position(|&n| n == 0) {
            return j;
        }
        let mut best = 0;
        let mut best_mean = f64::NEG_INFINITY;
        for j in 0..self.pulls.len() {
            let mean = self.sums[j] / self.pulls[j] as f64;
            if mean > best_mean {
                best_mean = mean;
                best = j;
            }
        }
        best
    }

    fn update(&mut self, arm: usize, reward: bool) {
        self.pulls[arm] += 1;
        self.sums[arm] += reward as u8 as f64;
    }

    fn policy_name(&self) -> &'static str {
        "eps-greedy"
    }
}

/// EXP3 (Auer et al.): multiplicative weights on importance-weighted
/// reward estimates, with γ-uniform exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Exp3 {
    log_weights: Vec<f64>,
    gamma: f64,
    /// Probabilities used for the most recent draw (needed for the
    /// importance weighting in `update`).
    last_probs: Vec<f64>,
}

impl Exp3 {
    /// Creates EXP3 over `m` arms with exploration rate `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or `gamma` is not in
    /// `(0, 1]`.
    pub fn new(m: usize, gamma: f64) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        if !(gamma > 0.0 && gamma <= 1.0) {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "gamma",
                value: gamma,
            });
        }
        Ok(Exp3 {
            log_weights: vec![0.0; m],
            gamma,
            last_probs: vec![1.0 / m as f64; m],
        })
    }

    fn probabilities(&self) -> Vec<f64> {
        let m = self.log_weights.len();
        let max = self
            .log_weights
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut w: Vec<f64> = self
            .log_weights
            .iter()
            .map(|&lw| (lw - max).exp())
            .collect();
        let z: f64 = w.iter().sum();
        for wi in w.iter_mut() {
            *wi = (1.0 - self.gamma) * *wi / z + self.gamma / m as f64;
        }
        w
    }
}

impl BanditPolicy for Exp3 {
    fn num_arms(&self) -> usize {
        self.log_weights.len()
    }

    fn select_arm(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        self.last_probs = self.probabilities();
        sociolearn_core::sample_categorical(&mut &mut *rng, &self.last_probs)
    }

    fn update(&mut self, arm: usize, reward: bool) {
        let m = self.log_weights.len() as f64;
        let estimate = reward as u8 as f64 / self.last_probs[arm].max(1e-12);
        self.log_weights[arm] += self.gamma * estimate / m;
    }

    fn policy_name(&self) -> &'static str {
        "EXP3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Runs a policy on Bernoulli arms, returns fraction of pulls on
    /// arm 0 over the last half.
    fn run_policy<P: BanditPolicy>(mut p: P, etas: &[f64], steps: u64, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut best_pulls = 0u64;
        let half = steps / 2;
        for t in 0..steps {
            let arm = p.select_arm(&mut rng);
            let reward = rng.gen_bool(etas[arm]);
            p.update(arm, reward);
            if t >= half && arm == 0 {
                best_pulls += 1;
            }
        }
        best_pulls as f64 / half as f64
    }

    const ETAS: [f64; 3] = [0.8, 0.4, 0.2];

    #[test]
    fn ucb_finds_best_arm() {
        let frac = run_policy(Ucb1::new(3).unwrap(), &ETAS, 4_000, 1);
        assert!(frac > 0.8, "UCB best-arm fraction {frac}");
    }

    #[test]
    fn thompson_finds_best_arm() {
        let frac = run_policy(ThompsonSampling::new(3).unwrap(), &ETAS, 4_000, 2);
        assert!(frac > 0.85, "Thompson best-arm fraction {frac}");
    }

    #[test]
    fn epsilon_greedy_finds_best_arm() {
        let frac = run_policy(EpsilonGreedy::new(3, 0.1).unwrap(), &ETAS, 4_000, 3);
        assert!(frac > 0.8, "eps-greedy best-arm fraction {frac}");
    }

    #[test]
    fn exp3_favors_best_arm() {
        let frac = run_policy(Exp3::new(3, 0.1).unwrap(), &ETAS, 6_000, 4);
        assert!(frac > 0.5, "EXP3 best-arm fraction {frac}");
    }

    #[test]
    fn constructors_validate() {
        assert!(Ucb1::new(0).is_err());
        assert!(ThompsonSampling::new(0).is_err());
        assert!(EpsilonGreedy::new(3, 1.5).is_err());
        assert!(EpsilonGreedy::new(0, 0.1).is_err());
        assert!(Exp3::new(3, 0.0).is_err());
        assert!(Exp3::new(0, 0.5).is_err());
    }

    #[test]
    fn ucb_initial_round_robin() {
        let mut p = Ucb1::new(4).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..4 {
            let arm = p.select_arm(&mut rng);
            seen[arm] = true;
            p.update(arm, false);
        }
        assert!(seen.iter().all(|&s| s), "round robin skipped an arm");
    }

    #[test]
    fn exp3_probabilities_include_floor() {
        let e = Exp3::new(4, 0.2).unwrap();
        let probs = e.probabilities();
        for &p in &probs {
            assert!(p >= 0.05 - 1e-12, "gamma floor violated: {p}");
        }
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Ucb1::new(2).unwrap().policy_name(),
            ThompsonSampling::new(2).unwrap().policy_name(),
            EpsilonGreedy::new(2, 0.1).unwrap().policy_name(),
            Exp3::new(2, 0.1).unwrap().policy_name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn greedy_zero_eps_exploits_after_init() {
        let mut p = EpsilonGreedy::new(2, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        // Arm 0 pays, arm 1 does not.
        let a = p.select_arm(&mut rng);
        p.update(a, a == 0);
        let b = p.select_arm(&mut rng);
        p.update(b, b == 0);
        for _ in 0..50 {
            let arm = p.select_arm(&mut rng);
            assert_eq!(arm, 0);
            p.update(arm, true);
        }
    }
}
