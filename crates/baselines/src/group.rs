//! A group of `N` independent bandit learners, measured as one
//! population.

use crate::bandit::BanditPolicy;
use rand::RngCore;
use sociolearn_core::GroupDynamics;

/// `N` agents each running a private copy of a bandit policy,
/// observing only their own pulled arm's reward bit.
///
/// The group "distribution" is the empirical fraction of agents on
/// each arm at the latest step — directly comparable to the social
/// dynamics' popularity vector. This is the Section 3 comparison
/// point: the same group-level task solved with *explicit per-agent
/// memory* (each agent stores per-arm statistics), versus the
/// memoryless social dynamics.
///
/// # Example
///
/// ```
/// use sociolearn_baselines::{IndependentBanditGroup, Ucb1};
/// use sociolearn_core::GroupDynamics;
/// use rand::SeedableRng;
///
/// let group = IndependentBanditGroup::new(50, || Ucb1::new(3).unwrap());
/// assert_eq!(group.num_options(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IndependentBanditGroup<P> {
    agents: Vec<P>,
    counts: Vec<u64>,
    steps: u64,
}

impl<P: BanditPolicy> IndependentBanditGroup<P> {
    /// Creates `n` agents from a factory closure.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<F: FnMut() -> P>(n: usize, mut factory: F) -> Self {
        assert!(n > 0, "group must be non-empty");
        let agents: Vec<P> = (0..n).map(|_| factory()).collect();
        let m = agents[0].num_arms();
        IndependentBanditGroup {
            agents,
            // Before the first step, report uniform-ish by assigning
            // agents round-robin.
            counts: {
                let mut c = vec![0u64; m];
                for i in 0..n {
                    c[i % m] += 1;
                }
                c
            },
            steps: 0,
        }
    }

    /// Number of agents.
    pub fn population_size(&self) -> usize {
        self.agents.len()
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Name of the underlying policy.
    pub fn policy_name(&self) -> &'static str {
        self.agents[0].policy_name()
    }
}

impl<P: BanditPolicy> GroupDynamics for IndependentBanditGroup<P> {
    fn num_options(&self) -> usize {
        self.counts.len()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.counts.len(), "buffer length mismatch");
        let total: u64 = self.counts.iter().sum();
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    fn step(&mut self, rewards: &[bool], rng: &mut dyn RngCore) {
        assert_eq!(rewards.len(), self.counts.len(), "rewards length mismatch");
        let mut counts = vec![0u64; self.counts.len()];
        for agent in self.agents.iter_mut() {
            let arm = agent.select_arm(rng);
            // Partial feedback: the agent sees only its own arm's bit.
            agent.update(arm, rewards[arm]);
            counts[arm] += 1;
        }
        self.counts = counts;
        self.steps += 1;
    }

    fn label(&self) -> &str {
        self.policy_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::{EpsilonGreedy, ThompsonSampling, Ucb1};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sociolearn_core::{assert_distribution, BernoulliRewards, RewardModel};

    fn run_group<P: BanditPolicy>(
        mut group: IndependentBanditGroup<P>,
        etas: Vec<f64>,
        steps: u64,
        seed: u64,
    ) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut env = BernoulliRewards::new(etas).unwrap();
        let m = group.num_options();
        let mut rewards = vec![false; m];
        let mut avg = 0.0;
        let tail = steps / 4;
        for t in 1..=steps {
            env.sample(t, &mut rng, &mut rewards);
            group.step(&rewards, &mut rng);
            if t > steps - tail {
                avg += group.distribution()[0];
            }
        }
        avg / tail as f64
    }

    #[test]
    fn ucb_group_converges() {
        let g = IndependentBanditGroup::new(100, || Ucb1::new(2).unwrap());
        let share = run_group(g, vec![0.9, 0.3], 500, 1);
        assert!(share > 0.8, "UCB group share {share}");
    }

    #[test]
    fn thompson_group_converges() {
        let g = IndependentBanditGroup::new(100, || ThompsonSampling::new(2).unwrap());
        let share = run_group(g, vec![0.9, 0.3], 500, 2);
        assert!(share > 0.85, "Thompson group share {share}");
    }

    #[test]
    fn distribution_always_valid() {
        let mut g = IndependentBanditGroup::new(30, || EpsilonGreedy::new(3, 0.2).unwrap());
        assert_distribution(&g.distribution(), 1e-12);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            g.step(&[true, false, true], &mut rng);
            assert_distribution(&g.distribution(), 1e-12);
        }
        assert_eq!(g.steps(), 50);
        assert_eq!(g.population_size(), 30);
    }

    #[test]
    fn label_reflects_policy() {
        let g = IndependentBanditGroup::new(5, || Ucb1::new(2).unwrap());
        assert_eq!(g.label(), "UCB1");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_group_rejected() {
        IndependentBanditGroup::new(0, || Ucb1::new(2).unwrap());
    }
}
