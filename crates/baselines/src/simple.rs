//! Trivial baselines: oracles and floors that anchor the regret
//! comparison tables.

use rand::RngCore;
use sociolearn_core::{GroupDynamics, ParamsError};

/// Always plays the known best option — the zero-regret oracle
/// defining the benchmark the paper's regret is measured against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestFixed {
    m: usize,
    best: usize,
}

impl BestFixed {
    /// Creates the oracle.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or `best >= m`.
    pub fn new(m: usize, best: usize) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        if best >= m {
            return Err(ParamsError::BadQuality {
                index: best,
                value: best as f64,
            });
        }
        Ok(BestFixed { m, best })
    }
}

impl GroupDynamics for BestFixed {
    fn num_options(&self) -> usize {
        self.m
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.m, "buffer length mismatch");
        out.fill(0.0);
        out[self.best] = 1.0;
    }

    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        assert_eq!(rewards.len(), self.m, "rewards length mismatch");
    }

    fn label(&self) -> &str {
        "best fixed (oracle)"
    }
}

/// Plays uniformly at random forever — the exploration-only floor
/// (also what the social dynamics degenerates to at `µ = 1`, modulo
/// adoption thinning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformRandom {
    m: usize,
}

impl UniformRandom {
    /// Creates the uniform player.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::NoOptions`] if `m == 0`.
    pub fn new(m: usize) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        Ok(UniformRandom { m })
    }
}

impl GroupDynamics for UniformRandom {
    fn num_options(&self) -> usize {
        self.m
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.m, "buffer length mismatch");
        out.fill(1.0 / self.m as f64);
    }

    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        assert_eq!(rewards.len(), self.m, "rewards length mismatch");
    }

    fn label(&self) -> &str {
        "uniform random"
    }
}

/// Follow-the-Leader with full information: plays (a point mass on)
/// the option with the highest cumulative realized reward so far,
/// breaking ties toward lower indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowTheLeader {
    totals: Vec<u64>,
}

impl FollowTheLeader {
    /// Creates FTL over `m` options.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::NoOptions`] if `m == 0`.
    pub fn new(m: usize) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        Ok(FollowTheLeader { totals: vec![0; m] })
    }

    /// The current leader.
    pub fn leader(&self) -> usize {
        let mut best = 0;
        for (j, &v) in self.totals.iter().enumerate() {
            if v > self.totals[best] {
                best = j;
            }
        }
        best
    }
}

impl GroupDynamics for FollowTheLeader {
    fn num_options(&self) -> usize {
        self.totals.len()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.totals.len(), "buffer length mismatch");
        out.fill(0.0);
        out[self.leader()] = 1.0;
    }

    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        assert_eq!(rewards.len(), self.totals.len(), "rewards length mismatch");
        for (t, &r) in self.totals.iter_mut().zip(rewards) {
            *t += r as u64;
        }
    }

    fn label(&self) -> &str {
        "follow the leader"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn best_fixed_point_mass() {
        let b = BestFixed::new(4, 2).unwrap();
        assert_eq!(b.distribution(), vec![0.0, 0.0, 1.0, 0.0]);
        assert!(BestFixed::new(4, 9).is_err());
        assert!(BestFixed::new(0, 0).is_err());
    }

    #[test]
    fn uniform_is_uniform() {
        let u = UniformRandom::new(5).unwrap();
        assert_eq!(u.distribution(), vec![0.2; 5]);
        assert!(UniformRandom::new(0).is_err());
    }

    #[test]
    fn ftl_tracks_cumulative_leader() {
        let mut f = FollowTheLeader::new(3).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(f.leader(), 0);
        f.step(&[false, true, false], &mut rng);
        assert_eq!(f.leader(), 1);
        f.step(&[true, false, true], &mut rng);
        f.step(&[true, false, true], &mut rng);
        assert_eq!(f.leader(), 0);
        assert_eq!(f.distribution(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn ftl_tie_breaks_low() {
        let mut f = FollowTheLeader::new(2).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        f.step(&[true, true], &mut rng);
        assert_eq!(f.leader(), 0);
    }

    #[test]
    fn oracles_ignore_steps() {
        let mut b = BestFixed::new(2, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            b.step(&[false, true], &mut rng);
        }
        assert_eq!(b.distribution(), vec![1.0, 0.0]);
    }
}
