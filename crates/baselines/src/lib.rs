//! # sociolearn-baselines
//!
//! Comparator algorithms for the social-learning dynamics, all exposed
//! through [`sociolearn_core::GroupDynamics`] so the experiment
//! harness measures every algorithm's group regret through one code
//! path.
//!
//! Two families:
//!
//! * **Full-information, centralized** — what a single agent with
//!   unbounded memory could do with the same information the *group*
//!   collectively receives: [`Hedge`] (classic MWU),
//!   [`FollowTheLeader`], [`DeterministicReplicator`] (the
//!   known-qualities deterministic limit the paper contrasts with),
//!   plus the [`BestFixed`] oracle and [`UniformRandom`] floor.
//! * **Bandit-feedback, decentralized-but-memoryful** — `N`
//!   *independent* learners each running a private bandit algorithm
//!   and seeing only their own arm's reward:
//!   [`IndependentBanditGroup`] over [`Ucb1`], [`ThompsonSampling`],
//!   [`EpsilonGreedy`], or [`Exp3`]. This is the "parallelized bandits"
//!   comparison from Section 3: each node explicitly maintains
//!   per-option statistics, unlike the memoryless social dynamics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandit;
mod group;
mod hedge;
mod simple;

pub use bandit::{BanditPolicy, EpsilonGreedy, Exp3, ThompsonSampling, Ucb1};
pub use group::IndependentBanditGroup;
pub use hedge::{DeterministicReplicator, Hedge};
pub use simple::{BestFixed, FollowTheLeader, UniformRandom};
