//! The observer surface of the runtimes: a per-tick sink trait and a
//! recorder deriving dashboard series from the raw counters.
//!
//! All three execution models report through one hook,
//! [`ProtocolRuntime::observed_round`](crate::ProtocolRuntime::observed_round):
//! it advances the runtime exactly as [`round`](crate::ProtocolRuntime::round)
//! would, then hands the attached [`TelemetrySink`] a
//! [`TickObservation`] — the round's counters, the cumulative totals,
//! and the model-specific gauges (epoch skew for the event runtimes,
//! per-shard load and rebalance count for the sharded calendar
//! engine). The observation is assembled strictly *after* the round
//! completes and consumes no randomness, so attaching a sink can
//! never perturb a seed-pinned trajectory.
//!
//! Everything here is driven by virtual time only. Wall-clock
//! readings (for an ms/tick series) belong to the *driver* — e.g. the
//! `experiments watch` CLI — which stamps them onto the recorder via
//! [`MetricsRecorder::record_wall_ms`].

use crate::{ExecutionModel, Metrics, RoundMetrics};
use std::collections::VecDeque;

/// Everything a [`TelemetrySink`] sees after one round/tick-window.
///
/// `shard_loads` has one entry per scheduler shard (a single entry —
/// the whole fleet — for unsharded runtimes); `epoch_skew` and
/// `rebalances` are 0 wherever the concept does not exist (see the
/// field docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickObservation {
    /// The counters of the round that just completed.
    pub round: RoundMetrics,
    /// Cumulative counters across all rounds so far.
    pub cumulative: Metrics,
    /// Which execution model produced the observation.
    pub model: ExecutionModel,
    /// Fleet size `N` (present or not).
    pub num_nodes: usize,
    /// Max−min completed local epoch over present nodes. Always 0
    /// for barriered execution (round-sync, epoch-quiesced), where no
    /// node can run ahead.
    pub epoch_skew: u64,
    /// Present-node count per scheduler shard, in shard order,
    /// evaluated after the round's membership transitions land (the
    /// same clock as `alive_count`, i.e. presence going into the next
    /// round). A single whole-fleet entry for unsharded runtimes.
    pub shard_loads: Vec<usize>,
    /// Cumulative online shard rebalances. Always 0 outside the
    /// sharded calendar engine.
    pub rebalances: u64,
}

/// A per-tick observer of a running fleet.
///
/// Implementations receive one [`TickObservation`] per
/// [`observed_round`](crate::ProtocolRuntime::observed_round) call.
/// The hook runs after the round has fully completed, so a sink can
/// only read — it cannot change what the protocol does, and runs with
/// no sink attached follow byte-identical trajectories.
///
/// # Example
///
/// ```
/// use sociolearn_core::Params;
/// use sociolearn_dist::{
///     DistConfig, ProtocolRuntime, Runtime, TelemetrySink, TickObservation,
/// };
///
/// struct AliveLog(Vec<usize>);
/// impl TelemetrySink for AliveLog {
///     fn on_tick(&mut self, obs: &TickObservation) {
///         self.0.push(obs.round.alive);
///     }
/// }
///
/// let params = Params::new(3, 0.6).unwrap();
/// let mut rt = Runtime::new(DistConfig::new(params, 40), 7);
/// let mut log = AliveLog(Vec::new());
/// for _ in 0..5 {
///     rt.observed_round(&[true, false, false], &mut log);
/// }
/// assert_eq!(log.0, vec![40; 5]);
/// ```
pub trait TelemetrySink {
    /// Called once per completed round/tick-window.
    fn on_tick(&mut self, obs: &TickObservation);
}

/// The no-op sink: observing with it is equivalent to calling
/// [`round`](crate::ProtocolRuntime::round) directly.
///
/// ```
/// use sociolearn_dist::{NoTelemetry, TelemetrySink, TickObservation};
/// // It implements the trait and does nothing.
/// let _sink: &dyn TelemetrySink = &NoTelemetry;
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl TelemetrySink for NoTelemetry {
    fn on_tick(&mut self, _obs: &TickObservation) {}
}

/// One dashboard-ready frame derived from a [`TickObservation`]:
/// levels, fractions, and per-window deltas instead of monotone
/// totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// The 1-based round the frame describes.
    pub round: u64,
    /// Nodes alive during the round.
    pub alive: usize,
    /// Alive nodes that committed this round.
    pub committed: usize,
    /// `committed / alive` (0 when no node is alive).
    pub commit_fraction: f64,
    /// Nodes still bootstrapping after a (re)join.
    pub bootstrapping: u64,
    /// Max−min completed local epoch over present nodes.
    pub epoch_skew: u64,
    /// Per-window deltas of every [`Metrics`] counter (a
    /// [`Metrics::since`] of this window against the previous one).
    pub delta: Metrics,
    /// Present-node count per scheduler shard.
    pub shard_loads: Vec<usize>,
    /// Online shard rebalances during this window.
    pub rebalances: u64,
    /// Driver-measured wall milliseconds for this tick, if the driver
    /// stamped one via [`MetricsRecorder::record_wall_ms`]. Never
    /// measured by the recorder itself — the runtime is virtual-time
    /// only.
    pub wall_ms: Option<f64>,
}

/// A [`TelemetrySink`] that turns raw observations into a bounded
/// window of derived [`TelemetryFrame`]s: alive count, commit
/// fraction, epoch skew, per-shard load, and per-window deltas of
/// every cumulative counter — plus an ms/tick slot the driver stamps
/// with its own (waivered) stopwatch.
///
/// # Example
///
/// ```
/// use sociolearn_core::Params;
/// use sociolearn_dist::{DistConfig, EventRuntime, MetricsRecorder, ProtocolRuntime};
///
/// let params = Params::new(4, 0.6).unwrap();
/// let mut rt = EventRuntime::new(DistConfig::new(params, 60), 11);
/// let mut rec = MetricsRecorder::new(120);
/// for _ in 0..8 {
///     rt.observed_round(&[true, false, false, false], &mut rec);
/// }
/// assert_eq!(rec.len(), 8);
/// let last = rec.latest().unwrap();
/// assert_eq!(last.round, 8);
/// assert!(last.commit_fraction >= 0.0 && last.commit_fraction <= 1.0);
/// // Deltas over the recorded window sum back to the totals.
/// let sent: u64 = rec.frames().map(|f| f.delta.queries_sent).sum();
/// assert_eq!(sent, rt.metrics().queries_sent);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRecorder {
    window: usize,
    frames: VecDeque<TelemetryFrame>,
    prev: Metrics,
    prev_rebalances: u64,
    ticks: u64,
}

impl MetricsRecorder {
    /// Creates a recorder retaining the most recent `window` frames
    /// (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        MetricsRecorder {
            window: window.max(1),
            frames: VecDeque::new(),
            prev: Metrics::default(),
            prev_rebalances: 0,
            ticks: 0,
        }
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Maximum number of frames retained.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total observations ever recorded (evicted frames included).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<&TelemetryFrame> {
        self.frames.back()
    }

    /// Iterates the retained frames oldest-first.
    pub fn frames(&self) -> impl Iterator<Item = &TelemetryFrame> {
        self.frames.iter()
    }

    /// Stamps the most recent frame with a driver-measured wall-clock
    /// duration in milliseconds. A no-op before the first frame.
    ///
    /// The recorder never reads a clock itself: whoever drives the
    /// fleet in real time owns the stopwatch (and, in this workspace,
    /// the detlint D2 waiver that comes with it).
    pub fn record_wall_ms(&mut self, ms: f64) {
        if let Some(f) = self.frames.back_mut() {
            f.wall_ms = Some(ms);
        }
    }
}

impl TelemetrySink for MetricsRecorder {
    fn on_tick(&mut self, obs: &TickObservation) {
        let alive = obs.round.alive;
        let commit_fraction = if alive == 0 {
            0.0
        } else {
            obs.round.committed as f64 / alive as f64
        };
        let frame = TelemetryFrame {
            round: obs.round.round,
            alive,
            committed: obs.round.committed,
            commit_fraction,
            bootstrapping: obs.round.bootstrapping,
            epoch_skew: obs.epoch_skew,
            delta: obs.cumulative.since(&self.prev),
            shard_loads: obs.shard_loads.clone(),
            rebalances: obs.rebalances - self.prev_rebalances,
            wall_ms: None,
        };
        self.prev = obs.cumulative;
        self.prev_rebalances = obs.rebalances;
        if self.frames.len() == self.window {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
        self.ticks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistConfig, EventRuntime, FaultPlan, ProtocolRuntime, Runtime, SchedulerKind};
    use sociolearn_core::Params;

    fn obs(round: u64, sent: u64) -> TickObservation {
        TickObservation {
            round: RoundMetrics {
                round,
                alive: 10,
                committed: 5,
                ..RoundMetrics::default()
            },
            cumulative: Metrics {
                rounds: round,
                queries_sent: sent,
                ..Metrics::default()
            },
            model: ExecutionModel::RoundSync,
            num_nodes: 10,
            epoch_skew: 0,
            shard_loads: vec![10],
            rebalances: 0,
        }
    }

    #[test]
    fn recorder_derives_deltas_not_totals() {
        let mut rec = MetricsRecorder::new(8);
        rec.on_tick(&obs(1, 30));
        rec.on_tick(&obs(2, 70));
        let deltas: Vec<u64> = rec.frames().map(|f| f.delta.queries_sent).collect();
        assert_eq!(deltas, vec![30, 40]);
        assert_eq!(rec.latest().unwrap().commit_fraction, 0.5);
    }

    #[test]
    fn recorder_window_evicts_oldest() {
        let mut rec = MetricsRecorder::new(2);
        for t in 1..=5 {
            rec.on_tick(&obs(t, t * 10));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.ticks(), 5);
        let rounds: Vec<u64> = rec.frames().map(|f| f.round).collect();
        assert_eq!(rounds, vec![4, 5]);
    }

    #[test]
    fn wall_ms_stamps_latest_frame_only() {
        let mut rec = MetricsRecorder::new(4);
        rec.record_wall_ms(9.9); // before any frame: no-op
        rec.on_tick(&obs(1, 10));
        rec.record_wall_ms(1.25);
        rec.on_tick(&obs(2, 20));
        let stamps: Vec<Option<f64>> = rec.frames().map(|f| f.wall_ms).collect();
        assert_eq!(stamps, vec![Some(1.25), None]);
    }

    #[test]
    fn zero_alive_commit_fraction_is_zero() {
        let mut rec = MetricsRecorder::new(2);
        let mut o = obs(1, 0);
        o.round.alive = 0;
        o.round.committed = 0;
        rec.on_tick(&o);
        assert_eq!(rec.latest().unwrap().commit_fraction, 0.0);
    }

    /// One runtime stepped through the observer hook, a twin stepped
    /// plainly: identical per-round counters, totals, distributions.
    fn assert_twin<R: ProtocolRuntime>(mut observed: R, mut plain: R) {
        let mut sink = NoTelemetry;
        for t in 0..40u64 {
            let rewards = [t % 2 == 0, t % 3 == 0, t % 5 == 0];
            let ra = observed.observed_round(&rewards, &mut sink);
            let rb = plain.round(&rewards);
            assert_eq!(ra, rb, "round {t}");
        }
        assert_eq!(observed.metrics(), plain.metrics());
        assert_eq!(observed.distribution(), plain.distribution());
    }

    #[test]
    fn observed_round_matches_round_on_all_models() {
        let params = Params::new(3, 0.6).unwrap();
        let faults = FaultPlan::none().rolling_restart(5, 6);
        let cfg = || DistConfig::new(params, 30).with_faults(faults.clone());

        assert_twin(Runtime::new(cfg(), 9), Runtime::new(cfg(), 9));
        assert_twin(EventRuntime::new(cfg(), 9), EventRuntime::new(cfg(), 9));
        let sharded = || {
            EventRuntime::new(cfg(), 9).with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 })
        };
        assert_twin(sharded(), sharded());
    }

    #[test]
    fn sharded_observation_reports_loads_and_rebalances() {
        let params = Params::new(3, 0.6).unwrap();
        let cfg = DistConfig::new(params, 24).with_faults(FaultPlan::none().rolling_restart(6, 4));
        let mut rt =
            EventRuntime::new(cfg, 5).with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        let mut rec = MetricsRecorder::new(64);
        for t in 0..30u64 {
            let rewards = [t % 2 == 0, false, true];
            rt.observed_round(&rewards, &mut rec);
            // Shard loads cover all 4 lanes and partition the fleet's
            // presence going into the next round.
            let f = rec.latest().unwrap();
            assert_eq!(f.shard_loads.len(), 4, "round {}", f.round);
            assert_eq!(
                f.shard_loads.iter().sum::<usize>(),
                rt.alive_count(),
                "round {}",
                f.round
            );
        }
        // A rolling restart over 4+ lanes must have moved a boundary.
        let total_rebalances: u64 = rec.frames().map(|f| f.rebalances).sum();
        assert!(total_rebalances > 0, "no rebalance observed under churn");
    }

    #[test]
    fn unsharded_observation_reports_single_whole_fleet_shard() {
        let params = Params::new(2, 0.65).unwrap();
        let mut rt = Runtime::new(DistConfig::new(params, 12), 3);
        let mut rec = MetricsRecorder::new(8);
        rt.observed_round(&[true, false], &mut rec);
        let f = rec.latest().unwrap();
        assert_eq!(f.shard_loads, vec![12]);
        assert_eq!(f.rebalances, 0);
        assert_eq!(f.epoch_skew, 0);
    }
}
