//! Checked narrowing casts for node-id, shard-index, and option-index
//! arithmetic (determinism rule D5).
//!
//! Node ids travel as `u32` on the wire and in the packed per-node
//! state, while Rust indexing hands back `usize` — so the runtimes
//! narrow constantly. A bare `x as u32` silently wraps once a value
//! crosses `u32::MAX`, turning an impossible-fleet-size bug into a
//! deterministic-looking wrong answer; this module keeps every
//! narrowing conversion behind one audited, loudly panicking helper
//! so `detlint` can ban the bare casts outright.

/// Narrows a node / shard / option index to `u32`, panicking instead
/// of truncating. The branch is fully predictable, so the hot paths
/// (one conversion per message event) do not measurably pay for it.
#[inline]
pub(crate) fn index_u32(x: usize) -> u32 {
    x.try_into()
        .unwrap_or_else(|_| panic!("index {x} exceeds u32::MAX — fleet/option ids are 32-bit"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_range() {
        assert_eq!(index_u32(0), 0);
        assert_eq!(index_u32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn panics_instead_of_truncating() {
        let _ = index_u32(u32::MAX as usize + 1);
    }
}
