//! # sociolearn-dist
//!
//! The paper's engineering suggestion (Sections 1 and 6), realized: a
//! round-synchronous **message-passing** implementation of the
//! sample-then-adopt dynamics in which every node keeps **O(1)
//! protocol state** — just the option it committed to last round — and
//! the fleet as a whole performs the group-level multiplicative-weights
//! update.
//!
//! Each round, every alive node:
//!
//! 1. **Samples** an option: with probability `µ` it explores
//!    uniformly at random (no messages); otherwise it sends a *query*
//!    to a uniformly random peer, which *replies* with the option it
//!    committed to last round. A peer that sat out (or crashed, or
//!    whose link dropped the message) yields no reply, and the node
//!    retries with a fresh peer up to [`MAX_QUERY_RETRIES`] times
//!    before falling back to a uniform random option.
//! 2. **Adopts** the sampled option with probability `β` if the
//!    fresh quality signal for it is good and `α` otherwise — else it
//!    sits out this round.
//!
//! Conditioned on getting a reply, retrying uniform peers until one is
//! committed is exactly a uniform draw over last round's committed
//! nodes, i.e. a draw from the popularity distribution `Q^t` — so on a
//! clean network this process is the finite-population dynamics of
//! [`sociolearn_core::FinitePopulation`] (the cross-crate equivalence
//! tests check the two agree in law). Faults — message loss via
//! [`FaultPlan::with_drop_prob`], scheduled crashes via
//! [`FaultPlan::crash`], and scripted *churn* (nodes joining, leaving,
//! and rejoining via [`FaultPlan::join`] / [`FaultPlan::leave`] /
//! [`FaultPlan::rejoin`] and the bulk builders
//! [`FaultPlan::rolling_restart`], [`FaultPlan::flash_crowd`],
//! [`FaultPlan::region_loss`]) — degrade the *copying* throughput and
//! push nodes toward the uniform fallback: learning slows but stays
//! well-defined. A node that joins or rejoins holds no commitment and
//! bootstraps through the ordinary query/reply protocol — there is no
//! state-transfer message type, because [`NODE_STATE_BYTES`] of state
//! is cheaper to relearn than to ship.
//!
//! # Three execution models
//!
//! The crate ships two runtime types realizing three execution models
//! of the same protocol, all O(1) protocol state per node and all
//! driving the same [`GroupDynamics`] interface (see also
//! [`ProtocolRuntime`] and [`ExecutionModel`]):
//!
//! * [`Runtime`] — **round-synchronous**: a global barrier between
//!   rounds; every query/reply exchange completes within the round it
//!   was issued. Allocation-free after construction (the per-node
//!   choice vector is double-buffered and the count vector reused),
//!   with [`ProtocolRuntime::run_batch`] reporting per-batch counter
//!   deltas. Use it for law-level experiments and for raw throughput.
//! * [`EventRuntime`] — **epoch-quiesced event-driven** (the default):
//!   a seeded discrete-event scheduler delivers query/reply messages
//!   with per-message latency jitter through bounded per-node FIFO
//!   queues; lost messages and unanswered queries are recovered by
//!   timeout-driven retries, and each epoch runs to quiescence before
//!   the next begins. Use it to model transport behavior — latency,
//!   queue backpressure — that a global barrier hides.
//! * [`EventRuntime::with_async_epochs`] — **fully asynchronous**: the
//!   quiescence barrier is gone. Every node advances its own local
//!   epoch the moment its reply (or timeout fallback) lands, epochs
//!   overlap across the fleet, queries carry the sender's epoch, and
//!   replies staler than a configurable [`StalenessBound`] are
//!   withheld (counted in [`RoundMetrics::stale_replies`]). Use it to
//!   study convergence under staleness à la Su–Zubeldia–Lynch
//!   (arXiv:1802.08159).
//!
//! Orthogonally to the execution model, the event-driven runtime can
//! run on either of two **schedulers**
//! ([`EventRuntime::with_scheduler`]): the default
//! [`SchedulerKind::SingleHeap`] (one global `BinaryHeap`), or the
//! [`SchedulerKind::ShardedCalendar`] engine — per-node-range shards
//! over O(1) [`Calendar`] queues with per-node RNG streams, built for
//! fleet scale. The two schedulers agree in law, and the sharded
//! engine's results are byte-identical across shard counts.
//!
//! # Example
//!
//! ```
//! use sociolearn_core::{GroupDynamics, Params};
//! use sociolearn_dist::{DistConfig, FaultPlan, Runtime};
//!
//! let params = Params::new(3, 0.6)?;
//! let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(0, 40);
//! let mut net = Runtime::new(DistConfig::new(params, 64).with_faults(faults), 7);
//! for _ in 0..50 {
//!     let rm = net.round(&[true, false, false]);
//!     assert!(rm.committed <= rm.alive);
//! }
//! assert_eq!(net.distribution().len(), 3);
//! # Ok::<(), sociolearn_core::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod cast;
mod event;
mod soa;
mod telemetry;

pub use calendar::{Calendar, Entry, SchedulerKind, MAX_LOOKAHEAD, RING_SLOTS};
pub use event::{
    EventRuntime, StalenessBound, ASYNC_EPOCH_PERIOD, DEFAULT_QUEUE_BOUND, EVENT_NODE_STATE_BYTES,
    MAX_MESSAGE_LATENCY,
};
pub use telemetry::{MetricsRecorder, NoTelemetry, TelemetryFrame, TelemetrySink, TickObservation};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sociolearn_core::{GroupDynamics, Params};

use cast::index_u32;

/// Protocol state kept by one node between rounds: the option it
/// committed to last round, packed into a single `u32`
/// ([`NO_CHOICE`] = sat out or crashed). There is no weight vector
/// and no history — this is the O(1) memory footprint the paper's
/// conclusion advertises, and packing it to four bytes halves the
/// fleet state arrays the hot loop walks at scale.
pub(crate) type NodeState = u32;

/// The [`NodeState`] sentinel for "sat out this round": no real
/// option id can collide with it (fleets have far fewer than
/// `u32::MAX` options).
pub(crate) const NO_CHOICE: NodeState = u32::MAX;

/// Bytes of protocol state per node (the current option only).
pub const NODE_STATE_BYTES: usize = std::mem::size_of::<NodeState>();

/// The uniform fleet initialization shared by every runtime and
/// scheduler: node `i` starts committed to option `i mod m`, matching
/// the in-memory dynamics. Kept in one place so the runtimes cannot
/// drift apart on their round-0 state.
pub(crate) fn uniform_start_choice(node: usize, m: usize) -> NodeState {
    index_u32(node % m)
}

// The O(1)-memory claim, enforced at compile time: a node's protocol
// state must stay a handful of bytes (no weight vector, no history).
const _: () = assert!(NODE_STATE_BYTES <= 8);

/// Per-node protocol state the round-synchronous [`Runtime`] keeps:
/// the current commitment plus last round's snapshot it answers
/// peer queries from — two `u32` option slots ([`NODE_STATE_BYTES`]
/// each), and nothing that grows with rounds, options, or history.
pub const ROUND_SYNC_NODE_STATE_BYTES: usize = 2 * std::mem::size_of::<NodeState>();

// The bounded-memory budget (à la Su–Zubeldia–Lynch's bounded-memory
// collaborative learning), tied down at compile time: each execution
// model's per-node protocol state is a small documented multiple of
// NODE_STATE_BYTES. A PR that grows a per-node struct must
// renegotiate the budget here, visibly — see the matching assertions
// in `event.rs` (EVENT_NODE_STATE_BYTES) and `calendar.rs`
// (SHARD_LANE_NODE_STATE_BYTES), and the `node_state_budgets` unit
// test documenting the exact current sizes.
const _: () = assert!(ROUND_SYNC_NODE_STATE_BYTES == 2 * NODE_STATE_BYTES);

/// How many peers a node tries per round before giving up on copying
/// and falling back to uniform exploration. Bounds both the per-round
/// message cost (≤ `2 · MAX_QUERY_RETRIES · N`) and the tail latency
/// of a round.
pub const MAX_QUERY_RETRIES: u32 = 8;

/// Error building a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// The message-drop probability was outside `[0, 1]` (or NaN).
    DropProbOutOfRange(f64),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::DropProbOutOfRange(p) => {
                write!(f, "message drop probability must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One scripted membership transition kind. Internal: the public
/// surface is the [`FaultPlan`] builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MembershipKind {
    /// First appearance of a node that starts *outside* the fleet.
    Join,
    /// A graceful departure (distinct from a crash in the metrics).
    Leave,
    /// Re-entry of a node that previously left.
    Rejoin,
}

/// A bulk membership pattern, resolved against the concrete fleet size
/// when a runtime is built (the plan itself is size-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BulkChurn {
    /// Restart the fleet batch by batch: batch `k` (nodes
    /// `[k·batch, (k+1)·batch)`) leaves at round `2 + k·period` and
    /// rejoins `max(period/2, 1)` rounds later.
    RollingRestart {
        /// Nodes per restart batch.
        batch: usize,
        /// Rounds between consecutive batch restarts.
        period: u64,
    },
    /// The last `count` node ids start absent and all join at `round`.
    FlashCrowd {
        /// Nodes arriving at once.
        count: usize,
        /// The 1-based round they arrive.
        round: u64,
    },
}

/// A deterministic schedule of injected faults and membership churn:
/// independent per-message loss, per-node crash rounds, and a scripted
/// membership timeline (joins, leaves, rejoins).
///
/// Built with [`FaultPlan::none`] or [`FaultPlan::with_drop_prob`] and
/// extended with the [`crash`](FaultPlan::crash) builder and the
/// membership builders:
///
/// ```
/// use sociolearn_dist::FaultPlan;
///
/// let plan = FaultPlan::with_drop_prob(0.25)?.crash(3, 100).crash(4, 100);
/// assert_eq!(plan.drop_prob(), 0.25);
/// assert_eq!(plan.crash_round(3), Some(100));
/// assert_eq!(plan.crash_round(0), None);
///
/// // Churn: node 7 restarts, a region blinks out, late arrivals.
/// let churn = FaultPlan::none()
///     .leave(7, 40)
///     .rejoin(7, 60)
///     .region_loss(10..20, 80, 120)
///     .flash_crowd(16, 200);
/// assert!(churn.has_membership_events());
/// # Ok::<(), sociolearn_dist::FaultPlanError>(())
/// ```
///
/// Leaving is *graceful* shutdown, crashing is failure; both make the
/// node answer nothing and drop it from the popularity distribution,
/// but they are counted separately ([`RoundMetrics::leaves`] vs the
/// alive count) and only a leave may be followed by a rejoin. A
/// (re)joining node holds no commitment: it bootstraps through the
/// ordinary query/reply protocol (uniform fallback after
/// [`MAX_QUERY_RETRIES`]) — no new message types, no state transfer.
///
/// Scripts are validated when a runtime is built: conflicting or
/// out-of-order transitions (rejoining a present node, leaving an
/// absent one, events after a crash) panic with the offending node and
/// round. Events for node ids beyond the fleet size are ignored, like
/// out-of-range crashes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_prob: f64,
    /// `(node, round)` pairs; a node dies at the *start* of its crash
    /// round (the earliest round wins if scheduled twice).
    crashes: Vec<(usize, u64)>,
    /// Explicit membership transitions: `(node, round, kind)`.
    events: Vec<(usize, u64, MembershipKind)>,
    /// Bulk churn patterns, resolved against `n` at runtime build.
    bulk: Vec<BulkChurn>,
}

impl FaultPlan {
    /// The inert plan: no message loss, no crashes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan dropping every message independently with probability
    /// `p` (queries and replies alike).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::DropProbOutOfRange`] if `p` is not a
    /// probability.
    pub fn with_drop_prob(p: f64) -> Result<Self, FaultPlanError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(FaultPlanError::DropProbOutOfRange(p));
        }
        Ok(FaultPlan {
            drop_prob: p,
            ..FaultPlan::default()
        })
    }

    /// Schedules `node` to crash at the start of `round` (1-based, the
    /// round numbering of [`Runtime::round`]). Crashed nodes send
    /// nothing, answer nothing, and drop out of the popularity
    /// distribution. If the node is already scheduled, the earlier
    /// round wins.
    pub fn crash(mut self, node: usize, round: u64) -> Self {
        if let Some(entry) = self.crashes.iter_mut().find(|(n, _)| *n == node) {
            entry.1 = entry.1.min(round);
        } else {
            self.crashes.push((node, round));
        }
        self
    }

    /// Schedules `node` to *start outside the fleet* and join at the
    /// start of `round` (1-based). A joining node enters bootstrapping:
    /// no commitment, adopting via the ordinary query protocol. A join
    /// must be the node's first membership event.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` (membership rounds are 1-based).
    pub fn join(mut self, node: usize, round: u64) -> Self {
        assert!(round >= 1, "membership rounds are 1-based");
        self.events.push((node, round, MembershipKind::Join));
        self
    }

    /// Schedules `node` to leave gracefully at the start of `round`
    /// (1-based). Departed nodes answer nothing and drop out of the
    /// popularity distribution; unlike a crash, a leave is counted in
    /// [`RoundMetrics::leaves`] and may be followed by a
    /// [`rejoin`](FaultPlan::rejoin).
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` (membership rounds are 1-based).
    pub fn leave(mut self, node: usize, round: u64) -> Self {
        assert!(round >= 1, "membership rounds are 1-based");
        self.events.push((node, round, MembershipKind::Leave));
        self
    }

    /// Schedules `node` to re-enter the fleet at the start of `round`
    /// (1-based), after an earlier [`leave`](FaultPlan::leave). The
    /// rejoined node remembers nothing — it bootstraps exactly like a
    /// fresh join.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` (membership rounds are 1-based).
    pub fn rejoin(mut self, node: usize, round: u64) -> Self {
        assert!(round >= 1, "membership rounds are 1-based");
        self.events.push((node, round, MembershipKind::Rejoin));
        self
    }

    /// Bulk builder: a rolling restart sweeping the whole fleet batch
    /// by batch. Batch `k` (nodes `[k·batch, (k+1)·batch)`, resolved
    /// against the fleet size when a runtime is built) leaves at round
    /// `2 + k·period` and rejoins `max(period/2, 1)` rounds later, so
    /// at most one batch is down at a time whenever `period ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `period < 2` (a batch must have time
    /// to come back before the next goes down).
    pub fn rolling_restart(mut self, batch: usize, period: u64) -> Self {
        assert!(batch > 0, "rolling restart batch must be non-empty");
        assert!(
            period >= 2,
            "rolling restart period must be at least 2 rounds"
        );
        self.bulk.push(BulkChurn::RollingRestart { batch, period });
        self
    }

    /// Bulk builder: a flash crowd. The last `count` node ids of the
    /// fleet start *absent* and all join at the start of `round` —
    /// `count` fresh bootstrapping nodes arriving at once.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `round == 0`; panics at runtime build
    /// if `count` exceeds the fleet size.
    pub fn flash_crowd(mut self, count: usize, round: u64) -> Self {
        assert!(count > 0, "flash crowd must bring at least one node");
        assert!(round >= 1, "membership rounds are 1-based");
        self.bulk.push(BulkChurn::FlashCrowd { count, round });
        self
    }

    /// Bulk builder: region loss. Every node in `range` leaves at the
    /// start of `round` and rejoins at the start of `rejoin_round` —
    /// a whole contiguous slice of the fleet blinking out and coming
    /// back cold (bootstrapping).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty, `round == 0`, or
    /// `rejoin_round <= round`.
    pub fn region_loss(
        mut self,
        range: std::ops::Range<usize>,
        round: u64,
        rejoin_round: u64,
    ) -> Self {
        assert!(!range.is_empty(), "region loss range must be non-empty");
        assert!(round >= 1, "membership rounds are 1-based");
        assert!(
            rejoin_round > round,
            "region must rejoin strictly after it leaves"
        );
        for node in range {
            self.events.push((node, round, MembershipKind::Leave));
            self.events
                .push((node, rejoin_round, MembershipKind::Rejoin));
        }
        self
    }

    /// The per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The scheduled crash round of `node`, if any.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, r)| r)
    }

    /// Number of nodes with a scheduled crash.
    pub fn num_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Whether the plan scripts any membership churn (explicit
    /// join/leave/rejoin events or bulk patterns), beyond message loss
    /// and crashes.
    pub fn has_membership_events(&self) -> bool {
        !self.events.is_empty() || !self.bulk.is_empty()
    }

    /// Number of explicit membership transitions scripted so far (bulk
    /// patterns count once resolved against a concrete fleet, not
    /// here).
    pub fn num_membership_events(&self) -> usize {
        self.events.len()
    }

    /// Whether this plan injects no faults at all.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0
            && self.crashes.is_empty()
            && self.events.is_empty()
            && self.bulk.is_empty()
    }
}

/// Configuration of a message-passing deployment: model parameters,
/// fleet size, and the fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DistConfig {
    params: Params,
    n: usize,
    faults: FaultPlan,
}

impl DistConfig {
    /// A fault-free deployment of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Params, n: usize) -> Self {
        assert!(n > 0, "deployment must have at least one node");
        DistConfig {
            params,
            n,
            faults: FaultPlan::none(),
        }
    }

    /// Attaches a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

/// What happened in one protocol round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// The 1-based round number.
    pub round: u64,
    /// Nodes alive during this round.
    pub alive: usize,
    /// Alive nodes that committed to an option this round.
    pub committed: usize,
    /// Queries sent this round (every attempt counts, delivered or
    /// not).
    pub queries_sent: u64,
    /// Replies that actually reached their querier this round.
    pub replies_received: u64,
    /// Nodes that exhausted their query retries and fell back to a
    /// uniform random option.
    pub fallbacks: u64,
    /// Nodes that explored uniformly by design (the `µ` branch; sends
    /// no messages and is not a fallback).
    pub explorations: u64,
    /// Messages rejected by a full receiver queue. Always 0 for the
    /// round-synchronous [`Runtime`], which has no queues — with or
    /// without membership churn; the event-driven [`EventRuntime`]
    /// counts backpressure drops here, and a churn script can spike
    /// them (a rejoin wave concentrates queries on the nodes still
    /// up, overflowing their inboxes).
    pub queue_drops: u64,
    /// Replies withheld because the responder's information was more
    /// than the configured staleness bound behind the querier's local
    /// epoch. Always 0 outside fully-async execution, and 0 in async
    /// execution when the bound is [`StalenessBound::Unbounded`].
    /// Under membership churn, rejoining nodes restart their local
    /// epoch at the fleet's tail, so a churn script widens the skew
    /// and can make bounded-staleness fleets shed replies here.
    pub stale_replies: u64,
    /// Nodes that joined the fleet for the first time this round.
    pub joins: u64,
    /// Nodes that left gracefully this round (crashes are *not*
    /// counted here — they show up only as a shrinking `alive`).
    pub leaves: u64,
    /// Nodes that re-entered the fleet this round after a leave.
    pub rejoins: u64,
    /// Nodes currently bootstrapping: (re)joined but not yet through
    /// their first commit/sit-out decision. A gauge, not a flow — in
    /// barriered execution every bootstrap resolves within its round,
    /// so this equals `joins + rejoins`; fully-async execution carries
    /// bootstraps across rounds until the node's first epoch lands.
    pub bootstrapping: u64,
}

/// Cumulative counters across all rounds of a [`Runtime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Total queries sent.
    pub queries_sent: u64,
    /// Total replies received.
    pub replies_received: u64,
    /// Total uniform fallbacks after exhausted retries.
    pub fallbacks: u64,
    /// Total deliberate `µ`-explorations.
    pub explorations: u64,
    /// Total messages rejected by full receiver queues. Always 0 for
    /// the queueless round-synchronous [`Runtime`] even under churn;
    /// nonzero only in event-driven execution, where churn waves are
    /// the usual cause of spikes.
    pub queue_drops: u64,
    /// Total replies withheld as too stale (fully-async mode with a
    /// finite [`StalenessBound`] only; churn-widened epoch skew is
    /// what usually drives this up).
    pub stale_replies: u64,
    /// Total first-time joins (nonzero only when a [`FaultPlan`]
    /// scripts membership churn).
    pub joins: u64,
    /// Total graceful leaves (crashes not included; nonzero only
    /// under scripted churn).
    pub leaves: u64,
    /// Total rejoins after a leave (nonzero only under scripted
    /// churn).
    pub rejoins: u64,
}

impl Metrics {
    /// Mean messages (queries sent + replies received) per round.
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.queries_sent + self.replies_received) as f64 / self.rounds as f64
        }
    }

    /// The counters accumulated *since* an earlier snapshot of the
    /// same runtime's metrics — what [`ProtocolRuntime::run_batch`]
    /// returns for its batch.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            queries_sent: self.queries_sent - earlier.queries_sent,
            replies_received: self.replies_received - earlier.replies_received,
            fallbacks: self.fallbacks - earlier.fallbacks,
            explorations: self.explorations - earlier.explorations,
            queue_drops: self.queue_drops - earlier.queue_drops,
            stale_replies: self.stale_replies - earlier.stale_replies,
            joins: self.joins - earlier.joins,
            leaves: self.leaves - earlier.leaves,
            rejoins: self.rejoins - earlier.rejoins,
        }
    }

    pub(crate) fn absorb(&mut self, rm: &RoundMetrics) {
        self.rounds += 1;
        self.queries_sent += rm.queries_sent;
        self.replies_received += rm.replies_received;
        self.fallbacks += rm.fallbacks;
        self.explorations += rm.explorations;
        self.queue_drops += rm.queue_drops;
        self.stale_replies += rm.stale_replies;
        self.joins += rm.joins;
        self.leaves += rm.leaves;
        self.rejoins += rm.rejoins;
    }
}

/// One resolved membership transition, as the runtimes see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transition {
    /// First appearance of a node that started absent.
    Join,
    /// Graceful departure.
    Leave,
    /// Re-entry after a leave.
    Rejoin,
    /// Failure: permanent, terminal for the node.
    Crash,
}

/// A [`FaultPlan`]'s crash *and membership* schedule resolved against
/// a concrete fleet: one sorted timeline of transitions, a per-node
/// presence bitmap so fault checks are O(1) (the old implementation
/// rescanned the crash list per node per round), and a running alive
/// counter so `alive_count` is O(1) instead of an O(N) rescan. Shared
/// by all three execution models.
#[derive(Debug, Clone)]
pub(crate) struct MembershipTracker {
    /// Every transition, sorted by `(round, node)`. Validated at
    /// construction: per node, transitions must alternate presence
    /// legally (join first and only first, leave from present, rejoin
    /// from absent, crash from present and terminal).
    timeline: Vec<(u64, u32, Transition)>,
    /// Prefix of `timeline` already applied to `present`/`alive`.
    applied: usize,
    /// Whether each node is present in the round last advanced to.
    present: Vec<bool>,
    /// Whether each node is in the fleet *before round 1* (false only
    /// for nodes whose first transition is a join).
    init_present: Vec<bool>,
    /// Nodes present in the round last passed to `advance_to`.
    alive: usize,
    /// The transitions applied by the most recent `advance_to` call,
    /// in node order — what changed going into the current round.
    recent: Vec<(u32, Transition)>,
}

impl MembershipTracker {
    pub(crate) fn new(faults: &FaultPlan, n: usize) -> Self {
        // One pass over the plan's lists — O(C + E log E + n), not the
        // old O(n·C) per-node rescan of the crash list.
        let mut timeline: Vec<(u64, u32, Transition)> =
            Vec::with_capacity(faults.crashes.len() + faults.events.len() + 2 * faults.bulk.len());
        for &(node, round, kind) in &faults.events {
            if node >= n {
                continue;
            }
            let t = match kind {
                MembershipKind::Join => Transition::Join,
                MembershipKind::Leave => Transition::Leave,
                MembershipKind::Rejoin => Transition::Rejoin,
            };
            timeline.push((round, index_u32(node), t));
        }
        for &(node, round) in &faults.crashes {
            if node < n {
                timeline.push((round, index_u32(node), Transition::Crash));
            }
        }
        for &spec in &faults.bulk {
            match spec {
                BulkChurn::RollingRestart { batch, period } => {
                    let gap = (period / 2).max(1);
                    let mut k = 0u64;
                    while (k as usize) * batch < n {
                        let down = 2 + k * period;
                        let lo = k as usize * batch;
                        let hi = (lo + batch).min(n);
                        for node in lo..hi {
                            timeline.push((down, index_u32(node), Transition::Leave));
                            timeline.push((down + gap, index_u32(node), Transition::Rejoin));
                        }
                        k += 1;
                    }
                }
                BulkChurn::FlashCrowd { count, round } => {
                    assert!(
                        count <= n,
                        "flash crowd of {count} exceeds the fleet size {n}"
                    );
                    for node in n - count..n {
                        timeline.push((round, index_u32(node), Transition::Join));
                    }
                }
            }
        }
        timeline.sort_unstable_by_key(|&(round, node, _)| (round, node));

        // Validate by replaying each node's own history; a node whose
        // first transition is a join starts outside the fleet.
        let mut init_present = vec![true; n];
        let mut by_node = timeline.clone();
        by_node.sort_unstable_by_key(|&(round, node, _)| (node, round));
        let mut i = 0;
        while i < by_node.len() {
            let node = by_node[i].1;
            let start = i;
            while i < by_node.len() && by_node[i].1 == node {
                i += 1;
            }
            let history = &by_node[start..i];
            for pair in history.windows(2) {
                assert!(
                    pair[0].0 != pair[1].0,
                    "conflicting membership transitions for node {node} at round {}",
                    pair[0].0
                );
            }
            let joins_first = history[0].2 == Transition::Join;
            init_present[node as usize] = !joins_first;
            let mut here = !joins_first;
            for (idx, &(round, _, kind)) in history.iter().enumerate() {
                match kind {
                    Transition::Join => {
                        assert!(
                            idx == 0,
                            "join must be node {node}'s first transition \
                             (round {round}: use rejoin to re-enter)"
                        );
                        here = true;
                    }
                    Transition::Rejoin => {
                        assert!(
                            !here,
                            "node {node} cannot rejoin at round {round}: already present"
                        );
                        here = true;
                    }
                    Transition::Leave => {
                        assert!(
                            here,
                            "node {node} cannot leave at round {round}: already absent"
                        );
                        here = false;
                    }
                    Transition::Crash => {
                        assert!(
                            here,
                            "node {node} cannot crash at round {round}: it is absent"
                        );
                        assert!(
                            idx == history.len() - 1,
                            "node {node} has transitions scheduled after its crash \
                             at round {round}"
                        );
                        here = false;
                    }
                }
            }
        }

        let alive = init_present.iter().filter(|&&p| p).count();
        let mut tracker = MembershipTracker {
            timeline,
            applied: 0,
            present: init_present.clone(),
            init_present,
            alive,
            recent: Vec::new(),
        };
        tracker.advance_to(1);
        tracker
    }

    /// Whether `node` is present (alive and in the fleet) in the round
    /// last advanced to. O(1).
    pub(crate) fn is_present(&self, node: usize) -> bool {
        self.present[node]
    }

    /// Whether `node` belongs to the fleet before round 1 — i.e.
    /// should receive the uniform start commitment. False only for
    /// join-scripted nodes (flash crowds, late arrivals).
    pub(crate) fn in_initial_fleet(&self, node: usize) -> bool {
        self.init_present[node]
    }

    /// Whether any transition is scheduled at all. Lets the hot loops
    /// skip the per-node presence lookups (a cache miss per random
    /// peer at fleet scale) on the common fault-free plans.
    pub(crate) fn any_scheduled(&self) -> bool {
        !self.timeline.is_empty()
    }

    /// Rolls the tracker forward so presence and
    /// [`alive`](Self::alive) describe `round`, recording what changed
    /// in [`recent`](Self::recent). Rounds must advance monotonically.
    pub(crate) fn advance_to(&mut self, round: u64) {
        self.recent.clear();
        while self.applied < self.timeline.len() && self.timeline[self.applied].0 <= round {
            let (_, node, kind) = self.timeline[self.applied];
            self.applied += 1;
            match kind {
                Transition::Join | Transition::Rejoin => {
                    debug_assert!(!self.present[node as usize]);
                    self.present[node as usize] = true;
                    self.alive += 1;
                }
                Transition::Leave | Transition::Crash => {
                    debug_assert!(self.present[node as usize]);
                    self.present[node as usize] = false;
                    self.alive -= 1;
                }
            }
            self.recent.push((node, kind));
        }
    }

    /// The transitions that took effect entering the current round
    /// (the round last advanced to), in node order.
    pub(crate) fn recent(&self) -> &[(u32, Transition)] {
        &self.recent
    }

    /// Nodes present in the round last advanced to, in O(1).
    pub(crate) fn alive(&self) -> usize {
        self.alive
    }
}

/// The round-synchronous message-passing runtime: `N` nodes of
/// [`NODE_STATE_BYTES`] protocol state each, exchanging query/reply
/// gossip, with faults injected per the configured [`FaultPlan`].
///
/// All randomness — protocol choices *and* fault realizations — comes
/// from the seed passed to [`Runtime::new`], so runs are exactly
/// reproducible. The runtime also implements
/// [`GroupDynamics`] so the simulation
/// and experiment harnesses can drive it like any in-memory dynamics
/// (the caller-provided RNG is ignored in favor of the internal one).
///
/// After construction the hot path allocates nothing: [`Runtime::round`]
/// double-buffers the per-node choice vector and reuses the per-option
/// count buffer. [`ProtocolRuntime::run_batch`] drives a whole reward
/// schedule and reports the batch's counter deltas.
#[derive(Debug, Clone)]
pub struct Runtime {
    cfg: DistConfig,
    rng: SmallRng,
    /// Last round's committed option per node ([`NO_CHOICE`] = sat
    /// out or crashed). This vector *is* the fleet's protocol state.
    choices: Vec<NodeState>,
    /// The double buffer: swapped with `choices` at the top of each
    /// round, after which it holds the previous round's snapshot
    /// (what peers answer queries from) while `choices` is rewritten
    /// in place.
    back: Vec<NodeState>,
    /// Crash + membership schedule with O(1) presence checks and an
    /// O(1) alive counter.
    members: MembershipTracker,
    /// Cached committed counts per option over alive nodes.
    counts: Vec<u64>,
    /// Rounds completed.
    round: u64,
    metrics: Metrics,
}

impl Runtime {
    /// Boots a fleet from the uniform initialization (node `i` starts
    /// committed to option `i mod m`, matching the in-memory dynamics;
    /// join-scripted nodes start outside the fleet, uncommitted) with
    /// all randomness derived from `seed`.
    pub fn new(cfg: DistConfig, seed: u64) -> Self {
        let m = cfg.params.num_options();
        let n = cfg.n;
        let members = MembershipTracker::new(&cfg.faults, n);
        let choices: Vec<NodeState> = (0..n)
            .map(|i| {
                if members.in_initial_fleet(i) {
                    uniform_start_choice(i, m)
                } else {
                    NO_CHOICE
                }
            })
            .collect();
        let mut counts = vec![0u64; m];
        for &c in &choices {
            if c != NO_CHOICE {
                counts[c as usize] += 1;
            }
        }
        Runtime {
            rng: SmallRng::seed_from_u64(seed),
            choices,
            back: vec![NO_CHOICE; n],
            members,
            counts,
            round: 0,
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Cumulative message/fallback counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Executes one synchronous protocol round against the fresh
    /// reward signals, returning what happened.
    ///
    /// Allocation-free: the previous round's choices move into the
    /// back buffer by a pointer swap, this round's choices are written
    /// in place, and the count buffer is zeroed and reused.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    pub fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        let m = self.cfg.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        self.round += 1;
        let t = self.round;
        let mu = self.cfg.params.mu();
        let drop_prob = self.cfg.faults.drop_prob();
        let n = self.cfg.n;

        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };

        // The queryable snapshot: last round's commitments land in
        // `back` by a pointer swap, and `choices` (now holding the
        // stale buffer from two rounds ago) is overwritten in place.
        // Nodes dead or departed *this* round no longer answer
        // queries; (re)joining nodes have `back == NO_CHOICE` (absent
        // rounds write NO_CHOICE below) so they bootstrap through the
        // ordinary query path starting this round.
        std::mem::swap(&mut self.choices, &mut self.back);
        self.counts.fill(0);
        let has_events = self.members.any_scheduled();
        if has_events {
            for &(_, kind) in self.members.recent() {
                match kind {
                    Transition::Join => rm.joins += 1,
                    Transition::Leave => rm.leaves += 1,
                    Transition::Rejoin => rm.rejoins += 1,
                    Transition::Crash => {}
                }
            }
            // A global barrier resolves every bootstrap within its
            // first round, so the gauge is just this round's inflow.
            rm.bootstrapping = rm.joins + rm.rejoins;
        }

        for i in 0..n {
            if has_events && !self.members.is_present(i) {
                self.choices[i] = NO_CHOICE;
                continue;
            }
            rm.alive += 1;

            // Stage 1: sample an option to consider.
            let considered: u32 = if self.rng.gen_bool(mu) {
                rm.explorations += 1;
                index_u32(self.rng.gen_range(0..m))
            } else {
                let mut copied = NO_CHOICE;
                if n > 1 {
                    for _ in 0..MAX_QUERY_RETRIES {
                        // Ask a uniformly random *other* node what it
                        // used last round.
                        let mut peer = self.rng.gen_range(0..n - 1);
                        if peer >= i {
                            peer += 1;
                        }
                        rm.queries_sent += 1;
                        // The query must survive the link...
                        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                            continue;
                        }
                        // ...reach a peer that is present and has
                        // something to report (absent peers — crashed
                        // or departed — answer nothing)...
                        if has_events && !self.members.is_present(peer) {
                            continue;
                        }
                        let option = self.back[peer];
                        if option == NO_CHOICE {
                            continue;
                        }
                        // ...and the reply must survive the link back.
                        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                            continue;
                        }
                        rm.replies_received += 1;
                        copied = option;
                        break;
                    }
                }
                if copied == NO_CHOICE {
                    rm.fallbacks += 1;
                    index_u32(self.rng.gen_range(0..m))
                } else {
                    copied
                }
            };

            // Stage 2: probe the considered option's fresh signal and
            // adopt or sit out.
            let adopt_p = self
                .cfg
                .params
                .adopt_probability(rewards[considered as usize]);
            if self.rng.gen_bool(adopt_p) {
                self.choices[i] = considered;
                self.counts[considered as usize] += 1;
                rm.committed += 1;
            } else {
                self.choices[i] = NO_CHOICE;
            }
        }

        debug_assert_eq!(rm.alive, self.members.alive(), "alive counter drifted");
        self.members.advance_to(t + 1);
        self.metrics.absorb(&rm);
        rm
    }

    /// Committed counts per option over alive nodes (last round).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of nodes present for the *next* round, in O(1) (a
    /// running counter maintained as scheduled crashes and membership
    /// transitions take effect — with churn this can grow as well as
    /// shrink).
    pub fn alive_count(&self) -> usize {
        self.members.alive()
    }
}

impl GroupDynamics for Runtime {
    fn num_options(&self) -> usize {
        self.cfg.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.cfg.params.num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    /// Advances one round. The message-passing runtime draws all of
    /// its randomness (protocol and faults) from the seed given to
    /// [`Runtime::new`]; the caller's RNG is ignored so that a
    /// deployment's behavior is a function of its own seed alone.
    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.round(rewards);
    }

    fn label(&self) -> &str {
        "social (message-passing)"
    }
}

/// How a [`ProtocolRuntime`] executes the protocol in (virtual) time —
/// the axis the runtimes differ on, surfaced through the shared trait
/// so harnesses can label and select execution models generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionModel {
    /// A global barrier between rounds: every query/reply exchange
    /// completes within the round it was issued ([`Runtime`]).
    RoundSync,
    /// A discrete-event scheduler with jittered wakes and latencies,
    /// but each epoch still runs to quiescence before the next starts
    /// (the default [`EventRuntime`]).
    EpochQuiesced,
    /// No barrier at all: every node advances its own local epoch the
    /// moment its reply or timeout fallback lands, and epochs overlap
    /// across the fleet ([`EventRuntime::with_async_epochs`]).
    FullyAsync,
}

impl ExecutionModel {
    /// Short human-readable label, stable across releases (used in
    /// experiment tables and CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            ExecutionModel::RoundSync => "round-sync",
            ExecutionModel::EpochQuiesced => "epoch-quiesced",
            ExecutionModel::FullyAsync => "fully-async",
        }
    }
}

impl std::fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The driving surface shared by the crate's two runtimes, so
/// harnesses, experiments, and examples can swap the round-synchronous
/// [`Runtime`] and the event-driven [`EventRuntime`] (epoch-quiesced
/// or fully-async) interchangeably: step the protocol with fresh
/// rewards, read the per-round and cumulative counters, and watch the
/// fleet shrink and grow as crashes and membership churn land.
///
/// Both implementors also implement
/// [`GroupDynamics`] (a supertrait
/// here), so anything driving the abstract dynamics — `run_one`,
/// regret trackers, the sweep machinery — works on them unchanged.
pub trait ProtocolRuntime: GroupDynamics {
    /// Advances one protocol round (one scheduler epoch for the
    /// event-driven runtime) against fresh reward signals.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    fn round(&mut self, rewards: &[bool]) -> RoundMetrics;

    /// Cumulative counters across all rounds so far.
    fn metrics(&self) -> Metrics;

    /// Fleet size `N`.
    fn num_nodes(&self) -> usize;

    /// Nodes alive for the next round, in O(1).
    fn alive_count(&self) -> usize;

    /// Rounds completed so far.
    fn rounds_completed(&self) -> u64;

    /// Which execution model this runtime realizes — round-sync,
    /// epoch-quiesced event-driven, or fully asynchronous.
    fn execution_model(&self) -> ExecutionModel;

    /// Max−min completed local epoch over present nodes — the skew a
    /// dashboard charts to see how far the fleet's frontier has
    /// spread. Defaults to 0, correct for every barriered model (no
    /// node can run ahead of a barrier); only fully-async execution
    /// overrides it with a live spread.
    fn epoch_skew(&self) -> u64 {
        0
    }

    /// Appends the present-node count of each scheduler shard to
    /// `out`, in shard order. The default reports one whole-fleet
    /// entry — correct for every unsharded runtime; the sharded
    /// calendar engine overrides it with its per-lane loads.
    fn write_shard_loads(&self, out: &mut Vec<usize>) {
        out.push(self.alive_count());
    }

    /// Online shard rebalances performed so far. 0 (the default) for
    /// every runtime without a sharded scheduler.
    fn shard_rebalances(&self) -> u64 {
        0
    }

    /// Advances one round exactly like
    /// [`round`](ProtocolRuntime::round), then reports a
    /// [`TickObservation`] to `sink`.
    ///
    /// The observation is assembled strictly after the round
    /// completes and draws no randomness, so a sink-attached run
    /// follows the byte-identical trajectory of a sink-free one —
    /// pass [`NoTelemetry`] and this *is* `round`.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    fn observed_round(&mut self, rewards: &[bool], sink: &mut dyn TelemetrySink) -> RoundMetrics {
        let rm = self.round(rewards);
        let mut shard_loads = Vec::new();
        self.write_shard_loads(&mut shard_loads);
        sink.on_tick(&TickObservation {
            round: rm,
            cumulative: self.metrics(),
            model: self.execution_model(),
            num_nodes: self.num_nodes(),
            epoch_skew: self.epoch_skew(),
            shard_loads,
            rebalances: self.shard_rebalances(),
        });
        rm
    }

    /// Runs one round per entry of `rewards_per_round`, returning the
    /// [`Metrics`] accumulated over just this batch (a
    /// [`Metrics::since`] delta) — the convenient form when only
    /// aggregate counters matter (sweeps, benchmarks, long fault-free
    /// stretches).
    ///
    /// # Panics
    ///
    /// Panics if any reward row's length differs from the number of
    /// options.
    fn run_batch<S: AsRef<[bool]>>(&mut self, rewards_per_round: &[S]) -> Metrics
    where
        Self: Sized,
    {
        let before = self.metrics();
        for rewards in rewards_per_round {
            self.round(rewards.as_ref());
        }
        self.metrics().since(&before)
    }
}

impl ProtocolRuntime for Runtime {
    fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        Runtime::round(self, rewards)
    }

    fn metrics(&self) -> Metrics {
        Runtime::metrics(self)
    }

    fn num_nodes(&self) -> usize {
        Runtime::num_nodes(self)
    }

    fn alive_count(&self) -> usize {
        Runtime::alive_count(self)
    }

    fn rounds_completed(&self) -> u64 {
        Runtime::rounds_completed(self)
    }

    fn execution_model(&self) -> ExecutionModel {
        ExecutionModel::RoundSync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(2, 0.65).unwrap()
    }

    /// Documents the exact per-node state budgets that the compile-time
    /// `const` assertions in `lib.rs`, `event.rs`, and `calendar.rs` bound.
    /// If a protocol struct grows, this test pins down the new number so the
    /// change is a conscious decision rather than silent drift away from the
    /// O(log m)-bits-per-node claim.
    #[test]
    fn node_state_budgets() {
        // The canonical unit: one adopted-option id (u32).
        assert_eq!(NODE_STATE_BYTES, 4);
        // Round-synchronous model: current + next option per node.
        assert_eq!(ROUND_SYNC_NODE_STATE_BYTES, 8);
        assert_eq!(ROUND_SYNC_NODE_STATE_BYTES, 2 * NODE_STATE_BYTES);
        // Event-driven model: option + pending sample + virtual-time stamp.
        assert_eq!(EVENT_NODE_STATE_BYTES, 16);
        assert_eq!(EVENT_NODE_STATE_BYTES, 4 * NODE_STATE_BYTES);
        // Sharded calendar-queue lane bookkeeping per node.
        assert_eq!(calendar::SHARD_LANE_NODE_STATE_BYTES, 24);
        assert_eq!(calendar::SHARD_LANE_NODE_STATE_BYTES, 6 * NODE_STATE_BYTES);
    }

    #[test]
    fn initialization_matches_uniform_start() {
        let net = Runtime::new(DistConfig::new(Params::new(3, 0.6).unwrap(), 7), 1);
        assert_eq!(net.counts(), &[3, 2, 2]);
        let q = net.distribution();
        assert!((q[0] - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_network_converges_to_best_option() {
        let mut net = Runtime::new(DistConfig::new(params(), 500), 2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.round(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn round_metrics_are_internally_consistent() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap();
        let mut net = Runtime::new(DistConfig::new(params(), 64).with_faults(faults), 4);
        for _ in 0..50 {
            let rm = net.round(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.alive <= 64);
            assert!(rm.replies_received <= rm.queries_sent);
            assert!(rm.queries_sent <= 64 * MAX_QUERY_RETRIES as u64);
            let handled = rm.explorations + rm.fallbacks + rm.replies_received;
            assert!(
                handled >= rm.alive as u64,
                "every alive node resolves stage 1"
            );
        }
        let m = net.metrics();
        assert_eq!(m.rounds, 50);
        assert!(m.messages_per_round() > 0.0);
    }

    #[test]
    fn total_loss_means_no_replies() {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = Runtime::new(DistConfig::new(params(), 40).with_faults(faults), 5);
        for _ in 0..20 {
            net.round(&[true, true]);
        }
        assert_eq!(net.metrics().replies_received, 0);
        assert!(net.metrics().fallbacks > 0);
    }

    #[test]
    fn crashed_nodes_leave_the_distribution() {
        let faults = FaultPlan::none().crash(0, 1).crash(1, 1).crash(2, 1);
        let mut net = Runtime::new(DistConfig::new(params(), 4).with_faults(faults), 6);
        let rm = net.round(&[true, true]);
        assert_eq!(rm.alive, 1);
        assert_eq!(net.alive_count(), 1);
        // Only node 3 can be committed.
        assert!(net.counts().iter().sum::<u64>() <= 1);
    }

    #[test]
    fn single_node_fleet_never_queries() {
        let mut net = Runtime::new(DistConfig::new(params(), 1), 7);
        for _ in 0..30 {
            net.round(&[true, false]);
        }
        assert_eq!(net.metrics().queries_sent, 0);
        assert!(net.metrics().explorations + net.metrics().fallbacks > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net = Runtime::new(DistConfig::new(params(), 50).with_faults(faults), seed);
            let mut out = Vec::new();
            for t in 0..40 {
                net.round(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, net.metrics())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn step_ignores_external_rng_stream() {
        // Two different external RNGs must not change the trajectory.
        let drive = |ext_seed: u64| {
            let mut net = Runtime::new(DistConfig::new(params(), 80), 13);
            let mut ext = SmallRng::seed_from_u64(ext_seed);
            for _ in 0..20 {
                net.step(&[true, false], &mut ext);
            }
            net.distribution()
        };
        assert_eq!(drive(1), drive(999));
    }

    #[test]
    fn run_batch_matches_round_loop() {
        let schedule: Vec<Vec<bool>> = (0..30).map(|t| vec![t % 2 == 0, t % 3 == 0]).collect();
        let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(1, 7);
        let mut batched =
            Runtime::new(DistConfig::new(params(), 40).with_faults(faults.clone()), 9);
        let mut looped = Runtime::new(DistConfig::new(params(), 40).with_faults(faults), 9);
        let batch = batched.run_batch(&schedule);
        for rewards in &schedule {
            looped.round(rewards);
        }
        assert_eq!(batched.distribution(), looped.distribution());
        assert_eq!(batched.metrics(), looped.metrics());
        // The first batch starts from zero, so its delta is the total.
        assert_eq!(batch, looped.metrics());
        assert_eq!(batch.rounds, 30);
        // A second batch reports only its own counters.
        let again = batched.run_batch(&schedule[..5]);
        assert_eq!(again.rounds, 5);
        assert_eq!(batched.metrics().rounds, 35);
    }

    #[test]
    fn alive_count_tracks_crash_schedule() {
        let faults = FaultPlan::none().crash(0, 2).crash(1, 2).crash(2, 5);
        let mut net = Runtime::new(DistConfig::new(params(), 6).with_faults(faults), 8);
        // Nobody is dead in round 1.
        assert_eq!(net.alive_count(), 6);
        net.round(&[true, false]); // next round is 2: two crashes land
        assert_eq!(net.alive_count(), 4);
        net.round(&[true, false]);
        assert_eq!(net.alive_count(), 4);
        net.round(&[true, false]);
        net.round(&[true, false]); // next round is 5: third crash lands
        assert_eq!(net.alive_count(), 3);
    }

    #[test]
    fn leave_and_rejoin_track_alive_and_counters() {
        let faults = FaultPlan::none().leave(0, 3).leave(1, 3).rejoin(0, 6);
        let mut net = Runtime::new(DistConfig::new(params(), 8).with_faults(faults), 5);
        assert_eq!(net.alive_count(), 8);
        let rm = net.round(&[true, true]); // round 1
        assert_eq!((rm.joins, rm.leaves, rm.rejoins), (0, 0, 0));
        net.round(&[true, true]); // round 2: next round is 3
        assert_eq!(net.alive_count(), 6);
        let rm = net.round(&[true, true]); // round 3
        assert_eq!(rm.alive, 6);
        assert_eq!(rm.leaves, 2);
        net.round(&[true, true]); // round 4
        net.round(&[true, true]); // round 5: next round is 6
        assert_eq!(net.alive_count(), 7, "alive count grows back on rejoin");
        let rm = net.round(&[true, true]); // round 6
        assert_eq!(rm.alive, 7);
        assert_eq!(rm.rejoins, 1);
        assert_eq!(rm.bootstrapping, 1);
        let m = net.metrics();
        assert_eq!((m.joins, m.leaves, m.rejoins), (0, 2, 1));
    }

    #[test]
    fn flash_crowd_nodes_start_absent_and_bootstrap() {
        let faults = FaultPlan::none().flash_crowd(4, 5);
        let mut net = Runtime::new(DistConfig::new(params(), 12).with_faults(faults), 6);
        // The crowd has not arrived: 8 resident nodes committed.
        assert_eq!(net.counts().iter().sum::<u64>(), 8);
        assert_eq!(net.alive_count(), 8);
        for _ in 0..4 {
            net.round(&[true, true]);
        }
        assert_eq!(net.alive_count(), 12, "crowd lands for round 5");
        let rm = net.round(&[true, true]);
        assert_eq!(rm.alive, 12);
        assert_eq!(rm.joins, 4);
        assert_eq!(rm.bootstrapping, 4);
    }

    #[test]
    fn departed_nodes_answer_nothing() {
        // All peers but node 0 leave; node 0's queries can only go
        // unanswered, so every non-exploration round falls back.
        let params = Params::new(2, 0.9).unwrap();
        let mut faults = FaultPlan::none();
        for i in 1..10 {
            faults = faults.leave(i, 1);
        }
        let mut net = Runtime::new(DistConfig::new(params, 10).with_faults(faults), 3);
        for _ in 0..20 {
            let rm = net.round(&[true, true]);
            assert_eq!(rm.alive, 1);
        }
        assert_eq!(net.metrics().replies_received, 0);
    }

    #[test]
    fn rolling_restart_keeps_most_of_the_fleet_up() {
        let faults = FaultPlan::none().rolling_restart(4, 6);
        let mut net = Runtime::new(DistConfig::new(params(), 16).with_faults(faults), 9);
        let mut min_alive = usize::MAX;
        for _ in 0..40 {
            let rm = net.round(&[true, false]);
            min_alive = min_alive.min(rm.alive);
        }
        assert_eq!(min_alive, 12, "exactly one 4-node batch down at a time");
        assert_eq!(net.alive_count(), 16, "everyone is back at the end");
        let m = net.metrics();
        assert_eq!(m.leaves, 16);
        assert_eq!(m.rejoins, 16);
    }

    #[test]
    fn region_loss_blinks_a_slice_out_and_back() {
        let faults = FaultPlan::none().region_loss(2..6, 4, 9);
        let mut net = Runtime::new(DistConfig::new(params(), 10).with_faults(faults), 2);
        for t in 1..=12u64 {
            let rm = net.round(&[true, true]);
            let expect = if (4..9).contains(&t) { 6 } else { 10 };
            assert_eq!(rm.alive, expect, "round {t}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot rejoin")]
    fn rejoin_of_present_node_rejected() {
        let faults = FaultPlan::none().rejoin(0, 5);
        Runtime::new(DistConfig::new(params(), 4).with_faults(faults), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting membership")]
    fn conflicting_same_round_transitions_rejected() {
        let faults = FaultPlan::none().leave(2, 5).crash(2, 5);
        Runtime::new(DistConfig::new(params(), 4).with_faults(faults), 1);
    }

    #[test]
    #[should_panic(expected = "after its crash")]
    fn transitions_after_crash_rejected() {
        let faults = FaultPlan::none().crash(1, 3).leave(1, 8);
        Runtime::new(DistConfig::new(params(), 4).with_faults(faults), 1);
    }

    #[test]
    fn membership_events_for_out_of_range_nodes_are_ignored() {
        let faults = FaultPlan::none().leave(99, 2).flash_crowd(2, 3);
        let mut net = Runtime::new(DistConfig::new(params(), 8).with_faults(faults), 4);
        net.round(&[true, true]);
        assert_eq!(net.alive_count(), 6, "only the in-range crowd gap");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        DistConfig::new(params(), 0);
    }

    #[test]
    #[should_panic(expected = "rewards length")]
    fn reward_width_mismatch_rejected() {
        let mut net = Runtime::new(DistConfig::new(params(), 4), 1);
        net.round(&[true]);
    }
}
