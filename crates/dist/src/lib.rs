//! # sociolearn-dist
//!
//! The paper's engineering suggestion (Sections 1 and 6), realized: a
//! round-synchronous **message-passing** implementation of the
//! sample-then-adopt dynamics in which every node keeps **O(1)
//! protocol state** — just the option it committed to last round — and
//! the fleet as a whole performs the group-level multiplicative-weights
//! update.
//!
//! Each round, every alive node:
//!
//! 1. **Samples** an option: with probability `µ` it explores
//!    uniformly at random (no messages); otherwise it sends a *query*
//!    to a uniformly random peer, which *replies* with the option it
//!    committed to last round. A peer that sat out (or crashed, or
//!    whose link dropped the message) yields no reply, and the node
//!    retries with a fresh peer up to [`MAX_QUERY_RETRIES`] times
//!    before falling back to a uniform random option.
//! 2. **Adopts** the sampled option with probability `β` if the
//!    fresh quality signal for it is good and `α` otherwise — else it
//!    sits out this round.
//!
//! Conditioned on getting a reply, retrying uniform peers until one is
//! committed is exactly a uniform draw over last round's committed
//! nodes, i.e. a draw from the popularity distribution `Q^t` — so on a
//! clean network this process is the finite-population dynamics of
//! [`sociolearn_core::FinitePopulation`] (the cross-crate equivalence
//! tests check the two agree in law). Faults — message loss via
//! [`FaultPlan::with_drop_prob`] and scheduled crashes via
//! [`FaultPlan::crash`] — degrade the *copying* throughput and push
//! nodes toward the uniform fallback: learning slows but stays
//! well-defined.
//!
//! # Example
//!
//! ```
//! use sociolearn_core::{GroupDynamics, Params};
//! use sociolearn_dist::{DistConfig, FaultPlan, Runtime};
//!
//! let params = Params::new(3, 0.6)?;
//! let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(0, 40);
//! let mut net = Runtime::new(DistConfig::new(params, 64).with_faults(faults), 7);
//! for _ in 0..50 {
//!     let rm = net.round(&[true, false, false]);
//!     assert!(rm.committed <= rm.alive);
//! }
//! assert_eq!(net.distribution().len(), 3);
//! # Ok::<(), sociolearn_core::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sociolearn_core::{GroupDynamics, Params};

/// Protocol state kept by one node between rounds: the option it
/// committed to last round, or `None` if it sat out. There is no
/// weight vector and no history — this is the O(1) memory footprint
/// the paper's conclusion advertises.
type NodeState = Option<u32>;

/// Bytes of protocol state per node (the current option only).
pub const NODE_STATE_BYTES: usize = std::mem::size_of::<NodeState>();

// The O(1)-memory claim, enforced at compile time: a node's protocol
// state must stay a handful of bytes (no weight vector, no history).
const _: () = assert!(NODE_STATE_BYTES <= 8);

/// How many peers a node tries per round before giving up on copying
/// and falling back to uniform exploration. Bounds both the per-round
/// message cost (≤ `2 · MAX_QUERY_RETRIES · N`) and the tail latency
/// of a round.
pub const MAX_QUERY_RETRIES: u32 = 8;

/// Error building a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// The message-drop probability was outside `[0, 1]` (or NaN).
    DropProbOutOfRange(f64),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::DropProbOutOfRange(p) => {
                write!(f, "message drop probability must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic schedule of injected faults: independent per-message
/// loss and per-node crash rounds.
///
/// Built with [`FaultPlan::none`] or [`FaultPlan::with_drop_prob`] and
/// extended with the [`crash`](FaultPlan::crash) builder:
///
/// ```
/// use sociolearn_dist::FaultPlan;
///
/// let plan = FaultPlan::with_drop_prob(0.25)?.crash(3, 100).crash(4, 100);
/// assert_eq!(plan.drop_prob(), 0.25);
/// assert_eq!(plan.crash_round(3), Some(100));
/// assert_eq!(plan.crash_round(0), None);
/// # Ok::<(), sociolearn_dist::FaultPlanError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_prob: f64,
    /// `(node, round)` pairs; a node dies at the *start* of its crash
    /// round (the earliest round wins if scheduled twice).
    crashes: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// The inert plan: no message loss, no crashes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan dropping every message independently with probability
    /// `p` (queries and replies alike).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::DropProbOutOfRange`] if `p` is not a
    /// probability.
    pub fn with_drop_prob(p: f64) -> Result<Self, FaultPlanError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(FaultPlanError::DropProbOutOfRange(p));
        }
        Ok(FaultPlan {
            drop_prob: p,
            crashes: Vec::new(),
        })
    }

    /// Schedules `node` to crash at the start of `round` (1-based, the
    /// round numbering of [`Runtime::round`]). Crashed nodes send
    /// nothing, answer nothing, and drop out of the popularity
    /// distribution. If the node is already scheduled, the earlier
    /// round wins.
    pub fn crash(mut self, node: usize, round: u64) -> Self {
        if let Some(entry) = self.crashes.iter_mut().find(|(n, _)| *n == node) {
            entry.1 = entry.1.min(round);
        } else {
            self.crashes.push((node, round));
        }
        self
    }

    /// The per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The scheduled crash round of `node`, if any.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, r)| r)
    }

    /// Number of nodes with a scheduled crash.
    pub fn num_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Whether this plan injects no faults at all.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0 && self.crashes.is_empty()
    }
}

/// Configuration of a message-passing deployment: model parameters,
/// fleet size, and the fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DistConfig {
    params: Params,
    n: usize,
    faults: FaultPlan,
}

impl DistConfig {
    /// A fault-free deployment of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Params, n: usize) -> Self {
        assert!(n > 0, "deployment must have at least one node");
        DistConfig {
            params,
            n,
            faults: FaultPlan::none(),
        }
    }

    /// Attaches a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

/// What happened in one protocol round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// The 1-based round number.
    pub round: u64,
    /// Nodes alive during this round.
    pub alive: usize,
    /// Alive nodes that committed to an option this round.
    pub committed: usize,
    /// Queries sent this round (every attempt counts, delivered or
    /// not).
    pub queries_sent: u64,
    /// Replies that actually reached their querier this round.
    pub replies_received: u64,
    /// Nodes that exhausted their query retries and fell back to a
    /// uniform random option.
    pub fallbacks: u64,
    /// Nodes that explored uniformly by design (the `µ` branch; sends
    /// no messages and is not a fallback).
    pub explorations: u64,
}

/// Cumulative counters across all rounds of a [`Runtime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Total queries sent.
    pub queries_sent: u64,
    /// Total replies received.
    pub replies_received: u64,
    /// Total uniform fallbacks after exhausted retries.
    pub fallbacks: u64,
    /// Total deliberate `µ`-explorations.
    pub explorations: u64,
}

impl Metrics {
    /// Mean messages (queries sent + replies received) per round.
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.queries_sent + self.replies_received) as f64 / self.rounds as f64
        }
    }

    fn absorb(&mut self, rm: &RoundMetrics) {
        self.rounds += 1;
        self.queries_sent += rm.queries_sent;
        self.replies_received += rm.replies_received;
        self.fallbacks += rm.fallbacks;
        self.explorations += rm.explorations;
    }
}

/// The round-synchronous message-passing runtime: `N` nodes of
/// [`NODE_STATE_BYTES`] protocol state each, exchanging query/reply
/// gossip, with faults injected per the configured [`FaultPlan`].
///
/// All randomness — protocol choices *and* fault realizations — comes
/// from the seed passed to [`Runtime::new`], so runs are exactly
/// reproducible. The runtime also implements
/// [`GroupDynamics`](sociolearn_core::GroupDynamics) so the simulation
/// and experiment harnesses can drive it like any in-memory dynamics
/// (the caller-provided RNG is ignored in favor of the internal one).
#[derive(Debug, Clone)]
pub struct Runtime {
    cfg: DistConfig,
    rng: SmallRng,
    /// Last round's committed option per node (`None` = sat out or
    /// crashed). This vector *is* the fleet's protocol state.
    choices: Vec<NodeState>,
    /// Crash round per node, resolved from the fault plan.
    crash_at: Vec<Option<u64>>,
    /// Cached committed counts per option over alive nodes.
    counts: Vec<u64>,
    /// Rounds completed.
    round: u64,
    metrics: Metrics,
}

impl Runtime {
    /// Boots a fleet from the uniform initialization (node `i` starts
    /// committed to option `i mod m`, matching the in-memory dynamics)
    /// with all randomness derived from `seed`.
    pub fn new(cfg: DistConfig, seed: u64) -> Self {
        let m = cfg.params.num_options();
        let n = cfg.n;
        let choices: Vec<NodeState> = (0..n).map(|i| Some((i % m) as u32)).collect();
        let mut counts = vec![0u64; m];
        for &c in choices.iter().flatten() {
            counts[c as usize] += 1;
        }
        let crash_at = (0..n).map(|i| cfg.faults.crash_round(i)).collect();
        Runtime {
            rng: SmallRng::seed_from_u64(seed),
            choices,
            crash_at,
            counts,
            round: 0,
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Cumulative message/fallback counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Nodes that will be alive in round `round` (1-based).
    fn alive_in(&self, node: usize, round: u64) -> bool {
        self.crash_at[node].is_none_or(|r| round < r)
    }

    /// Executes one synchronous protocol round against the fresh
    /// reward signals, returning what happened.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    pub fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        let m = self.cfg.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        self.round += 1;
        let t = self.round;
        let mu = self.cfg.params.mu();
        let drop_prob = self.cfg.faults.drop_prob();
        let n = self.cfg.n;

        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };

        // The queryable snapshot: last round's commitments. Nodes that
        // are dead *this* round no longer answer queries.
        let prev = std::mem::take(&mut self.choices);
        let mut next: Vec<NodeState> = Vec::with_capacity(n);
        let mut counts = vec![0u64; m];

        for i in 0..n {
            if !self.alive_in(i, t) {
                next.push(None);
                continue;
            }
            rm.alive += 1;

            // Stage 1: sample an option to consider.
            let considered: u32 = if self.rng.gen_bool(mu) {
                rm.explorations += 1;
                self.rng.gen_range(0..m) as u32
            } else {
                let mut copied = None;
                if n > 1 {
                    for _ in 0..MAX_QUERY_RETRIES {
                        // Ask a uniformly random *other* node what it
                        // used last round.
                        let mut peer = self.rng.gen_range(0..n - 1);
                        if peer >= i {
                            peer += 1;
                        }
                        rm.queries_sent += 1;
                        // The query must survive the link...
                        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                            continue;
                        }
                        // ...reach a peer that is alive and has
                        // something to report...
                        if !self.alive_in(peer, t) {
                            continue;
                        }
                        let Some(option) = prev[peer] else { continue };
                        // ...and the reply must survive the link back.
                        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                            continue;
                        }
                        rm.replies_received += 1;
                        copied = Some(option);
                        break;
                    }
                }
                match copied {
                    Some(option) => option,
                    None => {
                        rm.fallbacks += 1;
                        self.rng.gen_range(0..m) as u32
                    }
                }
            };

            // Stage 2: probe the considered option's fresh signal and
            // adopt or sit out.
            let adopt_p = self
                .cfg
                .params
                .adopt_probability(rewards[considered as usize]);
            if self.rng.gen_bool(adopt_p) {
                next.push(Some(considered));
                counts[considered as usize] += 1;
                rm.committed += 1;
            } else {
                next.push(None);
            }
        }

        self.choices = next;
        self.counts = counts;
        self.metrics.absorb(&rm);
        rm
    }

    /// Committed counts per option over alive nodes (last round).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of nodes alive for the *next* round.
    pub fn alive_count(&self) -> usize {
        (0..self.cfg.n)
            .filter(|&i| self.alive_in(i, self.round + 1))
            .count()
    }
}

impl GroupDynamics for Runtime {
    fn num_options(&self) -> usize {
        self.cfg.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.cfg.params.num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    /// Advances one round. The message-passing runtime draws all of
    /// its randomness (protocol and faults) from the seed given to
    /// [`Runtime::new`]; the caller's RNG is ignored so that a
    /// deployment's behavior is a function of its own seed alone.
    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.round(rewards);
    }

    fn label(&self) -> &str {
        "social (message-passing)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(2, 0.65).unwrap()
    }

    #[test]
    fn initialization_matches_uniform_start() {
        let net = Runtime::new(DistConfig::new(Params::new(3, 0.6).unwrap(), 7), 1);
        assert_eq!(net.counts(), &[3, 2, 2]);
        let q = net.distribution();
        assert!((q[0] - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_network_converges_to_best_option() {
        let mut net = Runtime::new(DistConfig::new(params(), 500), 2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.round(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn round_metrics_are_internally_consistent() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap();
        let mut net = Runtime::new(DistConfig::new(params(), 64).with_faults(faults), 4);
        for _ in 0..50 {
            let rm = net.round(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.alive <= 64);
            assert!(rm.replies_received <= rm.queries_sent);
            assert!(rm.queries_sent <= 64 * MAX_QUERY_RETRIES as u64);
            let handled = rm.explorations + rm.fallbacks + rm.replies_received;
            assert!(
                handled >= rm.alive as u64,
                "every alive node resolves stage 1"
            );
        }
        let m = net.metrics();
        assert_eq!(m.rounds, 50);
        assert!(m.messages_per_round() > 0.0);
    }

    #[test]
    fn total_loss_means_no_replies() {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = Runtime::new(DistConfig::new(params(), 40).with_faults(faults), 5);
        for _ in 0..20 {
            net.round(&[true, true]);
        }
        assert_eq!(net.metrics().replies_received, 0);
        assert!(net.metrics().fallbacks > 0);
    }

    #[test]
    fn crashed_nodes_leave_the_distribution() {
        let faults = FaultPlan::none().crash(0, 1).crash(1, 1).crash(2, 1);
        let mut net = Runtime::new(DistConfig::new(params(), 4).with_faults(faults), 6);
        let rm = net.round(&[true, true]);
        assert_eq!(rm.alive, 1);
        assert_eq!(net.alive_count(), 1);
        // Only node 3 can be committed.
        assert!(net.counts().iter().sum::<u64>() <= 1);
    }

    #[test]
    fn single_node_fleet_never_queries() {
        let mut net = Runtime::new(DistConfig::new(params(), 1), 7);
        for _ in 0..30 {
            net.round(&[true, false]);
        }
        assert_eq!(net.metrics().queries_sent, 0);
        assert!(net.metrics().explorations + net.metrics().fallbacks > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net = Runtime::new(DistConfig::new(params(), 50).with_faults(faults), seed);
            let mut out = Vec::new();
            for t in 0..40 {
                net.round(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, net.metrics())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn step_ignores_external_rng_stream() {
        // Two different external RNGs must not change the trajectory.
        let drive = |ext_seed: u64| {
            let mut net = Runtime::new(DistConfig::new(params(), 80), 13);
            let mut ext = SmallRng::seed_from_u64(ext_seed);
            for _ in 0..20 {
                net.step(&[true, false], &mut ext);
            }
            net.distribution()
        };
        assert_eq!(drive(1), drive(999));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        DistConfig::new(params(), 0);
    }

    #[test]
    #[should_panic(expected = "rewards length")]
    fn reward_width_mismatch_rejected() {
        let mut net = Runtime::new(DistConfig::new(params(), 4), 1);
        net.round(&[true]);
    }
}
