//! # sociolearn-dist
//!
//! The paper's engineering suggestion (Sections 1 and 6), realized: a
//! round-synchronous **message-passing** implementation of the
//! sample-then-adopt dynamics in which every node keeps **O(1)
//! protocol state** — just the option it committed to last round — and
//! the fleet as a whole performs the group-level multiplicative-weights
//! update.
//!
//! Each round, every alive node:
//!
//! 1. **Samples** an option: with probability `µ` it explores
//!    uniformly at random (no messages); otherwise it sends a *query*
//!    to a uniformly random peer, which *replies* with the option it
//!    committed to last round. A peer that sat out (or crashed, or
//!    whose link dropped the message) yields no reply, and the node
//!    retries with a fresh peer up to [`MAX_QUERY_RETRIES`] times
//!    before falling back to a uniform random option.
//! 2. **Adopts** the sampled option with probability `β` if the
//!    fresh quality signal for it is good and `α` otherwise — else it
//!    sits out this round.
//!
//! Conditioned on getting a reply, retrying uniform peers until one is
//! committed is exactly a uniform draw over last round's committed
//! nodes, i.e. a draw from the popularity distribution `Q^t` — so on a
//! clean network this process is the finite-population dynamics of
//! [`sociolearn_core::FinitePopulation`] (the cross-crate equivalence
//! tests check the two agree in law). Faults — message loss via
//! [`FaultPlan::with_drop_prob`] and scheduled crashes via
//! [`FaultPlan::crash`] — degrade the *copying* throughput and push
//! nodes toward the uniform fallback: learning slows but stays
//! well-defined.
//!
//! # Three execution models
//!
//! The crate ships two runtime types realizing three execution models
//! of the same protocol, all O(1) protocol state per node and all
//! driving the same [`GroupDynamics`] interface (see also
//! [`ProtocolRuntime`] and [`ExecutionModel`]):
//!
//! * [`Runtime`] — **round-synchronous**: a global barrier between
//!   rounds; every query/reply exchange completes within the round it
//!   was issued. Allocation-free after construction (the per-node
//!   choice vector is double-buffered and the count vector reused),
//!   with [`ProtocolRuntime::run_batch`] reporting per-batch counter
//!   deltas. Use it for law-level experiments and for raw throughput.
//! * [`EventRuntime`] — **epoch-quiesced event-driven** (the default):
//!   a seeded discrete-event scheduler delivers query/reply messages
//!   with per-message latency jitter through bounded per-node FIFO
//!   queues; lost messages and unanswered queries are recovered by
//!   timeout-driven retries, and each epoch runs to quiescence before
//!   the next begins. Use it to model transport behavior — latency,
//!   queue backpressure — that a global barrier hides.
//! * [`EventRuntime::with_async_epochs`] — **fully asynchronous**: the
//!   quiescence barrier is gone. Every node advances its own local
//!   epoch the moment its reply (or timeout fallback) lands, epochs
//!   overlap across the fleet, queries carry the sender's epoch, and
//!   replies staler than a configurable [`StalenessBound`] are
//!   withheld (counted in [`RoundMetrics::stale_replies`]). Use it to
//!   study convergence under staleness à la Su–Zubeldia–Lynch
//!   (arXiv:1802.08159).
//!
//! Orthogonally to the execution model, the event-driven runtime can
//! run on either of two **schedulers**
//! ([`EventRuntime::with_scheduler`]): the default
//! [`SchedulerKind::SingleHeap`] (one global `BinaryHeap`), or the
//! [`SchedulerKind::ShardedCalendar`] engine — per-node-range shards
//! over O(1) [`Calendar`] queues with per-node RNG streams, built for
//! fleet scale. The two schedulers agree in law, and the sharded
//! engine's results are byte-identical across shard counts.
//!
//! # Example
//!
//! ```
//! use sociolearn_core::{GroupDynamics, Params};
//! use sociolearn_dist::{DistConfig, FaultPlan, Runtime};
//!
//! let params = Params::new(3, 0.6)?;
//! let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(0, 40);
//! let mut net = Runtime::new(DistConfig::new(params, 64).with_faults(faults), 7);
//! for _ in 0..50 {
//!     let rm = net.round(&[true, false, false]);
//!     assert!(rm.committed <= rm.alive);
//! }
//! assert_eq!(net.distribution().len(), 3);
//! # Ok::<(), sociolearn_core::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod event;

pub use calendar::{Calendar, Entry, SchedulerKind, RING_SLOTS};
pub use event::{
    EventRuntime, StalenessBound, ASYNC_EPOCH_PERIOD, DEFAULT_QUEUE_BOUND, MAX_MESSAGE_LATENCY,
};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sociolearn_core::{GroupDynamics, Params};

/// Protocol state kept by one node between rounds: the option it
/// committed to last round, packed into a single `u32`
/// ([`NO_CHOICE`] = sat out or crashed). There is no weight vector
/// and no history — this is the O(1) memory footprint the paper's
/// conclusion advertises, and packing it to four bytes halves the
/// fleet state arrays the hot loop walks at scale.
pub(crate) type NodeState = u32;

/// The [`NodeState`] sentinel for "sat out this round": no real
/// option id can collide with it (fleets have far fewer than
/// `u32::MAX` options).
pub(crate) const NO_CHOICE: NodeState = u32::MAX;

/// Bytes of protocol state per node (the current option only).
pub const NODE_STATE_BYTES: usize = std::mem::size_of::<NodeState>();

/// The uniform fleet initialization shared by every runtime and
/// scheduler: node `i` starts committed to option `i mod m`, matching
/// the in-memory dynamics. Kept in one place so the runtimes cannot
/// drift apart on their round-0 state.
pub(crate) fn uniform_start_choice(node: usize, m: usize) -> NodeState {
    (node % m) as NodeState
}

// The O(1)-memory claim, enforced at compile time: a node's protocol
// state must stay a handful of bytes (no weight vector, no history).
const _: () = assert!(NODE_STATE_BYTES <= 8);

/// How many peers a node tries per round before giving up on copying
/// and falling back to uniform exploration. Bounds both the per-round
/// message cost (≤ `2 · MAX_QUERY_RETRIES · N`) and the tail latency
/// of a round.
pub const MAX_QUERY_RETRIES: u32 = 8;

/// Error building a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// The message-drop probability was outside `[0, 1]` (or NaN).
    DropProbOutOfRange(f64),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::DropProbOutOfRange(p) => {
                write!(f, "message drop probability must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic schedule of injected faults: independent per-message
/// loss and per-node crash rounds.
///
/// Built with [`FaultPlan::none`] or [`FaultPlan::with_drop_prob`] and
/// extended with the [`crash`](FaultPlan::crash) builder:
///
/// ```
/// use sociolearn_dist::FaultPlan;
///
/// let plan = FaultPlan::with_drop_prob(0.25)?.crash(3, 100).crash(4, 100);
/// assert_eq!(plan.drop_prob(), 0.25);
/// assert_eq!(plan.crash_round(3), Some(100));
/// assert_eq!(plan.crash_round(0), None);
/// # Ok::<(), sociolearn_dist::FaultPlanError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_prob: f64,
    /// `(node, round)` pairs; a node dies at the *start* of its crash
    /// round (the earliest round wins if scheduled twice).
    crashes: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// The inert plan: no message loss, no crashes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan dropping every message independently with probability
    /// `p` (queries and replies alike).
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::DropProbOutOfRange`] if `p` is not a
    /// probability.
    pub fn with_drop_prob(p: f64) -> Result<Self, FaultPlanError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(FaultPlanError::DropProbOutOfRange(p));
        }
        Ok(FaultPlan {
            drop_prob: p,
            crashes: Vec::new(),
        })
    }

    /// Schedules `node` to crash at the start of `round` (1-based, the
    /// round numbering of [`Runtime::round`]). Crashed nodes send
    /// nothing, answer nothing, and drop out of the popularity
    /// distribution. If the node is already scheduled, the earlier
    /// round wins.
    pub fn crash(mut self, node: usize, round: u64) -> Self {
        if let Some(entry) = self.crashes.iter_mut().find(|(n, _)| *n == node) {
            entry.1 = entry.1.min(round);
        } else {
            self.crashes.push((node, round));
        }
        self
    }

    /// The per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The scheduled crash round of `node`, if any.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, r)| r)
    }

    /// Number of nodes with a scheduled crash.
    pub fn num_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Whether this plan injects no faults at all.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0 && self.crashes.is_empty()
    }
}

/// Configuration of a message-passing deployment: model parameters,
/// fleet size, and the fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct DistConfig {
    params: Params,
    n: usize,
    faults: FaultPlan,
}

impl DistConfig {
    /// A fault-free deployment of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Params, n: usize) -> Self {
        assert!(n > 0, "deployment must have at least one node");
        DistConfig {
            params,
            n,
            faults: FaultPlan::none(),
        }
    }

    /// Attaches a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

/// What happened in one protocol round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// The 1-based round number.
    pub round: u64,
    /// Nodes alive during this round.
    pub alive: usize,
    /// Alive nodes that committed to an option this round.
    pub committed: usize,
    /// Queries sent this round (every attempt counts, delivered or
    /// not).
    pub queries_sent: u64,
    /// Replies that actually reached their querier this round.
    pub replies_received: u64,
    /// Nodes that exhausted their query retries and fell back to a
    /// uniform random option.
    pub fallbacks: u64,
    /// Nodes that explored uniformly by design (the `µ` branch; sends
    /// no messages and is not a fallback).
    pub explorations: u64,
    /// Messages rejected by a full receiver queue (always 0 for the
    /// round-synchronous [`Runtime`], which has no queues; the
    /// event-driven [`EventRuntime`] counts backpressure drops here).
    pub queue_drops: u64,
    /// Replies withheld because the responder's information was more
    /// than the configured staleness bound behind the querier's local
    /// epoch. Always 0 outside fully-async execution, and 0 in async
    /// execution when the bound is [`StalenessBound::Unbounded`].
    pub stale_replies: u64,
}

/// Cumulative counters across all rounds of a [`Runtime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Total queries sent.
    pub queries_sent: u64,
    /// Total replies received.
    pub replies_received: u64,
    /// Total uniform fallbacks after exhausted retries.
    pub fallbacks: u64,
    /// Total deliberate `µ`-explorations.
    pub explorations: u64,
    /// Total messages rejected by full receiver queues.
    pub queue_drops: u64,
    /// Total replies withheld as too stale (fully-async mode only).
    pub stale_replies: u64,
}

impl Metrics {
    /// Mean messages (queries sent + replies received) per round.
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.queries_sent + self.replies_received) as f64 / self.rounds as f64
        }
    }

    /// The counters accumulated *since* an earlier snapshot of the
    /// same runtime's metrics — what [`ProtocolRuntime::run_batch`]
    /// returns for its batch.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds - earlier.rounds,
            queries_sent: self.queries_sent - earlier.queries_sent,
            replies_received: self.replies_received - earlier.replies_received,
            fallbacks: self.fallbacks - earlier.fallbacks,
            explorations: self.explorations - earlier.explorations,
            queue_drops: self.queue_drops - earlier.queue_drops,
            stale_replies: self.stale_replies - earlier.stale_replies,
        }
    }

    pub(crate) fn absorb(&mut self, rm: &RoundMetrics) {
        self.rounds += 1;
        self.queries_sent += rm.queries_sent;
        self.replies_received += rm.replies_received;
        self.fallbacks += rm.fallbacks;
        self.explorations += rm.explorations;
        self.queue_drops += rm.queue_drops;
        self.stale_replies += rm.stale_replies;
    }
}

/// A [`FaultPlan`]'s crash schedule resolved against a concrete fleet,
/// with a running alive counter so `alive_count` is O(1) instead of an
/// O(N) rescan. Shared by both runtimes.
#[derive(Debug, Clone)]
pub(crate) struct CrashTracker {
    /// Crash round per node, resolved from the fault plan.
    crash_at: Vec<Option<u64>>,
    /// Every scheduled crash round, sorted ascending.
    crash_rounds: Vec<u64>,
    /// Prefix of `crash_rounds` already subtracted from `alive`.
    applied: usize,
    /// Nodes alive in the round last passed to `advance_to`.
    alive: usize,
}

impl CrashTracker {
    pub(crate) fn new(faults: &FaultPlan, n: usize) -> Self {
        let crash_at: Vec<Option<u64>> = (0..n).map(|i| faults.crash_round(i)).collect();
        let mut crash_rounds: Vec<u64> = crash_at.iter().flatten().copied().collect();
        crash_rounds.sort_unstable();
        let mut tracker = CrashTracker {
            crash_at,
            crash_rounds,
            applied: 0,
            alive: n,
        };
        tracker.advance_to(1);
        tracker
    }

    /// Whether `node` is alive during `round` (1-based).
    pub(crate) fn alive_in(&self, node: usize, round: u64) -> bool {
        self.crash_at[node].is_none_or(|r| round < r)
    }

    /// Whether any crash is scheduled at all. Lets the hot loops skip
    /// the per-node `crash_at` lookups (a cache miss per random peer
    /// at fleet scale) on the common crash-free plans.
    pub(crate) fn any_scheduled(&self) -> bool {
        !self.crash_rounds.is_empty()
    }

    /// Rolls the counter forward so [`alive`](Self::alive) reports the
    /// population of `round`. Rounds must advance monotonically.
    pub(crate) fn advance_to(&mut self, round: u64) {
        while self.applied < self.crash_rounds.len() && self.crash_rounds[self.applied] <= round {
            self.applied += 1;
            self.alive -= 1;
        }
    }

    /// Nodes alive in the round last advanced to, in O(1).
    pub(crate) fn alive(&self) -> usize {
        self.alive
    }
}

/// The round-synchronous message-passing runtime: `N` nodes of
/// [`NODE_STATE_BYTES`] protocol state each, exchanging query/reply
/// gossip, with faults injected per the configured [`FaultPlan`].
///
/// All randomness — protocol choices *and* fault realizations — comes
/// from the seed passed to [`Runtime::new`], so runs are exactly
/// reproducible. The runtime also implements
/// [`GroupDynamics`] so the simulation
/// and experiment harnesses can drive it like any in-memory dynamics
/// (the caller-provided RNG is ignored in favor of the internal one).
///
/// After construction the hot path allocates nothing: [`Runtime::round`]
/// double-buffers the per-node choice vector and reuses the per-option
/// count buffer. [`ProtocolRuntime::run_batch`] drives a whole reward
/// schedule and reports the batch's counter deltas.
#[derive(Debug, Clone)]
pub struct Runtime {
    cfg: DistConfig,
    rng: SmallRng,
    /// Last round's committed option per node ([`NO_CHOICE`] = sat
    /// out or crashed). This vector *is* the fleet's protocol state.
    choices: Vec<NodeState>,
    /// The double buffer: swapped with `choices` at the top of each
    /// round, after which it holds the previous round's snapshot
    /// (what peers answer queries from) while `choices` is rewritten
    /// in place.
    back: Vec<NodeState>,
    /// Crash schedule + O(1) alive counter.
    crashes: CrashTracker,
    /// Cached committed counts per option over alive nodes.
    counts: Vec<u64>,
    /// Rounds completed.
    round: u64,
    metrics: Metrics,
}

impl Runtime {
    /// Boots a fleet from the uniform initialization (node `i` starts
    /// committed to option `i mod m`, matching the in-memory dynamics)
    /// with all randomness derived from `seed`.
    pub fn new(cfg: DistConfig, seed: u64) -> Self {
        let m = cfg.params.num_options();
        let n = cfg.n;
        let choices: Vec<NodeState> = (0..n).map(|i| uniform_start_choice(i, m)).collect();
        let mut counts = vec![0u64; m];
        for &c in &choices {
            counts[c as usize] += 1;
        }
        let crashes = CrashTracker::new(&cfg.faults, n);
        Runtime {
            rng: SmallRng::seed_from_u64(seed),
            choices,
            back: vec![NO_CHOICE; n],
            crashes,
            counts,
            round: 0,
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Cumulative message/fallback counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Executes one synchronous protocol round against the fresh
    /// reward signals, returning what happened.
    ///
    /// Allocation-free: the previous round's choices move into the
    /// back buffer by a pointer swap, this round's choices are written
    /// in place, and the count buffer is zeroed and reused.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    pub fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        let m = self.cfg.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        self.round += 1;
        let t = self.round;
        let mu = self.cfg.params.mu();
        let drop_prob = self.cfg.faults.drop_prob();
        let n = self.cfg.n;

        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };

        // The queryable snapshot: last round's commitments land in
        // `back` by a pointer swap, and `choices` (now holding the
        // stale buffer from two rounds ago) is overwritten in place.
        // Nodes that are dead *this* round no longer answer queries.
        std::mem::swap(&mut self.choices, &mut self.back);
        self.counts.fill(0);
        let has_crashes = self.crashes.any_scheduled();

        for i in 0..n {
            if has_crashes && !self.crashes.alive_in(i, t) {
                self.choices[i] = NO_CHOICE;
                continue;
            }
            rm.alive += 1;

            // Stage 1: sample an option to consider.
            let considered: u32 = if self.rng.gen_bool(mu) {
                rm.explorations += 1;
                self.rng.gen_range(0..m) as u32
            } else {
                let mut copied = NO_CHOICE;
                if n > 1 {
                    for _ in 0..MAX_QUERY_RETRIES {
                        // Ask a uniformly random *other* node what it
                        // used last round.
                        let mut peer = self.rng.gen_range(0..n - 1);
                        if peer >= i {
                            peer += 1;
                        }
                        rm.queries_sent += 1;
                        // The query must survive the link...
                        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                            continue;
                        }
                        // ...reach a peer that is alive and has
                        // something to report...
                        if has_crashes && !self.crashes.alive_in(peer, t) {
                            continue;
                        }
                        let option = self.back[peer];
                        if option == NO_CHOICE {
                            continue;
                        }
                        // ...and the reply must survive the link back.
                        if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                            continue;
                        }
                        rm.replies_received += 1;
                        copied = option;
                        break;
                    }
                }
                if copied == NO_CHOICE {
                    rm.fallbacks += 1;
                    self.rng.gen_range(0..m) as u32
                } else {
                    copied
                }
            };

            // Stage 2: probe the considered option's fresh signal and
            // adopt or sit out.
            let adopt_p = self
                .cfg
                .params
                .adopt_probability(rewards[considered as usize]);
            if self.rng.gen_bool(adopt_p) {
                self.choices[i] = considered;
                self.counts[considered as usize] += 1;
                rm.committed += 1;
            } else {
                self.choices[i] = NO_CHOICE;
            }
        }

        debug_assert_eq!(rm.alive, self.crashes.alive(), "alive counter drifted");
        self.crashes.advance_to(t + 1);
        self.metrics.absorb(&rm);
        rm
    }

    /// Committed counts per option over alive nodes (last round).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of nodes alive for the *next* round, in O(1) (a running
    /// counter maintained as scheduled crashes take effect).
    pub fn alive_count(&self) -> usize {
        self.crashes.alive()
    }
}

impl GroupDynamics for Runtime {
    fn num_options(&self) -> usize {
        self.cfg.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.cfg.params.num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    /// Advances one round. The message-passing runtime draws all of
    /// its randomness (protocol and faults) from the seed given to
    /// [`Runtime::new`]; the caller's RNG is ignored so that a
    /// deployment's behavior is a function of its own seed alone.
    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.round(rewards);
    }

    fn label(&self) -> &str {
        "social (message-passing)"
    }
}

/// How a [`ProtocolRuntime`] executes the protocol in (virtual) time —
/// the axis the runtimes differ on, surfaced through the shared trait
/// so harnesses can label and select execution models generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionModel {
    /// A global barrier between rounds: every query/reply exchange
    /// completes within the round it was issued ([`Runtime`]).
    RoundSync,
    /// A discrete-event scheduler with jittered wakes and latencies,
    /// but each epoch still runs to quiescence before the next starts
    /// (the default [`EventRuntime`]).
    EpochQuiesced,
    /// No barrier at all: every node advances its own local epoch the
    /// moment its reply or timeout fallback lands, and epochs overlap
    /// across the fleet ([`EventRuntime::with_async_epochs`]).
    FullyAsync,
}

impl ExecutionModel {
    /// Short human-readable label, stable across releases (used in
    /// experiment tables and CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            ExecutionModel::RoundSync => "round-sync",
            ExecutionModel::EpochQuiesced => "epoch-quiesced",
            ExecutionModel::FullyAsync => "fully-async",
        }
    }
}

impl std::fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The driving surface shared by the crate's two runtimes, so
/// harnesses, experiments, and examples can swap the round-synchronous
/// [`Runtime`] and the event-driven [`EventRuntime`] (epoch-quiesced
/// or fully-async) interchangeably: step the protocol with fresh
/// rewards, read the per-round and cumulative counters, and watch the
/// fleet shrink as crashes land.
///
/// Both implementors also implement
/// [`GroupDynamics`] (a supertrait
/// here), so anything driving the abstract dynamics — `run_one`,
/// regret trackers, the sweep machinery — works on them unchanged.
pub trait ProtocolRuntime: GroupDynamics {
    /// Advances one protocol round (one scheduler epoch for the
    /// event-driven runtime) against fresh reward signals.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    fn round(&mut self, rewards: &[bool]) -> RoundMetrics;

    /// Cumulative counters across all rounds so far.
    fn metrics(&self) -> Metrics;

    /// Fleet size `N`.
    fn num_nodes(&self) -> usize;

    /// Nodes alive for the next round, in O(1).
    fn alive_count(&self) -> usize;

    /// Rounds completed so far.
    fn rounds_completed(&self) -> u64;

    /// Which execution model this runtime realizes — round-sync,
    /// epoch-quiesced event-driven, or fully asynchronous.
    fn execution_model(&self) -> ExecutionModel;

    /// Runs one round per entry of `rewards_per_round`, returning the
    /// [`Metrics`] accumulated over just this batch (a
    /// [`Metrics::since`] delta) — the convenient form when only
    /// aggregate counters matter (sweeps, benchmarks, long fault-free
    /// stretches).
    ///
    /// # Panics
    ///
    /// Panics if any reward row's length differs from the number of
    /// options.
    fn run_batch<S: AsRef<[bool]>>(&mut self, rewards_per_round: &[S]) -> Metrics
    where
        Self: Sized,
    {
        let before = self.metrics();
        for rewards in rewards_per_round {
            self.round(rewards.as_ref());
        }
        self.metrics().since(&before)
    }
}

impl ProtocolRuntime for Runtime {
    fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        Runtime::round(self, rewards)
    }

    fn metrics(&self) -> Metrics {
        Runtime::metrics(self)
    }

    fn num_nodes(&self) -> usize {
        Runtime::num_nodes(self)
    }

    fn alive_count(&self) -> usize {
        Runtime::alive_count(self)
    }

    fn rounds_completed(&self) -> u64 {
        Runtime::rounds_completed(self)
    }

    fn execution_model(&self) -> ExecutionModel {
        ExecutionModel::RoundSync
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(2, 0.65).unwrap()
    }

    #[test]
    fn initialization_matches_uniform_start() {
        let net = Runtime::new(DistConfig::new(Params::new(3, 0.6).unwrap(), 7), 1);
        assert_eq!(net.counts(), &[3, 2, 2]);
        let q = net.distribution();
        assert!((q[0] - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_network_converges_to_best_option() {
        let mut net = Runtime::new(DistConfig::new(params(), 500), 2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.round(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn round_metrics_are_internally_consistent() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap();
        let mut net = Runtime::new(DistConfig::new(params(), 64).with_faults(faults), 4);
        for _ in 0..50 {
            let rm = net.round(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.alive <= 64);
            assert!(rm.replies_received <= rm.queries_sent);
            assert!(rm.queries_sent <= 64 * MAX_QUERY_RETRIES as u64);
            let handled = rm.explorations + rm.fallbacks + rm.replies_received;
            assert!(
                handled >= rm.alive as u64,
                "every alive node resolves stage 1"
            );
        }
        let m = net.metrics();
        assert_eq!(m.rounds, 50);
        assert!(m.messages_per_round() > 0.0);
    }

    #[test]
    fn total_loss_means_no_replies() {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = Runtime::new(DistConfig::new(params(), 40).with_faults(faults), 5);
        for _ in 0..20 {
            net.round(&[true, true]);
        }
        assert_eq!(net.metrics().replies_received, 0);
        assert!(net.metrics().fallbacks > 0);
    }

    #[test]
    fn crashed_nodes_leave_the_distribution() {
        let faults = FaultPlan::none().crash(0, 1).crash(1, 1).crash(2, 1);
        let mut net = Runtime::new(DistConfig::new(params(), 4).with_faults(faults), 6);
        let rm = net.round(&[true, true]);
        assert_eq!(rm.alive, 1);
        assert_eq!(net.alive_count(), 1);
        // Only node 3 can be committed.
        assert!(net.counts().iter().sum::<u64>() <= 1);
    }

    #[test]
    fn single_node_fleet_never_queries() {
        let mut net = Runtime::new(DistConfig::new(params(), 1), 7);
        for _ in 0..30 {
            net.round(&[true, false]);
        }
        assert_eq!(net.metrics().queries_sent, 0);
        assert!(net.metrics().explorations + net.metrics().fallbacks > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net = Runtime::new(DistConfig::new(params(), 50).with_faults(faults), seed);
            let mut out = Vec::new();
            for t in 0..40 {
                net.round(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, net.metrics())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn step_ignores_external_rng_stream() {
        // Two different external RNGs must not change the trajectory.
        let drive = |ext_seed: u64| {
            let mut net = Runtime::new(DistConfig::new(params(), 80), 13);
            let mut ext = SmallRng::seed_from_u64(ext_seed);
            for _ in 0..20 {
                net.step(&[true, false], &mut ext);
            }
            net.distribution()
        };
        assert_eq!(drive(1), drive(999));
    }

    #[test]
    fn run_batch_matches_round_loop() {
        let schedule: Vec<Vec<bool>> = (0..30).map(|t| vec![t % 2 == 0, t % 3 == 0]).collect();
        let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(1, 7);
        let mut batched =
            Runtime::new(DistConfig::new(params(), 40).with_faults(faults.clone()), 9);
        let mut looped = Runtime::new(DistConfig::new(params(), 40).with_faults(faults), 9);
        let batch = batched.run_batch(&schedule);
        for rewards in &schedule {
            looped.round(rewards);
        }
        assert_eq!(batched.distribution(), looped.distribution());
        assert_eq!(batched.metrics(), looped.metrics());
        // The first batch starts from zero, so its delta is the total.
        assert_eq!(batch, looped.metrics());
        assert_eq!(batch.rounds, 30);
        // A second batch reports only its own counters.
        let again = batched.run_batch(&schedule[..5]);
        assert_eq!(again.rounds, 5);
        assert_eq!(batched.metrics().rounds, 35);
    }

    #[test]
    fn alive_count_tracks_crash_schedule() {
        let faults = FaultPlan::none().crash(0, 2).crash(1, 2).crash(2, 5);
        let mut net = Runtime::new(DistConfig::new(params(), 6).with_faults(faults), 8);
        // Nobody is dead in round 1.
        assert_eq!(net.alive_count(), 6);
        net.round(&[true, false]); // next round is 2: two crashes land
        assert_eq!(net.alive_count(), 4);
        net.round(&[true, false]);
        assert_eq!(net.alive_count(), 4);
        net.round(&[true, false]);
        net.round(&[true, false]); // next round is 5: third crash lands
        assert_eq!(net.alive_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        DistConfig::new(params(), 0);
    }

    #[test]
    #[should_panic(expected = "rewards length")]
    fn reward_width_mismatch_rejected() {
        let mut net = Runtime::new(DistConfig::new(params(), 4), 1);
        net.round(&[true]);
    }
}
