//! The sharded calendar-queue scheduler: the [`EventRuntime`]'s
//! scalable execution engine, selected with
//! [`SchedulerKind::ShardedCalendar`].
//!
//! [`EventRuntime`]: crate::EventRuntime
//!
//! # Why
//!
//! The default single-heap scheduler keys every pending event in one
//! `BinaryHeap`, so each push/pop costs `O(log E)` comparisons over a
//! heap that holds several events per node — at fleet scale the sift
//! paths are cache-miss chains through tens of megabytes, and they
//! dominate the tick. This module replaces the heap with a **calendar
//! queue**: events are bucketed by virtual-time slot in a fixed ring
//! ([`RING_SLOTS`] wide), so enqueue is an `O(1)` append and dequeue
//! is a linear walk of one bucket. On top of the calendar, the fleet
//! is **sharded** by destination-node range: each shard owns the
//! per-node state of a contiguous node block and advances its own
//! local event stream one time window at a time, handing cross-shard
//! messages to per-shard-pair mailboxes that are drained at window
//! boundaries. Shards run on a persistent
//! [`sociolearn_sim::WorkerPool`] when a window is dense enough to pay
//! for the fan-out, and fall back to an in-thread sweep (with
//! identical results) when it is not.
//!
//! # Lookahead: multi-core execution in K-window blocks
//!
//! The protocol's message-latency floor is the classic
//! conservative-PDES *lookahead*: every `QueryArrive`/`ReplyArrive`
//! travels at least one tick, so shards can safely advance more than
//! one window between synchronizations. With
//! [`EventRuntime::with_lookahead(K)`] the virtual-time axis is cut
//! into blocks of K windows at absolute multiples of K, each lane
//! processes a whole block from its own calendar with **no**
//! cross-shard synchronization inside it, and the per-shard-pair
//! mailboxes are drained once at the block barrier. What makes that
//! sound is a *message due-time adjustment*: a message sent at `now`
//! with latency `l` becomes due at `max(now + l, block_end(now))` —
//! never inside the sender's current block. The adjustment applies to
//! every message, same-shard or cross-shard, so it is a property of
//! the *trajectory*, not of the partition: for a fixed K the results
//! stay byte-identical across shard counts and thread counts. At the
//! default `K = 1`, `block_end(now) = now + 1 <= now + l`, so the
//! adjustment is the identity and existing seeds replay bit-for-bit.
//! `K` is capped at [`MAX_LOOKAHEAD`]`= MAX_MESSAGE_LATENCY`, which
//! keeps two invariants intact: no adjusted delay exceeds the
//! protocol's existing latency ceiling (so the calendar ring horizon
//! is unchanged and `Calendar::push` cannot hit its ring-collision
//! panic), and a query round trip still always beats its retry
//! timeout (`2·max(l, K) + 2·DELIVER_DELAY < RETRY_TIMEOUT`), so the
//! retry/fallback structure of the law is preserved. Lanes run on a
//! persistent worker-thread pool ([`with_threads`]) — each lane's
//! block is a pure function of the lane and the shared tick context,
//! so the thread count only changes where work runs, never what it
//! computes.
//!
//! [`EventRuntime::with_lookahead(K)`]: crate::EventRuntime::with_lookahead
//! [`with_threads`]: crate::EventRuntime::with_threads
//!
//! # Determinism contract
//!
//! The engine is deterministic, and — stronger — its behavior is a
//! function of the seed alone, **independent of the shard count**:
//!
//! * Every event carries an intrinsic `(time, source node, per-source
//!   sequence number)` key. Within a window, a shard processes its due
//!   events in ascending `(src, seq)` order, so the total order within
//!   each window is fixed no matter which mailbox an event travelled
//!   through or how many shards exist.
//! * Randomness comes from **per-node RNG streams** split from the
//!   root seed (one `SmallRng` per node, seeded via a SplitMix64
//!   derivation). A node draws only from its own stream, so regrouping
//!   nodes into different shard counts cannot reorder anyone's draws.
//! * Every event the protocol schedules has a strictly positive
//!   delay, and under lookahead K every *message* is additionally
//!   deferred to the sender's block boundary, so nothing produced
//!   inside a K-window block can be due in that same block —
//!   cross-shard mailboxes drained at the barrier always deliver in
//!   time, and shards never need to peek at each other mid-block.
//!
//! Together these give the invariant the proptest suite pins down:
//! for a fixed seed, ticks produce **byte-identical metrics and
//! distributions for any shard count**, and the law of the process
//! matches the single-heap scheduler (KS-tested in
//! `tests/equivalence.rs`).
//!
//! # Membership churn and online rebalancing
//!
//! Scripted joins, leaves, and rejoins (the [`FaultPlan`] membership
//! builders) land at tick boundaries, mirroring the single-heap
//! scheduler decision for decision: a departing node's commitment
//! leaves the lane's popularity counts and its pending attempt is
//! wiped; a (re)joining node enters bootstrapping and re-learns a
//! commitment through the ordinary query/reply protocol — no state
//! transfer, no new message types. Because churn skews the load of a
//! fixed node→shard split, the engine also **rebalances ownership
//! online**: on any tick whose boundary carries membership
//! transitions, lane boundaries are recomputed to even out *present*
//! nodes and each migrating node's full state (choices, inbox, local
//! epoch, RNG stream, pending calendar entries) moves to its new
//! lane. The move happens only between windows — when cross-shard
//! mailboxes are provably empty — and the same per-node-stream +
//! intrinsic-key argument that makes the partition invisible to the
//! protocol makes rebalancing semantically a no-op: byte-identity
//! across shard counts holds even while ownership shifts under churn.
//!
//! [`FaultPlan`]: crate::FaultPlan

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sociolearn_core::Params;
use sociolearn_sim::WorkerPool;

use crate::cast::index_u32;
use crate::event::{
    Event, Mode, Msg, Pending, StalenessBound, ASYNC_EPOCH_PERIOD, ASYNC_WAKE_JITTER,
    DELIVER_DELAY, MAX_MESSAGE_LATENCY, RETRY_TIMEOUT, WAKE_SPREAD,
};
use crate::soa::{AlignedU32s, AlignedU64s};
use crate::{
    DistConfig, MembershipTracker, NodeState, RoundMetrics, Transition, MAX_QUERY_RETRIES,
    NO_CHOICE,
};

/// Number of time slots in a [`Calendar`] ring. A power of two, and
/// strictly larger than the longest delay the protocol ever schedules
/// (the async epoch period plus its wake jitter), so at most one
/// distinct virtual time can occupy a slot at any moment.
pub const RING_SLOTS: usize = 128;

// The ring must cover the longest scheduling delay: the async cadence
// (period + jitter), the initial wake spread, and a retry timeout all
// have to fit strictly inside one rotation.
const _: () = assert!(ASYNC_EPOCH_PERIOD + ASYNC_WAKE_JITTER < RING_SLOTS as u64);
const _: () = assert!(WAKE_SPREAD < RING_SLOTS as u64);
const _: () = assert!(RETRY_TIMEOUT < RING_SLOTS as u64);

/// Fewest due events in a block before the engine fans the shards out
/// on the thread pool; sparser blocks are swept in-thread (the two
/// paths produce identical results — this is a cost knob, not a
/// semantic one). Overridable per runtime via
/// [`EventRuntime::with_parallel_threshold`](crate::EventRuntime::with_parallel_threshold).
pub(crate) const PARALLEL_WINDOW_EVENTS: usize = 2_048;

/// Largest accepted lookahead `K` for
/// [`EventRuntime::with_lookahead`](crate::EventRuntime::with_lookahead).
///
/// Tied to [`MAX_MESSAGE_LATENCY`]: the lookahead adjustment defers a
/// message due at `now + l` to at most `now + max(l, K)`, so with
/// `K <= MAX_MESSAGE_LATENCY` no event's delay ever exceeds the
/// protocol's existing latency ceiling. That is the ring-horizon
/// guard (a K-window block can never push an entry beyond one
/// [`RING_SLOTS`] rotation, so `Calendar::push`'s collision panic is
/// unreachable) and the law guard (a query round trip still beats its
/// retry timeout — checked below).
pub const MAX_LOOKAHEAD: u64 = MAX_MESSAGE_LATENCY;

// The lookahead cap may not extend the scheduling horizon beyond the
// latency ceiling already covered by the ring asserts above...
const _: () = assert!(MAX_LOOKAHEAD <= MAX_MESSAGE_LATENCY);
// ...and a maximally-deferred query + reply round trip (each leg at
// most max(MAX_MESSAGE_LATENCY, MAX_LOOKAHEAD) = MAX_MESSAGE_LATENCY,
// plus an inbox Deliver hop per leg) must still preempt the sender's
// retry timeout, or lookahead would change the retry/fallback law.
const _: () = assert!(2 * MAX_MESSAGE_LATENCY + 2 * DELIVER_DELAY < RETRY_TIMEOUT);

/// The absolute-time end of the lookahead block containing `now`:
/// the next multiple of `lookahead` strictly after `now`.
#[inline]
fn block_end_of(now: u64, lookahead: u64) -> u64 {
    (now / lookahead + 1) * lookahead
}

/// The due time of a message sent at `now` with `latency`: deferred
/// to the sender's block boundary under lookahead (the identity when
/// `lookahead == 1`, since `latency >= 1`). Partition-independent —
/// it applies whether or not the message crosses shards — which is
/// what keeps trajectories byte-identical across shard counts.
#[inline]
fn msg_at(now: u64, latency: u64, ctx: &Ctx) -> u64 {
    (now + latency).max(block_end_of(now, ctx.lookahead))
}

/// Resolves the `threads` knob: `0` means "ask the OS", anything else
/// is taken literally. Thread count never affects results — only how
/// many cores sweep the lanes of a dense block.
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Which scheduler drives the [`EventRuntime`](crate::EventRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The original scheduler: one global `BinaryHeap` keyed
    /// `(time, seq)`, one global RNG stream. Exactly the pre-sharding
    /// behavior, kept so every test can run both schedulers.
    SingleHeap,
    /// The sharded calendar-queue engine of this module. `shards` is
    /// clamped to the fleet size; randomness is split into per-node
    /// streams, so results are byte-identical across shard counts.
    ShardedCalendar {
        /// Number of destination-node-range shards (at least 1).
        shards: usize,
    },
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::SingleHeap => f.write_str("single-heap"),
            SchedulerKind::ShardedCalendar { shards } => {
                write!(f, "sharded-calendar({shards})")
            }
        }
    }
}

/// One scheduled item in a [`Calendar`]: the payload plus the
/// intrinsic ordering key `(at, src, seq)` — virtual time, source
/// node, and the source's own monotone sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<E> {
    /// Virtual time the entry is due.
    pub at: u64,
    /// The node (or producer id) that scheduled the entry.
    pub src: u32,
    /// The producer's own sequence number — FIFO tie-break for entries
    /// of the same `(at, src)`.
    pub seq: u32,
    /// The scheduled payload.
    pub payload: E,
}

impl<E> Entry<E> {
    /// The packed `(src, seq)` tie-break key: within one time slot,
    /// entries pop in ascending order of this key.
    fn order_key(&self) -> u64 {
        (u64::from(self.src) << 32) | u64::from(self.seq)
    }
}

/// A fixed-ring calendar queue: `O(1)` amortized enqueue, bucket-walk
/// dequeue, deterministic `(time, src, seq)` pop order.
///
/// The caller must keep every pending entry within one ring rotation
/// ([`RING_SLOTS`] virtual-time units) of the earliest pending entry —
/// the event runtime guarantees this by construction (all protocol
/// delays are shorter than the ring), and `push` checks it in debug
/// builds.
///
/// # Example
///
/// ```
/// use sociolearn_dist::{Calendar, Entry};
///
/// let mut cal = Calendar::new();
/// cal.push(Entry { at: 3, src: 1, seq: 0, payload: "b" });
/// cal.push(Entry { at: 1, src: 7, seq: 0, payload: "a" });
/// assert_eq!(cal.next_time(0), Some(1));
/// let due = cal.take_due(1);
/// assert_eq!(due[0].payload, "a");
/// assert_eq!(cal.next_time(2), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    /// `RING_SLOTS` buckets indexed by `time % RING_SLOTS`; each holds
    /// entries for exactly one virtual time at any moment.
    buckets: Vec<Vec<Entry<E>>>,
    /// Recycled bucket storage, so steady-state windows allocate
    /// nothing.
    spare: Vec<Entry<E>>,
    /// Total pending entries.
    len: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        Calendar {
            buckets: (0..RING_SLOTS).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Pending entries across all slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `entry`. `O(1)`: one append to the slot
    /// `entry.at % RING_SLOTS`.
    ///
    /// # Panics
    ///
    /// Panics if `entry.at` collides with a different virtual time
    /// already occupying its ring slot — i.e. the caller violated the
    /// one-rotation window contract. A silent collision would corrupt
    /// the queue (mixed-time buckets, misreported `next_time`), so the
    /// single-comparison guard stays on in release builds.
    pub fn push(&mut self, entry: Entry<E>) {
        let slot = (entry.at as usize) & (RING_SLOTS - 1);
        let bucket = &mut self.buckets[slot];
        assert!(
            bucket.first().is_none_or(|e| e.at == entry.at),
            "calendar ring collision: slot {slot} holds t={} but got t={}",
            bucket.first().map_or(0, |e| e.at),
            entry.at,
        );
        bucket.push(entry);
        self.len += 1;
    }

    /// Entries due exactly at `now`, without removing them.
    pub fn due_len(&self, now: u64) -> usize {
        let bucket = &self.buckets[(now as usize) & (RING_SLOTS - 1)];
        if bucket.first().is_some_and(|e| e.at == now) {
            bucket.len()
        } else {
            0
        }
    }

    /// Removes and returns every entry due at `now`, sorted by the
    /// deterministic `(src, seq)` tie-break. Returns an empty vector
    /// when nothing is due. Hand the vector back through
    /// [`recycle`](Calendar::recycle) to keep the queue
    /// allocation-free in steady state.
    pub fn take_due(&mut self, now: u64) -> Vec<Entry<E>> {
        let slot = (now as usize) & (RING_SLOTS - 1);
        if self.buckets[slot].first().is_none_or(|e| e.at != now) {
            return Vec::new();
        }
        let mut due = std::mem::replace(&mut self.buckets[slot], std::mem::take(&mut self.spare));
        self.len -= due.len();
        due.sort_unstable_by_key(Entry::order_key);
        due
    }

    /// Returns a drained vector from [`take_due`](Calendar::take_due)
    /// so its capacity is reused by a later window.
    pub fn recycle(&mut self, mut bucket: Vec<Entry<E>>) {
        bucket.clear();
        if bucket.capacity() > self.spare.capacity() {
            self.spare = bucket;
        }
    }

    /// Removes and returns every pending entry, in no particular
    /// order. Used when shard ownership is rebalanced: the drained
    /// entries are re-pushed into their new owners' calendars, and
    /// [`take_due`](Calendar::take_due) re-derives the deterministic
    /// order from the intrinsic keys.
    pub fn drain_all(&mut self) -> Vec<Entry<E>> {
        let mut out = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            out.append(bucket);
        }
        self.len = 0;
        out
    }

    /// The earliest pending virtual time at or after `from`, scanning
    /// at most one ring rotation. `None` when the calendar is empty.
    pub fn next_time(&self, from: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        for offset in 0..RING_SLOTS as u64 {
            let t = from + offset;
            let bucket = &self.buckets[(t as usize) & (RING_SLOTS - 1)];
            if let Some(first) = bucket.first() {
                debug_assert_eq!(first.at, t, "pending entry outside the ring window");
                return Some(t);
            }
        }
        None
    }
}

/// SplitMix64 finalizer used to derive per-node seeds from the root
/// seed: adjacent node indices map to decorrelated stream seeds, and
/// `SmallRng::seed_from_u64` expands each another SplitMix64 round.
fn node_stream_seed(root: u64, node: usize) -> u64 {
    let mut z = root
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The node an event is processed at — the shard-routing key.
fn event_target(ev: &Event) -> u32 {
    match ev {
        Event::Wake { node, .. }
        | Event::ReplyArrive { node, .. }
        | Event::Deliver { node }
        | Event::Timeout { node, .. } => *node,
        Event::QueryArrive { to, .. } => *to,
    }
}

/// The node→shard partition: lane `k` owns the contiguous node range
/// `bounds[k]..bounds[k + 1]`. Boundaries are chosen to even out the
/// *present* node count per lane (absent nodes cost nothing — they
/// schedule no events) and move when membership churn shifts the
/// load; the lane count itself is fixed at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardMap {
    /// `lanes + 1` monotone boundaries; `bounds[0] == 0` and
    /// `bounds[lanes] == n`. A lane's range may be empty when fewer
    /// present nodes exist than lanes.
    bounds: Vec<u32>,
}

impl ShardMap {
    /// The effective lane count for `shards` requested over `n` nodes.
    fn lane_count(n: usize, shards: usize) -> usize {
        shards.clamp(1, n)
    }

    /// A partition of `n` nodes into `lanes` ranges balanced by
    /// *present* node count: lane `k` owns the present nodes with
    /// presence-rank in `[⌈alive·k/lanes⌉, ⌈alive·(k+1)/lanes⌉)`, so
    /// per-lane present loads differ by at most one. Trailing absent
    /// nodes land in the last lane.
    fn balanced(n: usize, lanes: usize, members: &MembershipTracker) -> Self {
        debug_assert!(lanes >= 1 && lanes <= n.max(1));
        let alive = (0..n).filter(|&i| members.is_present(i)).count();
        let mut bounds = vec![0u32; lanes + 1];
        bounds[lanes] = index_u32(n);
        let mut prefix = 0usize; // present nodes among 0..idx
        let mut k = 1usize;
        for idx in 0..n {
            while k < lanes && prefix >= (alive * k).div_ceil(lanes) {
                bounds[k] = index_u32(idx);
                k += 1;
            }
            if members.is_present(idx) {
                prefix += 1;
            }
        }
        while k < lanes {
            bounds[k] = index_u32(n);
            k += 1;
        }
        ShardMap { bounds }
    }

    /// Number of lanes in the partition.
    fn lanes(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The lane owning `node`: the last lane whose base is at or
    /// below it. `O(log lanes)` over a handful of boundaries.
    #[inline]
    fn shard_of(&self, node: usize) -> usize {
        self.bounds.partition_point(|&b| b as usize <= node) - 1
    }

    /// The first node id of `lane`.
    fn base_of(&self, lane: usize) -> usize {
        self.bounds[lane] as usize
    }

    /// One past the last node id of `lane`.
    fn end_of(&self, lane: usize) -> usize {
        self.bounds[lane + 1] as usize
    }
}

/// Execution-tuning knobs the [`EventRuntime`](crate::EventRuntime)
/// hands the engine each tick: none of them changes results, only
/// where and in how large blocks the work runs (`lookahead` changes
/// the trajectory — deliberately — but never varies with `threads`
/// or `parallel_threshold`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ExecTuning {
    /// Block width K in windows; 1 = the classic per-window barrier.
    pub(crate) lookahead: u64,
    /// Worker threads for dense blocks; 0 = auto (one per core),
    /// 1 = always in-thread.
    pub(crate) threads: usize,
    /// Fewest due events in a block before fanning out.
    pub(crate) parallel_threshold: usize,
}

impl Default for ExecTuning {
    fn default() -> Self {
        ExecTuning {
            lookahead: 1,
            threads: 0,
            parallel_threshold: PARALLEL_WINDOW_EVENTS,
        }
    }
}

/// Read-only per-tick context shared by every shard. Owned (no
/// borrows) so lane jobs holding an `Arc<Ctx>` are `'static` and can
/// run on the persistent worker pool.
struct Ctx {
    params: Params,
    mode: Mode,
    n: usize,
    m: usize,
    /// The node→shard partition (owns event routing). A per-tick
    /// clone: rebalancing replaces the engine's map between ticks, so
    /// the context pins the partition the whole tick routes through.
    map: ShardMap,
    mu: f64,
    drop_prob: f64,
    has_faults: bool,
    queue_bound: usize,
    /// The 1-based runtime round (the membership clock).
    t: u64,
    /// Lookahead block width K (windows per barrier).
    lookahead: u64,
    rewards: Vec<bool>,
    /// Per-node presence this round, indexed by global node id — a
    /// snapshot of `MembershipTracker::is_present` maintained
    /// incrementally by the engine so worker threads never touch the
    /// tracker itself.
    present: Arc<Vec<bool>>,
}

/// Per-node protocol state a [`ShardLane`] owns — the same inventory
/// as the single-heap engine (commitment, one-slot history, local
/// epoch) plus the per-source sequence counter and incarnation tag
/// that give the sharded engine its intrinsic `(time, src, seq)`
/// total order. Still a constant footprint: rebalancing hands these
/// across lanes, it never grows them.
pub(crate) const SHARD_LANE_NODE_STATE_BYTES: usize = 2 * std::mem::size_of::<NodeState>()
    + std::mem::size_of::<u64>()
    + 2 * std::mem::size_of::<u32>();

// Compile-time bounded-memory budget for the sharded engine,
// mirroring `EVENT_NODE_STATE_BYTES` in `event.rs`.
const _: () = assert!(SHARD_LANE_NODE_STATE_BYTES <= 6 * crate::NODE_STATE_BYTES);

/// One shard: the full per-node state of a contiguous node range, its
/// calendar, and one outbound mailbox per peer shard.
///
/// The per-node scalars swept every window — commitments, epochs,
/// sequence counters — live in cache-line-aligned struct-of-arrays
/// ([`AlignedU32s`]/[`AlignedU64s`]): each lane's arrays start on
/// their own 64-byte line (no false sharing between lanes on worker
/// threads) and the inner loops stream whole lines.
#[derive(Debug, Clone)]
struct ShardLane {
    index: usize,
    /// First global node id owned by this lane.
    base: u32,
    // Per-node state, indexed by `global - base`.
    choices: AlignedU32s,
    back: AlignedU32s,
    epochs: AlignedU64s,
    last_wake: AlignedU64s,
    pending: Vec<Pending>,
    inboxes: Vec<VecDeque<Msg>>,
    rngs: Vec<SmallRng>,
    seqs: AlignedU32s,
    /// Per-node incarnation counters, bumped on every leave so a
    /// wake-up scheduled in an earlier life dies on arrival (async
    /// mode; quiesced epochs clear their schedule so the tag is
    /// inert there).
    incs: AlignedU32s,
    /// Whether each node is bootstrapping — (re)joined and not yet
    /// through its first epoch decision (async mode).
    boot: Vec<bool>,
    /// Number of set flags in `boot`, kept incrementally.
    boot_count: u64,
    /// Commitment counts per option over this lane's nodes.
    counts: Vec<u64>,
    calendar: Calendar<Event>,
    /// Per-destination-shard mailboxes, drained at window boundaries.
    outboxes: Vec<Vec<Entry<Event>>>,
    /// This tick's counter contributions (summed across lanes).
    rm: RoundMetrics,
    max_queue_depth: usize,
}

impl ShardLane {
    fn len(&self) -> usize {
        self.choices.len()
    }

    /// Tags and routes an event produced by global node `src`: its own
    /// calendar when the target is local, the matching mailbox when it
    /// is not.
    fn push_from(&mut self, src: u32, at: u64, ev: Event, ctx: &Ctx) {
        let local = (src - self.base) as usize;
        let seq = self.seqs[local];
        self.seqs[local] = seq.wrapping_add(1);
        let shard = ctx.map.shard_of(event_target(&ev) as usize);
        let entry = Entry {
            at,
            src,
            seq,
            payload: ev,
        };
        if shard == self.index {
            self.calendar.push(entry);
        } else {
            self.outboxes[shard].push(entry);
        }
    }

    /// One latency draw from the sender's stream.
    fn latency(&mut self, local: usize) -> u64 {
        self.rngs[local].gen_range(1..=MAX_MESSAGE_LATENCY)
    }

    /// Whether a message sent by `local` is lost on the link.
    fn link_drops(&mut self, local: usize, ctx: &Ctx) -> bool {
        ctx.drop_prob > 0.0 && self.rngs[local].gen_bool(ctx.drop_prob)
    }

    /// Offers `msg` to a local node's bounded inbox; schedules the
    /// matching `Deliver` on success, counts a backpressure drop on
    /// overflow. Mirrors the single-heap `enqueue`.
    fn enqueue(&mut self, local: usize, msg: Msg, now: u64, ctx: &Ctx) {
        let inbox = &mut self.inboxes[local];
        if inbox.len() >= ctx.queue_bound {
            self.rm.queue_drops += 1;
            return;
        }
        inbox.push_back(msg);
        self.max_queue_depth = self.max_queue_depth.max(inbox.len());
        let node = self.base + index_u32(local);
        self.push_from(node, now + DELIVER_DELAY, Event::Deliver { node }, ctx);
    }

    /// Replaces a local node's commitment, keeping the lane's counts
    /// in sync (the async path maintains counts incrementally).
    fn set_commit(&mut self, local: usize, new: NodeState) {
        let old = self.choices[local];
        if old != NO_CHOICE {
            self.counts[old as usize] -= 1;
        }
        if new != NO_CHOICE {
            self.counts[new as usize] += 1;
        }
        self.choices[local] = new;
    }

    // ---- epoch-quiesced protocol, mirrored stage for stage from the
    // ---- single-heap scheduler (same decisions, same RNG *shape*,
    // ---- but drawn from per-node streams). The mirroring is a hard
    // ---- contract: any protocol change in event.rs (µ-branch, retry
    // ---- budget, peer pick, staleness rule, crash handling) MUST be
    // ---- replicated here and in the async methods below, or the two
    // ---- schedulers silently drift apart in law — the KS tests in
    // ---- tests/equivalence.rs are the tripwire, not the guarantee.

    /// Quiesced stage 1 resolution + stage 2 adoption.
    fn decide_q(&mut self, local: usize, considered: u32, ctx: &Ctx) {
        debug_assert!(!self.pending[local].resolved, "node resolved twice");
        self.pending[local].resolved = true;
        let adopt_p = ctx
            .params
            .adopt_probability(ctx.rewards[considered as usize]);
        if self.rngs[local].gen_bool(adopt_p) {
            self.choices[local] = considered;
            self.counts[considered as usize] += 1;
            self.rm.committed += 1;
        }
    }

    /// Quiesced query attempt (or µ-exploration on attempt 1, or the
    /// uniform fallback once the retry budget is spent).
    fn start_attempt_q(&mut self, local: usize, attempt: u32, now: u64, ctx: &Ctx) {
        let node = self.base + index_u32(local);
        if attempt == 1 && self.rngs[local].gen_bool(ctx.mu) {
            self.rm.explorations += 1;
            let considered = index_u32(self.rngs[local].gen_range(0..ctx.m));
            self.decide_q(local, considered, ctx);
            return;
        }
        if attempt > MAX_QUERY_RETRIES || ctx.n == 1 {
            self.rm.fallbacks += 1;
            let considered = index_u32(self.rngs[local].gen_range(0..ctx.m));
            self.decide_q(local, considered, ctx);
            return;
        }
        self.pending[local].attempt = attempt;
        self.rm.queries_sent += 1;
        let g = node as usize;
        let mut peer = self.rngs[local].gen_range(0..ctx.n - 1);
        if peer >= g {
            peer += 1;
        }
        self.push_from(
            node,
            now + RETRY_TIMEOUT,
            Event::Timeout {
                node,
                attempt,
                epoch: 0,
            },
            ctx,
        );
        if !self.link_drops(local, ctx) {
            let at = msg_at(now, self.latency(local), ctx);
            self.push_from(
                node,
                at,
                Event::QueryArrive {
                    from: node,
                    to: index_u32(peer),
                    epoch: 0,
                },
                ctx,
            );
        }
    }

    /// Quiesced inbox head processing.
    fn deliver_q(&mut self, local: usize, now: u64, ctx: &Ctx) {
        let Some(msg) = self.inboxes[local].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from, epoch: _ } => {
                let option = self.back[local];
                if option != NO_CHOICE && !self.link_drops(local, ctx) {
                    let at = msg_at(now, self.latency(local), ctx);
                    let node = self.base + index_u32(local);
                    self.push_from(node, at, Event::ReplyArrive { node: from, option }, ctx);
                }
            }
            Msg::Reply { option } => {
                if self.pending[local].resolved {
                    return;
                }
                self.rm.replies_received += 1;
                self.decide_q(local, option, ctx);
            }
        }
    }

    /// Resets the lane for a fresh quiesced epoch and wakes its
    /// present nodes at per-node jittered times. A node that just
    /// (re)joined has `back == NO_CHOICE` (absent epochs write
    /// NO_CHOICE) and bootstraps through the ordinary query path.
    fn begin_epoch(&mut self, ctx: &Ctx) {
        std::mem::swap(&mut self.choices, &mut self.back);
        self.counts.fill(0);
        self.rm = RoundMetrics::default();
        debug_assert!(self.calendar.is_empty(), "previous epoch left events");
        for local in 0..self.len() {
            self.choices[local] = NO_CHOICE;
            debug_assert!(self.inboxes[local].is_empty(), "previous epoch left mail");
            let node = self.base + index_u32(local);
            if ctx.present[node as usize] {
                self.rm.alive += 1;
                self.pending[local] = Pending::default();
                let at = self.rngs[local].gen_range(0..WAKE_SPREAD);
                self.push_from(node, at, Event::Wake { node, inc: 0 }, ctx);
            } else {
                // An absent node answers nothing: its snapshot slot is
                // cleared so a query landing here finds no commitment.
                self.back[local] = NO_CHOICE;
                self.pending[local] = Pending {
                    attempt: 0,
                    resolved: true,
                };
            }
        }
    }

    /// Handles one due quiesced-mode event.
    fn handle_q(&mut self, entry: Entry<Event>, now: u64, ctx: &Ctx) {
        match entry.payload {
            Event::Wake { node, .. } => {
                self.start_attempt_q((node - self.base) as usize, 1, now, ctx);
            }
            Event::QueryArrive { from, to, epoch } => {
                if !ctx.has_faults || ctx.present[to as usize] {
                    self.enqueue(
                        (to - self.base) as usize,
                        Msg::Query { from, epoch },
                        now,
                        ctx,
                    );
                }
            }
            Event::ReplyArrive { node, option } => {
                self.enqueue((node - self.base) as usize, Msg::Reply { option }, now, ctx);
            }
            Event::Deliver { node } => self.deliver_q((node - self.base) as usize, now, ctx),
            Event::Timeout {
                node,
                attempt,
                epoch: _,
            } => {
                let local = (node - self.base) as usize;
                let p = self.pending[local];
                if !p.resolved && p.attempt == attempt {
                    self.start_attempt_q(local, attempt + 1, now, ctx);
                }
            }
        }
    }

    // ---- fully-async protocol, mirrored from the single-heap async
    // ---- path: local epoch counters, epoch-tagged queries/timeouts,
    // ---- staleness filtering, cadence-scheduled wake-ups.

    /// Async stage 2 + local-epoch completion + next wake-up.
    fn decide_async(&mut self, local: usize, considered: u32, now: u64, ctx: &Ctx) {
        debug_assert!(!self.pending[local].resolved, "node resolved twice");
        self.pending[local].resolved = true;
        if self.boot[local] {
            // First epoch decision after a (re)join: the bootstrap is
            // over, whatever stage 1 produced.
            self.boot[local] = false;
            self.boot_count -= 1;
        }
        let adopt_p = ctx
            .params
            .adopt_probability(ctx.rewards[considered as usize]);
        self.back[local] = self.choices[local];
        if self.rngs[local].gen_bool(adopt_p) {
            self.set_commit(local, considered);
            self.rm.committed += 1;
        } else {
            self.set_commit(local, NO_CHOICE);
        }
        self.epochs[local] += 1;
        let cadence = self.last_wake[local] + ASYNC_EPOCH_PERIOD;
        let at = cadence.max(now + 1) + self.rngs[local].gen_range(0..ASYNC_WAKE_JITTER);
        let node = self.base + index_u32(local);
        self.push_from(
            node,
            at,
            Event::Wake {
                node,
                inc: self.incs[local],
            },
            ctx,
        );
    }

    /// Async query attempt with epoch-tagged timeout/query events.
    fn start_attempt_async(&mut self, local: usize, attempt: u32, now: u64, ctx: &Ctx) {
        let node = self.base + index_u32(local);
        if attempt == 1 && self.rngs[local].gen_bool(ctx.mu) {
            self.rm.explorations += 1;
            let considered = index_u32(self.rngs[local].gen_range(0..ctx.m));
            self.decide_async(local, considered, now, ctx);
            return;
        }
        if attempt > MAX_QUERY_RETRIES || ctx.n == 1 {
            self.rm.fallbacks += 1;
            let considered = index_u32(self.rngs[local].gen_range(0..ctx.m));
            self.decide_async(local, considered, now, ctx);
            return;
        }
        self.pending[local].attempt = attempt;
        self.rm.queries_sent += 1;
        let g = node as usize;
        let mut peer = self.rngs[local].gen_range(0..ctx.n - 1);
        if peer >= g {
            peer += 1;
        }
        let epoch = self.epochs[local] + 1;
        self.push_from(
            node,
            now + RETRY_TIMEOUT,
            Event::Timeout {
                node,
                attempt,
                epoch,
            },
            ctx,
        );
        if !self.link_drops(local, ctx) {
            let at = msg_at(now, self.latency(local), ctx);
            self.push_from(
                node,
                at,
                Event::QueryArrive {
                    from: node,
                    to: index_u32(peer),
                    epoch,
                },
                ctx,
            );
        }
    }

    /// Async inbox head processing with responder-side staleness
    /// filtering.
    fn deliver_async(&mut self, local: usize, now: u64, ctx: &Ctx, bound: StalenessBound) {
        let Some(msg) = self.inboxes[local].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from, epoch } => {
                let want = epoch.saturating_sub(1);
                let r = self.epochs[local];
                let (option, stale) = if want >= r {
                    (self.choices[local], want - r)
                } else {
                    (self.back[local], 0)
                };
                if option == NO_CHOICE {
                    return;
                }
                if !bound.allows(stale) {
                    self.rm.stale_replies += 1;
                    return;
                }
                if !self.link_drops(local, ctx) {
                    let at = msg_at(now, self.latency(local), ctx);
                    let node = self.base + index_u32(local);
                    self.push_from(node, at, Event::ReplyArrive { node: from, option }, ctx);
                }
            }
            Msg::Reply { option } => {
                if self.pending[local].resolved {
                    return;
                }
                self.rm.replies_received += 1;
                self.decide_async(local, option, now, ctx);
            }
        }
    }

    /// Handles one due fully-async event.
    fn handle_async(&mut self, entry: Entry<Event>, now: u64, ctx: &Ctx, bound: StalenessBound) {
        match entry.payload {
            Event::Wake { node, inc } => {
                let local = (node - self.base) as usize;
                // The incarnation tag kills wake-ups scheduled before
                // a leave: they are the only events whose horizon
                // outlives a one-round absence.
                if ctx.present[node as usize] && inc == self.incs[local] {
                    self.pending[local] = Pending::default();
                    self.last_wake[local] = now;
                    self.start_attempt_async(local, 1, now, ctx);
                }
            }
            Event::QueryArrive { from, to, epoch } => {
                if ctx.present[to as usize] {
                    self.enqueue(
                        (to - self.base) as usize,
                        Msg::Query { from, epoch },
                        now,
                        ctx,
                    );
                }
            }
            Event::ReplyArrive { node, option } => {
                if ctx.present[node as usize] {
                    self.enqueue((node - self.base) as usize, Msg::Reply { option }, now, ctx);
                }
            }
            Event::Deliver { node } => {
                let local = (node - self.base) as usize;
                if ctx.present[node as usize] {
                    self.deliver_async(local, now, ctx, bound);
                } else {
                    // Keep deliveries 1:1 with enqueues even for the
                    // dead.
                    self.inboxes[local].pop_front();
                }
            }
            Event::Timeout {
                node,
                attempt,
                epoch,
            } => {
                let local = (node - self.base) as usize;
                if ctx.present[node as usize] {
                    let p = self.pending[local];
                    if !p.resolved && p.attempt == attempt && self.epochs[local] + 1 == epoch {
                        self.start_attempt_async(local, attempt + 1, now, ctx);
                    }
                }
            }
        }
    }

    /// Processes every event due at `now`, in `(src, seq)` order.
    fn run_window(&mut self, now: u64, ctx: &Ctx) {
        let due = self.calendar.take_due(now);
        match ctx.mode {
            Mode::Quiesced => {
                for &entry in &due {
                    self.handle_q(entry, now, ctx);
                }
            }
            Mode::Async(bound) => {
                for &entry in &due {
                    self.handle_async(entry, now, ctx, bound);
                }
            }
        }
        self.calendar.recycle(due);
    }

    /// Processes every window in `[start, block_end)` this lane has
    /// events for, touching nothing outside the lane — the unit of
    /// work a worker thread executes between barriers. Sound because
    /// the `msg_at` deferral guarantees no event produced inside the
    /// block (by any lane) is due before `block_end`.
    fn run_block(&mut self, start: u64, block_end: u64, ctx: &Ctx) {
        let mut cursor = start;
        while let Some(w) = self.calendar.next_time(cursor) {
            if w >= block_end {
                break;
            }
            self.run_window(w, ctx);
            cursor = w + 1;
        }
    }

    /// Due events in this lane's calendar within `[from, to)` — at
    /// most `MAX_LOOKAHEAD` slot peeks.
    fn due_in(&self, from: u64, to: u64) -> usize {
        (from..to).map(|t| self.calendar.due_len(t)).sum()
    }
}

/// The sharded calendar-queue engine behind
/// [`SchedulerKind::ShardedCalendar`]. Owned by the
/// [`EventRuntime`](crate::EventRuntime), which routes ticks here when
/// the sharded scheduler is selected.
#[derive(Debug, Clone)]
pub(crate) struct ShardedEngine {
    /// The balanced node→shard partition.
    map: ShardMap,
    lanes: Vec<ShardLane>,
    /// Virtual time already consumed by async ticks.
    async_clock: u64,
    /// Online rebalances that actually moved a lane boundary.
    rebalances: u64,
    /// Per-node presence snapshot, maintained incrementally from
    /// membership transitions at every tick boundary and shared with
    /// lane jobs via the tick context. Clones of the engine share it
    /// until the next transition (`Arc::make_mut` copies on write).
    present: Arc<Vec<bool>>,
    /// Persistent worker threads for dense blocks, created lazily at
    /// first fan-out (an `Arc` so a cloned engine — the twin-runtime
    /// test pattern — shares rather than respawns; the pool
    /// serializes submissions internally).
    pool: Option<Arc<WorkerPool>>,
}

impl ShardedEngine {
    /// Builds the engine: exactly `min(shards, n)` lanes over
    /// contiguous node ranges balanced by round-1 presence, with one
    /// RNG stream per node split from `seed`. Nodes outside the
    /// initial fleet (join-scripted flash crowds) start with no
    /// commitment.
    pub(crate) fn new(
        cfg: &DistConfig,
        seed: u64,
        shards: usize,
        members: &MembershipTracker,
    ) -> Self {
        let n = cfg.num_nodes();
        let m = cfg.params().num_options();
        let lane_count = ShardMap::lane_count(n, shards);
        let map = ShardMap::balanced(n, lane_count, members);
        debug_assert_eq!(map.lanes(), lane_count);
        let lanes = (0..lane_count)
            .map(|index| {
                let base = map.base_of(index);
                let len = map.end_of(index) - base;
                let mut counts = vec![0u64; m];
                let choices: AlignedU32s = (base..base + len)
                    .map(|i| {
                        if members.in_initial_fleet(i) {
                            let c = crate::uniform_start_choice(i, m);
                            counts[c as usize] += 1;
                            c
                        } else {
                            NO_CHOICE
                        }
                    })
                    .collect();
                ShardLane {
                    index,
                    base: index_u32(base),
                    choices,
                    back: AlignedU32s::with_len(len, NO_CHOICE),
                    epochs: AlignedU64s::with_len(len, 0),
                    last_wake: AlignedU64s::with_len(len, 0),
                    pending: vec![Pending::default(); len],
                    inboxes: (0..len).map(|_| VecDeque::new()).collect(),
                    rngs: (0..len)
                        .map(|local| SmallRng::seed_from_u64(node_stream_seed(seed, base + local)))
                        .collect(),
                    seqs: AlignedU32s::with_len(len, 0),
                    incs: AlignedU32s::with_len(len, 0),
                    boot: vec![false; len],
                    boot_count: 0,
                    counts,
                    calendar: Calendar::new(),
                    outboxes: (0..lane_count).map(|_| Vec::new()).collect(),
                    rm: RoundMetrics::default(),
                    max_queue_depth: 0,
                }
            })
            .collect();
        let present = Arc::new((0..n).map(|i| members.is_present(i)).collect());
        ShardedEngine {
            map,
            lanes,
            async_clock: 0,
            rebalances: 0,
            present,
            pool: None,
        }
    }

    /// The effective shard count (after clamping to the fleet size).
    pub(crate) fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// `node`'s completed local epoch counter.
    pub(crate) fn epoch_of(&self, node: usize) -> u64 {
        let lane = &self.lanes[self.map.shard_of(node)];
        lane.epochs[node - lane.base as usize]
    }

    /// Max-minus-min completed local epoch over present nodes.
    pub(crate) fn epoch_spread(&self, members: &MembershipTracker) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut any = false;
        for lane in &self.lanes {
            for (local, &e) in lane.epochs.iter().enumerate() {
                if members.is_present(lane.base as usize + local) {
                    any = true;
                    lo = lo.min(e);
                    hi = hi.max(e);
                }
            }
        }
        if any {
            hi - lo
        } else {
            0
        }
    }

    /// Sums the per-lane commitment counts into `out`.
    pub(crate) fn write_counts(&self, out: &mut [u64]) {
        out.fill(0);
        for lane in &self.lanes {
            for (slot, &c) in out.iter_mut().zip(&lane.counts) {
                *slot += c;
            }
        }
    }

    /// Online rebalances performed so far (only those that actually
    /// moved a lane boundary count — churn at an already-balanced
    /// partition is free and unreported).
    pub(crate) fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Appends each lane's *present*-node load to `out` in lane order
    /// — the per-shard load a telemetry sink charts to see whether
    /// the online rebalancer is keeping the partition even.
    pub(crate) fn write_shard_loads(&self, members: &MembershipTracker, out: &mut Vec<usize>) {
        for lane in &self.lanes {
            let base = lane.base as usize;
            let load = (base..base + lane.choices.len())
                .filter(|&i| members.is_present(i))
                .count();
            out.push(load);
        }
    }

    /// The deepest any inbox has ever been.
    pub(crate) fn max_queue_depth(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// The earliest pending virtual time at or after `from`, across
    /// all lanes.
    fn next_window(&self, from: u64) -> Option<u64> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.calendar.next_time(from))
            .min()
    }

    /// Runs one K-window lookahead block `[start, block_end)` on every
    /// lane — on the persistent worker pool when dense, in-thread when
    /// sparse (identical results either way) — then drains the
    /// cross-shard mailboxes into the destination calendars at the
    /// barrier.
    fn run_block(&mut self, start: u64, block_end: u64, ctx: &Arc<Ctx>, tuning: &ExecTuning) {
        let due: usize = self.lanes.iter().map(|l| l.due_in(start, block_end)).sum();
        if due == 0 {
            return;
        }
        // `tuning.threads` arrives already resolved by `tick` —
        // never 0 — so no OS query happens on the per-block path.
        let threads = tuning.threads;
        if self.lanes.len() > 1 && threads > 1 && due >= tuning.parallel_threshold {
            let pool = Arc::clone(
                self.pool
                    .get_or_insert_with(|| Arc::new(WorkerPool::new(threads))),
            );
            let lanes = std::mem::take(&mut self.lanes);
            let cx = Arc::clone(ctx);
            self.lanes = pool.map(lanes, move |mut lane| {
                lane.run_block(start, block_end, &cx);
                lane
            });
        } else {
            for lane in &mut self.lanes {
                lane.run_block(start, block_end, ctx);
            }
        }
        // Block barrier: hand cross-shard events over. Bucket order
        // does not matter — `take_due` re-sorts by `(src, seq)` — so
        // the drain order is free to be whatever is cheapest.
        for src in 0..self.lanes.len() {
            for dst in 0..self.lanes.len() {
                if src == dst || self.lanes[src].outboxes[dst].is_empty() {
                    continue;
                }
                let mut moved = std::mem::take(&mut self.lanes[src].outboxes[dst]);
                for entry in moved.drain(..) {
                    self.lanes[dst].calendar.push(entry);
                }
                self.lanes[src].outboxes[dst] = moved;
            }
        }
    }

    /// Sums the lanes' per-tick counters into one report.
    fn collect_rm(&self, t: u64) -> RoundMetrics {
        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };
        for lane in &self.lanes {
            rm.alive += lane.rm.alive;
            rm.committed += lane.rm.committed;
            rm.queries_sent += lane.rm.queries_sent;
            rm.replies_received += lane.rm.replies_received;
            rm.fallbacks += lane.rm.fallbacks;
            rm.explorations += lane.rm.explorations;
            rm.queue_drops += lane.rm.queue_drops;
            rm.stale_replies += lane.rm.stale_replies;
        }
        rm
    }

    /// One tick under `mode`: a full epoch run to quiescence, or one
    /// async epoch-period window of virtual time. A tick boundary
    /// carrying membership transitions first rebalances shard
    /// ownership to the new present-node load.
    #[allow(clippy::too_many_arguments)] // the runtime's full tick context, assembled in one place
    pub(crate) fn tick(
        &mut self,
        mode: Mode,
        cfg: &DistConfig,
        queue_bound: usize,
        members: &MembershipTracker,
        t: u64,
        rewards: &[bool],
        tuning: &ExecTuning,
    ) -> RoundMetrics {
        if !members.recent().is_empty() {
            self.refresh_present(members);
            if self.lanes.len() > 1 {
                self.rebalance(members, cfg.num_nodes());
            }
        }
        let ctx = Arc::new(Ctx {
            params: *cfg.params(),
            mode,
            n: cfg.num_nodes(),
            m: cfg.params().num_options(),
            map: self.map.clone(),
            mu: cfg.params().mu(),
            drop_prob: cfg.faults().drop_prob(),
            has_faults: members.any_scheduled(),
            queue_bound,
            t,
            rewards: rewards.to_vec(),
            lookahead: tuning.lookahead,
            present: Arc::clone(&self.present),
        });
        // Resolve the auto thread knob exactly once per tick:
        // `available_parallelism` is an OS query, far too expensive to
        // repeat on the per-block path.
        let tuning = ExecTuning {
            threads: effective_threads(tuning.threads),
            ..*tuning
        };
        match mode {
            Mode::Quiesced => self.tick_quiesced(&ctx, members, &tuning),
            Mode::Async(_) => self.tick_async(&ctx, members, &tuning),
        }
    }

    /// Applies this tick's membership transitions to the engine's
    /// presence snapshot — the lane-visible view shipped to worker
    /// threads inside [`Ctx`]. Maintained incrementally so a tick
    /// without churn shares the previous `Arc` and copies nothing.
    fn refresh_present(&mut self, members: &MembershipTracker) {
        let present = Arc::make_mut(&mut self.present);
        for &(node, kind) in members.recent() {
            present[node as usize] = matches!(kind, Transition::Join | Transition::Rejoin);
        }
        debug_assert!(
            (0..present.len()).all(|i| present[i] == members.is_present(i)),
            "presence snapshot drifted from the membership tracker"
        );
    }

    /// Recomputes lane boundaries to even out *present* nodes and
    /// migrates each moving node's full state — commitment, inbox,
    /// local epoch, RNG stream, incarnation, and pending calendar
    /// entries — to its new owner. Runs only between ticks, where
    /// cross-shard outboxes are provably empty, so nothing is in
    /// flight mid-move; per-node RNG streams and intrinsic event keys
    /// make the new partition produce byte-identical results.
    fn rebalance(&mut self, members: &MembershipTracker, n: usize) {
        let new_map = ShardMap::balanced(n, self.lanes.len(), members);
        if new_map == self.map {
            return;
        }
        self.rebalances += 1;
        let lane_count = self.lanes.len();
        let m = self.lanes[0].counts.len();
        let depth_watermark = self.max_queue_depth();
        let mut entries: Vec<Entry<Event>> = Vec::new();
        let mut choices: Vec<u32> = Vec::with_capacity(n);
        let mut back: Vec<u32> = Vec::with_capacity(n);
        let mut epochs: Vec<u64> = Vec::with_capacity(n);
        let mut last_wake: Vec<u64> = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        let mut seqs: Vec<u32> = Vec::with_capacity(n);
        let mut incs: Vec<u32> = Vec::with_capacity(n);
        let mut boot = Vec::with_capacity(n);
        // Lanes own ascending contiguous ranges, so appending in lane
        // order flattens back to global node order. The aligned
        // struct-of-arrays fields flatten through plain `Vec`s and
        // re-chunk on the collect below.
        for mut lane in std::mem::take(&mut self.lanes) {
            debug_assert!(
                lane.outboxes.iter().all(Vec::is_empty),
                "rebalance crossed a window with undelivered mail"
            );
            entries.append(&mut lane.calendar.drain_all());
            choices.extend(lane.choices.drain_all());
            back.extend(lane.back.drain_all());
            epochs.extend(lane.epochs.drain_all());
            last_wake.extend(lane.last_wake.drain_all());
            pending.append(&mut lane.pending);
            inboxes.append(&mut lane.inboxes);
            rngs.append(&mut lane.rngs);
            seqs.extend(lane.seqs.drain_all());
            incs.extend(lane.incs.drain_all());
            boot.append(&mut lane.boot);
        }
        let mut choices = choices.into_iter();
        let mut back = back.into_iter();
        let mut epochs = epochs.into_iter();
        let mut last_wake = last_wake.into_iter();
        let mut pending = pending.into_iter();
        let mut inboxes = inboxes.into_iter();
        let mut rngs = rngs.into_iter();
        let mut seqs = seqs.into_iter();
        let mut incs = incs.into_iter();
        let mut boot = boot.into_iter();
        self.lanes = (0..lane_count)
            .map(|index| {
                let base = new_map.base_of(index);
                let len = new_map.end_of(index) - base;
                let lane_choices: AlignedU32s = choices.by_ref().take(len).collect();
                let mut counts = vec![0u64; m];
                for &c in lane_choices.iter() {
                    if c != NO_CHOICE {
                        counts[c as usize] += 1;
                    }
                }
                let lane_boot: Vec<bool> = boot.by_ref().take(len).collect();
                let boot_count = lane_boot.iter().filter(|&&b| b).count() as u64;
                ShardLane {
                    index,
                    base: index_u32(base),
                    choices: lane_choices,
                    back: back.by_ref().take(len).collect(),
                    epochs: epochs.by_ref().take(len).collect(),
                    last_wake: last_wake.by_ref().take(len).collect(),
                    pending: pending.by_ref().take(len).collect(),
                    inboxes: inboxes.by_ref().take(len).collect(),
                    rngs: rngs.by_ref().take(len).collect(),
                    seqs: seqs.by_ref().take(len).collect(),
                    incs: incs.by_ref().take(len).collect(),
                    boot: lane_boot,
                    boot_count,
                    counts,
                    calendar: Calendar::new(),
                    outboxes: (0..lane_count).map(|_| Vec::new()).collect(),
                    rm: RoundMetrics::default(),
                    max_queue_depth: 0,
                }
            })
            .collect();
        // The depth gauge is an engine-wide high-water mark; park it
        // on the first lane so `max_queue_depth()` keeps reporting it.
        self.lanes[0].max_queue_depth = depth_watermark;
        self.map = new_map;
        for entry in entries {
            let owner = self.map.shard_of(event_target(&entry.payload) as usize);
            self.lanes[owner].calendar.push(entry);
        }
    }

    /// Folds the tick's membership transitions into `rm`'s churn
    /// counters.
    fn count_churn(members: &MembershipTracker, rm: &mut RoundMetrics) {
        for &(_, kind) in members.recent() {
            match kind {
                Transition::Join => rm.joins += 1,
                Transition::Leave => rm.leaves += 1,
                Transition::Rejoin => rm.rejoins += 1,
                Transition::Crash => {}
            }
        }
    }

    /// One epoch run to quiescence: reset, wake, then drain the
    /// calendar in lookahead-K blocks until no lane holds a pending
    /// event.
    fn tick_quiesced(
        &mut self,
        ctx: &Arc<Ctx>,
        members: &MembershipTracker,
        tuning: &ExecTuning,
    ) -> RoundMetrics {
        for lane in &mut self.lanes {
            lane.begin_epoch(ctx);
        }
        let mut cursor = 0u64;
        while let Some(w) = self.next_window(cursor) {
            let block_end = block_end_of(w, tuning.lookahead);
            self.run_block(w, block_end, ctx, tuning);
            cursor = block_end;
        }
        debug_assert!(
            self.lanes
                .iter()
                .all(|lane| lane.pending.iter().all(|p| p.resolved)),
            "epoch ended with unresolved nodes"
        );
        let mut rm = self.collect_rm(ctx.t);
        // With the quiescence barrier, every (re)join bootstraps and
        // resolves within this very epoch: the gauge is the inflow.
        Self::count_churn(members, &mut rm);
        rm.bootstrapping = rm.joins + rm.rejoins;
        debug_assert_eq!(rm.alive, members.alive(), "alive counter drifted");
        rm
    }

    /// One async tick: advance through one epoch-period window of
    /// virtual time in lookahead-K blocks; in-flight events survive
    /// into the next tick.
    fn tick_async(
        &mut self,
        ctx: &Arc<Ctx>,
        members: &MembershipTracker,
        tuning: &ExecTuning,
    ) -> RoundMetrics {
        for lane in &mut self.lanes {
            lane.rm = RoundMetrics::default();
        }
        // Membership transitions land at the tick boundary, processed
        // in node order — mirroring the single-heap async path, with
        // the join wake jitter drawn from the joining node's own
        // stream so the draw is shard-count invariant. A departing
        // node's commitment leaves the popularity counts, its history
        // and pending attempt are wiped, and a leave bumps its
        // incarnation; a (re)joining node enters bootstrapping.
        for &(node, kind) in members.recent() {
            let lane = &mut self.lanes[self.map.shard_of(node as usize)];
            let local = (node - lane.base) as usize;
            match kind {
                Transition::Leave | Transition::Crash => {
                    if kind == Transition::Leave {
                        lane.incs[local] = lane.incs[local].wrapping_add(1);
                    }
                    if lane.choices[local] != NO_CHOICE {
                        lane.set_commit(local, NO_CHOICE);
                    }
                    lane.back[local] = NO_CHOICE;
                    lane.pending[local] = Pending {
                        attempt: 0,
                        resolved: true,
                    };
                    if lane.boot[local] {
                        lane.boot[local] = false;
                        lane.boot_count -= 1;
                    }
                }
                Transition::Join | Transition::Rejoin => {
                    if !lane.boot[local] {
                        lane.boot[local] = true;
                        lane.boot_count += 1;
                    }
                    // The t == 1 seeding loop below covers nodes
                    // present from the start; later (re)joins schedule
                    // their own boot wake here.
                    if ctx.t > 1 {
                        let at = self.async_clock + lane.rngs[local].gen_range(0..WAKE_SPREAD);
                        lane.push_from(
                            node,
                            at,
                            Event::Wake {
                                node,
                                inc: lane.incs[local],
                            },
                            ctx,
                        );
                    }
                }
            }
        }
        // The very first tick seeds every node's epoch loop.
        if ctx.t == 1 {
            for lane in &mut self.lanes {
                for local in 0..lane.len() {
                    let node = lane.base + index_u32(local);
                    if ctx.present[node as usize] {
                        let at = lane.rngs[local].gen_range(0..WAKE_SPREAD);
                        lane.push_from(
                            node,
                            at,
                            Event::Wake {
                                node,
                                inc: lane.incs[local],
                            },
                            ctx,
                        );
                    }
                }
            }
        }
        let window_end = self.async_clock + ASYNC_EPOCH_PERIOD;
        let mut cursor = self.async_clock;
        while let Some(w) = self.next_window(cursor) {
            if w >= window_end {
                break;
            }
            // A lookahead block never reaches past the tick boundary:
            // events due in the next epoch period belong to the next
            // tick's metrics window.
            let block_end = block_end_of(w, tuning.lookahead).min(window_end);
            self.run_block(w, block_end, ctx, tuning);
            cursor = block_end;
        }
        self.async_clock = window_end;
        let mut rm = self.collect_rm(ctx.t);
        rm.alive = members.alive();
        Self::count_churn(members, &mut rm);
        rm.bootstrapping = self.lanes.iter().map(|l| l.boot_count).sum();
        rm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, src: u32, seq: u32) -> Entry<u32> {
        Entry {
            at,
            src,
            seq,
            payload: src * 1000 + seq,
        }
    }

    #[test]
    fn calendar_pops_in_time_then_src_seq_order() {
        let mut cal = Calendar::new();
        cal.push(entry(5, 2, 0));
        cal.push(entry(3, 9, 1));
        cal.push(entry(5, 1, 7));
        cal.push(entry(5, 2, 1));
        assert_eq!(cal.len(), 4);
        assert_eq!(cal.next_time(0), Some(3));
        let due = cal.take_due(3);
        assert_eq!(due.len(), 1);
        cal.recycle(due);
        assert_eq!(cal.next_time(4), Some(5));
        let due = cal.take_due(5);
        let keys: Vec<(u32, u32)> = due.iter().map(|e| (e.src, e.seq)).collect();
        assert_eq!(keys, vec![(1, 7), (2, 0), (2, 1)]);
        assert!(cal.is_empty());
    }

    #[test]
    fn calendar_take_due_on_empty_slot_is_empty() {
        let mut cal = Calendar::<u32>::new();
        cal.push(entry(10, 0, 0));
        assert!(cal.take_due(9).is_empty());
        assert_eq!(cal.due_len(9), 0);
        assert_eq!(cal.due_len(10), 1);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn calendar_ring_wraps_across_rotations() {
        let mut cal = Calendar::<u32>::new();
        // Three full rotations of pushes one slot ahead of the cursor.
        for step in 0..(3 * RING_SLOTS as u64) {
            cal.push(entry(step + 1, 0, step as u32));
            let due = cal.take_due(step + 1);
            assert_eq!(due.len(), 1, "step {step}");
            assert_eq!(due[0].seq, step as u32);
            cal.recycle(due);
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn node_stream_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|i| node_stream_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        assert_ne!(node_stream_seed(1, 0), node_stream_seed(2, 0));
    }

    #[test]
    fn scheduler_kind_displays() {
        assert_eq!(SchedulerKind::SingleHeap.to_string(), "single-heap");
        assert_eq!(
            SchedulerKind::ShardedCalendar { shards: 4 }.to_string(),
            "sharded-calendar(4)"
        );
    }
}
