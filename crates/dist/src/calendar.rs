//! The sharded calendar-queue scheduler: the [`EventRuntime`]'s
//! scalable execution engine, selected with
//! [`SchedulerKind::ShardedCalendar`].
//!
//! [`EventRuntime`]: crate::EventRuntime
//!
//! # Why
//!
//! The default single-heap scheduler keys every pending event in one
//! `BinaryHeap`, so each push/pop costs `O(log E)` comparisons over a
//! heap that holds several events per node — at fleet scale the sift
//! paths are cache-miss chains through tens of megabytes, and they
//! dominate the tick. This module replaces the heap with a **calendar
//! queue**: events are bucketed by virtual-time slot in a fixed ring
//! ([`RING_SLOTS`] wide), so enqueue is an `O(1)` append and dequeue
//! is a linear walk of one bucket. On top of the calendar, the fleet
//! is **sharded** by destination-node range: each shard owns the
//! per-node state of a contiguous node block and advances its own
//! local event stream one time window at a time, handing cross-shard
//! messages to per-shard-pair mailboxes that are drained at window
//! boundaries. Shards run on the `sociolearn_sim::parallel_map`
//! scoped-thread pool when a window is dense enough to pay for the
//! fan-out, and fall back to an in-thread sweep (with identical
//! results) when it is not.
//!
//! # Determinism contract
//!
//! The engine is deterministic, and — stronger — its behavior is a
//! function of the seed alone, **independent of the shard count**:
//!
//! * Every event carries an intrinsic `(time, source node, per-source
//!   sequence number)` key. Within a window, a shard processes its due
//!   events in ascending `(src, seq)` order, so the total order within
//!   each window is fixed no matter which mailbox an event travelled
//!   through or how many shards exist.
//! * Randomness comes from **per-node RNG streams** split from the
//!   root seed (one `SmallRng` per node, seeded via a SplitMix64
//!   derivation). A node draws only from its own stream, so regrouping
//!   nodes into different shard counts cannot reorder anyone's draws.
//! * The window width is one virtual-time tick, and every event the
//!   protocol schedules has a strictly positive delay, so nothing
//!   produced inside a window can be due in that same window —
//!   cross-shard mailboxes drained at the boundary always deliver in
//!   time, and shards never need to peek at each other mid-window.
//!
//! Together these give the invariant the proptest suite pins down:
//! for a fixed seed, ticks produce **byte-identical metrics and
//! distributions for any shard count**, and the law of the process
//! matches the single-heap scheduler (KS-tested in
//! `tests/equivalence.rs`).

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sociolearn_core::Params;
use sociolearn_sim::parallel_map;

use crate::event::{
    Event, Mode, Msg, Pending, StalenessBound, ASYNC_EPOCH_PERIOD, ASYNC_WAKE_JITTER,
    DELIVER_DELAY, MAX_MESSAGE_LATENCY, RETRY_TIMEOUT, WAKE_SPREAD,
};
use crate::{CrashTracker, DistConfig, NodeState, RoundMetrics, MAX_QUERY_RETRIES, NO_CHOICE};

/// Number of time slots in a [`Calendar`] ring. A power of two, and
/// strictly larger than the longest delay the protocol ever schedules
/// (the async epoch period plus its wake jitter), so at most one
/// distinct virtual time can occupy a slot at any moment.
pub const RING_SLOTS: usize = 128;

// The ring must cover the longest scheduling delay: the async cadence
// (period + jitter), the initial wake spread, and a retry timeout all
// have to fit strictly inside one rotation.
const _: () = assert!(ASYNC_EPOCH_PERIOD + ASYNC_WAKE_JITTER < RING_SLOTS as u64);
const _: () = assert!(WAKE_SPREAD < RING_SLOTS as u64);
const _: () = assert!(RETRY_TIMEOUT < RING_SLOTS as u64);

/// Fewest due events in a window before the engine fans the shards out
/// on the thread pool; sparser windows are swept in-thread (the two
/// paths produce identical results — this is a cost knob, not a
/// semantic one).
const PARALLEL_WINDOW_EVENTS: usize = 2_048;

/// Which scheduler drives the [`EventRuntime`](crate::EventRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// The original scheduler: one global `BinaryHeap` keyed
    /// `(time, seq)`, one global RNG stream. Exactly the pre-sharding
    /// behavior, kept so every test can run both schedulers.
    SingleHeap,
    /// The sharded calendar-queue engine of this module. `shards` is
    /// clamped to the fleet size; randomness is split into per-node
    /// streams, so results are byte-identical across shard counts.
    ShardedCalendar {
        /// Number of destination-node-range shards (at least 1).
        shards: usize,
    },
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::SingleHeap => f.write_str("single-heap"),
            SchedulerKind::ShardedCalendar { shards } => {
                write!(f, "sharded-calendar({shards})")
            }
        }
    }
}

/// One scheduled item in a [`Calendar`]: the payload plus the
/// intrinsic ordering key `(at, src, seq)` — virtual time, source
/// node, and the source's own monotone sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<E> {
    /// Virtual time the entry is due.
    pub at: u64,
    /// The node (or producer id) that scheduled the entry.
    pub src: u32,
    /// The producer's own sequence number — FIFO tie-break for entries
    /// of the same `(at, src)`.
    pub seq: u32,
    /// The scheduled payload.
    pub payload: E,
}

impl<E> Entry<E> {
    /// The packed `(src, seq)` tie-break key: within one time slot,
    /// entries pop in ascending order of this key.
    fn order_key(&self) -> u64 {
        (u64::from(self.src) << 32) | u64::from(self.seq)
    }
}

/// A fixed-ring calendar queue: `O(1)` amortized enqueue, bucket-walk
/// dequeue, deterministic `(time, src, seq)` pop order.
///
/// The caller must keep every pending entry within one ring rotation
/// ([`RING_SLOTS`] virtual-time units) of the earliest pending entry —
/// the event runtime guarantees this by construction (all protocol
/// delays are shorter than the ring), and `push` checks it in debug
/// builds.
///
/// # Example
///
/// ```
/// use sociolearn_dist::{Calendar, Entry};
///
/// let mut cal = Calendar::new();
/// cal.push(Entry { at: 3, src: 1, seq: 0, payload: "b" });
/// cal.push(Entry { at: 1, src: 7, seq: 0, payload: "a" });
/// assert_eq!(cal.next_time(0), Some(1));
/// let due = cal.take_due(1);
/// assert_eq!(due[0].payload, "a");
/// assert_eq!(cal.next_time(2), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    /// `RING_SLOTS` buckets indexed by `time % RING_SLOTS`; each holds
    /// entries for exactly one virtual time at any moment.
    buckets: Vec<Vec<Entry<E>>>,
    /// Recycled bucket storage, so steady-state windows allocate
    /// nothing.
    spare: Vec<Entry<E>>,
    /// Total pending entries.
    len: usize,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        Calendar {
            buckets: (0..RING_SLOTS).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Pending entries across all slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `entry`. `O(1)`: one append to the slot
    /// `entry.at % RING_SLOTS`.
    ///
    /// # Panics
    ///
    /// Panics if `entry.at` collides with a different virtual time
    /// already occupying its ring slot — i.e. the caller violated the
    /// one-rotation window contract. A silent collision would corrupt
    /// the queue (mixed-time buckets, misreported `next_time`), so the
    /// single-comparison guard stays on in release builds.
    pub fn push(&mut self, entry: Entry<E>) {
        let slot = (entry.at as usize) & (RING_SLOTS - 1);
        let bucket = &mut self.buckets[slot];
        assert!(
            bucket.first().is_none_or(|e| e.at == entry.at),
            "calendar ring collision: slot {slot} holds t={} but got t={}",
            bucket.first().map_or(0, |e| e.at),
            entry.at,
        );
        bucket.push(entry);
        self.len += 1;
    }

    /// Entries due exactly at `now`, without removing them.
    pub fn due_len(&self, now: u64) -> usize {
        let bucket = &self.buckets[(now as usize) & (RING_SLOTS - 1)];
        if bucket.first().is_some_and(|e| e.at == now) {
            bucket.len()
        } else {
            0
        }
    }

    /// Removes and returns every entry due at `now`, sorted by the
    /// deterministic `(src, seq)` tie-break. Returns an empty vector
    /// when nothing is due. Hand the vector back through
    /// [`recycle`](Calendar::recycle) to keep the queue
    /// allocation-free in steady state.
    pub fn take_due(&mut self, now: u64) -> Vec<Entry<E>> {
        let slot = (now as usize) & (RING_SLOTS - 1);
        if self.buckets[slot].first().is_none_or(|e| e.at != now) {
            return Vec::new();
        }
        let mut due = std::mem::replace(&mut self.buckets[slot], std::mem::take(&mut self.spare));
        self.len -= due.len();
        due.sort_unstable_by_key(Entry::order_key);
        due
    }

    /// Returns a drained vector from [`take_due`](Calendar::take_due)
    /// so its capacity is reused by a later window.
    pub fn recycle(&mut self, mut bucket: Vec<Entry<E>>) {
        bucket.clear();
        if bucket.capacity() > self.spare.capacity() {
            self.spare = bucket;
        }
    }

    /// The earliest pending virtual time at or after `from`, scanning
    /// at most one ring rotation. `None` when the calendar is empty.
    pub fn next_time(&self, from: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        for offset in 0..RING_SLOTS as u64 {
            let t = from + offset;
            let bucket = &self.buckets[(t as usize) & (RING_SLOTS - 1)];
            if let Some(first) = bucket.first() {
                debug_assert_eq!(first.at, t, "pending entry outside the ring window");
                return Some(t);
            }
        }
        None
    }
}

/// SplitMix64 finalizer used to derive per-node seeds from the root
/// seed: adjacent node indices map to decorrelated stream seeds, and
/// `SmallRng::seed_from_u64` expands each another SplitMix64 round.
fn node_stream_seed(root: u64, node: usize) -> u64 {
    let mut z = root
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The node an event is processed at — the shard-routing key.
fn event_target(ev: &Event) -> u32 {
    match ev {
        Event::Wake { node }
        | Event::ReplyArrive { node, .. }
        | Event::Deliver { node }
        | Event::Timeout { node, .. } => *node,
        Event::QueryArrive { to, .. } => *to,
    }
}

/// The balanced node→shard partition: the first `wide` lanes own
/// `q + 1` contiguous nodes each, the rest own `q`, so exactly
/// `min(shards, n)` lanes exist and lane sizes differ by at most one.
#[derive(Debug, Clone, Copy)]
struct ShardMap {
    /// Lanes holding `q + 1` nodes.
    wide: usize,
    /// First node id of the `q`-wide region (`wide * (q + 1)`).
    split: usize,
    /// Base nodes per lane.
    q: usize,
}

impl ShardMap {
    fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n);
        let q = n / shards;
        let wide = n % shards;
        ShardMap {
            wide,
            split: wide * (q + 1),
            q,
        }
    }

    /// Number of lanes in the partition of `n` nodes. (`q >= 1`
    /// always: the constructor clamps the shard count to `n`.)
    fn lanes(&self, n: usize) -> usize {
        self.wide + (n - self.split) / self.q
    }

    /// The lane owning `node`.
    #[inline]
    fn shard_of(&self, node: usize) -> usize {
        if node < self.split {
            node / (self.q + 1)
        } else {
            self.wide + (node - self.split) / self.q
        }
    }

    /// The first node id of `lane`.
    fn base_of(&self, lane: usize) -> usize {
        if lane < self.wide {
            lane * (self.q + 1)
        } else {
            self.split + (lane - self.wide) * self.q
        }
    }
}

/// Read-only per-tick context shared by every shard.
struct Ctx<'a> {
    params: Params,
    mode: Mode,
    n: usize,
    m: usize,
    /// The node→shard partition (owns event routing).
    map: ShardMap,
    mu: f64,
    drop_prob: f64,
    has_crashes: bool,
    queue_bound: usize,
    /// The 1-based runtime round (the crash clock).
    t: u64,
    rewards: &'a [bool],
    crashes: &'a CrashTracker,
}

/// One shard: the full per-node state of a contiguous node range, its
/// calendar, and one outbound mailbox per peer shard.
#[derive(Debug, Clone)]
struct ShardLane {
    index: usize,
    /// First global node id owned by this lane.
    base: u32,
    // Per-node state, indexed by `global - base`.
    choices: Vec<NodeState>,
    back: Vec<NodeState>,
    epochs: Vec<u64>,
    last_wake: Vec<u64>,
    pending: Vec<Pending>,
    inboxes: Vec<VecDeque<Msg>>,
    rngs: Vec<SmallRng>,
    seqs: Vec<u32>,
    /// Commitment counts per option over this lane's nodes.
    counts: Vec<u64>,
    calendar: Calendar<Event>,
    /// Per-destination-shard mailboxes, drained at window boundaries.
    outboxes: Vec<Vec<Entry<Event>>>,
    /// This tick's counter contributions (summed across lanes).
    rm: RoundMetrics,
    max_queue_depth: usize,
}

impl ShardLane {
    fn len(&self) -> usize {
        self.choices.len()
    }

    /// Tags and routes an event produced by global node `src`: its own
    /// calendar when the target is local, the matching mailbox when it
    /// is not.
    fn push_from(&mut self, src: u32, at: u64, ev: Event, ctx: &Ctx<'_>) {
        let local = (src - self.base) as usize;
        let seq = self.seqs[local];
        self.seqs[local] = seq.wrapping_add(1);
        let shard = ctx.map.shard_of(event_target(&ev) as usize);
        let entry = Entry {
            at,
            src,
            seq,
            payload: ev,
        };
        if shard == self.index {
            self.calendar.push(entry);
        } else {
            self.outboxes[shard].push(entry);
        }
    }

    /// One latency draw from the sender's stream.
    fn latency(&mut self, local: usize) -> u64 {
        self.rngs[local].gen_range(1..=MAX_MESSAGE_LATENCY)
    }

    /// Whether a message sent by `local` is lost on the link.
    fn link_drops(&mut self, local: usize, ctx: &Ctx<'_>) -> bool {
        ctx.drop_prob > 0.0 && self.rngs[local].gen_bool(ctx.drop_prob)
    }

    /// Offers `msg` to a local node's bounded inbox; schedules the
    /// matching `Deliver` on success, counts a backpressure drop on
    /// overflow. Mirrors the single-heap `enqueue`.
    fn enqueue(&mut self, local: usize, msg: Msg, now: u64, ctx: &Ctx<'_>) {
        let inbox = &mut self.inboxes[local];
        if inbox.len() >= ctx.queue_bound {
            self.rm.queue_drops += 1;
            return;
        }
        inbox.push_back(msg);
        self.max_queue_depth = self.max_queue_depth.max(inbox.len());
        let node = self.base + local as u32;
        self.push_from(node, now + DELIVER_DELAY, Event::Deliver { node }, ctx);
    }

    /// Replaces a local node's commitment, keeping the lane's counts
    /// in sync (the async path maintains counts incrementally).
    fn set_commit(&mut self, local: usize, new: NodeState) {
        let old = self.choices[local];
        if old != NO_CHOICE {
            self.counts[old as usize] -= 1;
        }
        if new != NO_CHOICE {
            self.counts[new as usize] += 1;
        }
        self.choices[local] = new;
    }

    // ---- epoch-quiesced protocol, mirrored stage for stage from the
    // ---- single-heap scheduler (same decisions, same RNG *shape*,
    // ---- but drawn from per-node streams). The mirroring is a hard
    // ---- contract: any protocol change in event.rs (µ-branch, retry
    // ---- budget, peer pick, staleness rule, crash handling) MUST be
    // ---- replicated here and in the async methods below, or the two
    // ---- schedulers silently drift apart in law — the KS tests in
    // ---- tests/equivalence.rs are the tripwire, not the guarantee.

    /// Quiesced stage 1 resolution + stage 2 adoption.
    fn decide_q(&mut self, local: usize, considered: u32, ctx: &Ctx<'_>) {
        debug_assert!(!self.pending[local].resolved, "node resolved twice");
        self.pending[local].resolved = true;
        let adopt_p = ctx
            .params
            .adopt_probability(ctx.rewards[considered as usize]);
        if self.rngs[local].gen_bool(adopt_p) {
            self.choices[local] = considered;
            self.counts[considered as usize] += 1;
            self.rm.committed += 1;
        }
    }

    /// Quiesced query attempt (or µ-exploration on attempt 1, or the
    /// uniform fallback once the retry budget is spent).
    fn start_attempt_q(&mut self, local: usize, attempt: u32, now: u64, ctx: &Ctx<'_>) {
        let node = self.base + local as u32;
        if attempt == 1 && self.rngs[local].gen_bool(ctx.mu) {
            self.rm.explorations += 1;
            let considered = self.rngs[local].gen_range(0..ctx.m) as u32;
            self.decide_q(local, considered, ctx);
            return;
        }
        if attempt > MAX_QUERY_RETRIES || ctx.n == 1 {
            self.rm.fallbacks += 1;
            let considered = self.rngs[local].gen_range(0..ctx.m) as u32;
            self.decide_q(local, considered, ctx);
            return;
        }
        self.pending[local].attempt = attempt;
        self.rm.queries_sent += 1;
        let g = node as usize;
        let mut peer = self.rngs[local].gen_range(0..ctx.n - 1);
        if peer >= g {
            peer += 1;
        }
        self.push_from(
            node,
            now + RETRY_TIMEOUT,
            Event::Timeout {
                node,
                attempt,
                epoch: 0,
            },
            ctx,
        );
        if !self.link_drops(local, ctx) {
            let at = now + self.latency(local);
            self.push_from(
                node,
                at,
                Event::QueryArrive {
                    from: node,
                    to: peer as u32,
                    epoch: 0,
                },
                ctx,
            );
        }
    }

    /// Quiesced inbox head processing.
    fn deliver_q(&mut self, local: usize, now: u64, ctx: &Ctx<'_>) {
        let Some(msg) = self.inboxes[local].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from, epoch: _ } => {
                let option = self.back[local];
                if option != NO_CHOICE && !self.link_drops(local, ctx) {
                    let at = now + self.latency(local);
                    let node = self.base + local as u32;
                    self.push_from(node, at, Event::ReplyArrive { node: from, option }, ctx);
                }
            }
            Msg::Reply { option } => {
                if self.pending[local].resolved {
                    return;
                }
                self.rm.replies_received += 1;
                self.decide_q(local, option, ctx);
            }
        }
    }

    /// Resets the lane for a fresh quiesced epoch and wakes its alive
    /// nodes at per-node jittered times.
    fn begin_epoch(&mut self, ctx: &Ctx<'_>) {
        std::mem::swap(&mut self.choices, &mut self.back);
        self.counts.fill(0);
        self.rm = RoundMetrics::default();
        debug_assert!(self.calendar.is_empty(), "previous epoch left events");
        for local in 0..self.len() {
            self.choices[local] = NO_CHOICE;
            debug_assert!(self.inboxes[local].is_empty(), "previous epoch left mail");
            let node = self.base + local as u32;
            if ctx.crashes.alive_in(node as usize, ctx.t) {
                self.rm.alive += 1;
                self.pending[local] = Pending::default();
                let at = self.rngs[local].gen_range(0..WAKE_SPREAD);
                self.push_from(node, at, Event::Wake { node }, ctx);
            } else {
                self.pending[local] = Pending {
                    attempt: 0,
                    resolved: true,
                };
            }
        }
    }

    /// Handles one due quiesced-mode event.
    fn handle_q(&mut self, entry: Entry<Event>, now: u64, ctx: &Ctx<'_>) {
        match entry.payload {
            Event::Wake { node } => {
                self.start_attempt_q((node - self.base) as usize, 1, now, ctx);
            }
            Event::QueryArrive { from, to, epoch } => {
                if !ctx.has_crashes || ctx.crashes.alive_in(to as usize, ctx.t) {
                    self.enqueue(
                        (to - self.base) as usize,
                        Msg::Query { from, epoch },
                        now,
                        ctx,
                    );
                }
            }
            Event::ReplyArrive { node, option } => {
                self.enqueue((node - self.base) as usize, Msg::Reply { option }, now, ctx);
            }
            Event::Deliver { node } => self.deliver_q((node - self.base) as usize, now, ctx),
            Event::Timeout {
                node,
                attempt,
                epoch: _,
            } => {
                let local = (node - self.base) as usize;
                let p = self.pending[local];
                if !p.resolved && p.attempt == attempt {
                    self.start_attempt_q(local, attempt + 1, now, ctx);
                }
            }
        }
    }

    // ---- fully-async protocol, mirrored from the single-heap async
    // ---- path: local epoch counters, epoch-tagged queries/timeouts,
    // ---- staleness filtering, cadence-scheduled wake-ups.

    /// Async stage 2 + local-epoch completion + next wake-up.
    fn decide_async(&mut self, local: usize, considered: u32, now: u64, ctx: &Ctx<'_>) {
        debug_assert!(!self.pending[local].resolved, "node resolved twice");
        self.pending[local].resolved = true;
        let adopt_p = ctx
            .params
            .adopt_probability(ctx.rewards[considered as usize]);
        self.back[local] = self.choices[local];
        if self.rngs[local].gen_bool(adopt_p) {
            self.set_commit(local, considered);
            self.rm.committed += 1;
        } else {
            self.set_commit(local, NO_CHOICE);
        }
        self.epochs[local] += 1;
        let cadence = self.last_wake[local] + ASYNC_EPOCH_PERIOD;
        let at = cadence.max(now + 1) + self.rngs[local].gen_range(0..ASYNC_WAKE_JITTER);
        let node = self.base + local as u32;
        self.push_from(node, at, Event::Wake { node }, ctx);
    }

    /// Async query attempt with epoch-tagged timeout/query events.
    fn start_attempt_async(&mut self, local: usize, attempt: u32, now: u64, ctx: &Ctx<'_>) {
        let node = self.base + local as u32;
        if attempt == 1 && self.rngs[local].gen_bool(ctx.mu) {
            self.rm.explorations += 1;
            let considered = self.rngs[local].gen_range(0..ctx.m) as u32;
            self.decide_async(local, considered, now, ctx);
            return;
        }
        if attempt > MAX_QUERY_RETRIES || ctx.n == 1 {
            self.rm.fallbacks += 1;
            let considered = self.rngs[local].gen_range(0..ctx.m) as u32;
            self.decide_async(local, considered, now, ctx);
            return;
        }
        self.pending[local].attempt = attempt;
        self.rm.queries_sent += 1;
        let g = node as usize;
        let mut peer = self.rngs[local].gen_range(0..ctx.n - 1);
        if peer >= g {
            peer += 1;
        }
        let epoch = self.epochs[local] + 1;
        self.push_from(
            node,
            now + RETRY_TIMEOUT,
            Event::Timeout {
                node,
                attempt,
                epoch,
            },
            ctx,
        );
        if !self.link_drops(local, ctx) {
            let at = now + self.latency(local);
            self.push_from(
                node,
                at,
                Event::QueryArrive {
                    from: node,
                    to: peer as u32,
                    epoch,
                },
                ctx,
            );
        }
    }

    /// Async inbox head processing with responder-side staleness
    /// filtering.
    fn deliver_async(&mut self, local: usize, now: u64, ctx: &Ctx<'_>, bound: StalenessBound) {
        let Some(msg) = self.inboxes[local].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from, epoch } => {
                let want = epoch.saturating_sub(1);
                let r = self.epochs[local];
                let (option, stale) = if want >= r {
                    (self.choices[local], want - r)
                } else {
                    (self.back[local], 0)
                };
                if option == NO_CHOICE {
                    return;
                }
                if !bound.allows(stale) {
                    self.rm.stale_replies += 1;
                    return;
                }
                if !self.link_drops(local, ctx) {
                    let at = now + self.latency(local);
                    let node = self.base + local as u32;
                    self.push_from(node, at, Event::ReplyArrive { node: from, option }, ctx);
                }
            }
            Msg::Reply { option } => {
                if self.pending[local].resolved {
                    return;
                }
                self.rm.replies_received += 1;
                self.decide_async(local, option, now, ctx);
            }
        }
    }

    /// Handles one due fully-async event.
    fn handle_async(
        &mut self,
        entry: Entry<Event>,
        now: u64,
        ctx: &Ctx<'_>,
        bound: StalenessBound,
    ) {
        match entry.payload {
            Event::Wake { node } => {
                let local = (node - self.base) as usize;
                if ctx.crashes.alive_in(node as usize, ctx.t) {
                    self.pending[local] = Pending::default();
                    self.last_wake[local] = now;
                    self.start_attempt_async(local, 1, now, ctx);
                }
            }
            Event::QueryArrive { from, to, epoch } => {
                if ctx.crashes.alive_in(to as usize, ctx.t) {
                    self.enqueue(
                        (to - self.base) as usize,
                        Msg::Query { from, epoch },
                        now,
                        ctx,
                    );
                }
            }
            Event::ReplyArrive { node, option } => {
                if ctx.crashes.alive_in(node as usize, ctx.t) {
                    self.enqueue((node - self.base) as usize, Msg::Reply { option }, now, ctx);
                }
            }
            Event::Deliver { node } => {
                let local = (node - self.base) as usize;
                if ctx.crashes.alive_in(node as usize, ctx.t) {
                    self.deliver_async(local, now, ctx, bound);
                } else {
                    // Keep deliveries 1:1 with enqueues even for the
                    // dead.
                    self.inboxes[local].pop_front();
                }
            }
            Event::Timeout {
                node,
                attempt,
                epoch,
            } => {
                let local = (node - self.base) as usize;
                if ctx.crashes.alive_in(node as usize, ctx.t) {
                    let p = self.pending[local];
                    if !p.resolved && p.attempt == attempt && self.epochs[local] + 1 == epoch {
                        self.start_attempt_async(local, attempt + 1, now, ctx);
                    }
                }
            }
        }
    }

    /// Processes every event due at `now`, in `(src, seq)` order.
    fn run_window(&mut self, now: u64, ctx: &Ctx<'_>) {
        let due = self.calendar.take_due(now);
        match ctx.mode {
            Mode::Quiesced => {
                for &entry in &due {
                    self.handle_q(entry, now, ctx);
                }
            }
            Mode::Async(bound) => {
                for &entry in &due {
                    self.handle_async(entry, now, ctx, bound);
                }
            }
        }
        self.calendar.recycle(due);
    }
}

/// The sharded calendar-queue engine behind
/// [`SchedulerKind::ShardedCalendar`]. Owned by the
/// [`EventRuntime`](crate::EventRuntime), which routes ticks here when
/// the sharded scheduler is selected.
#[derive(Debug, Clone)]
pub(crate) struct ShardedEngine {
    /// The balanced node→shard partition.
    map: ShardMap,
    lanes: Vec<ShardLane>,
    /// Virtual time already consumed by async ticks.
    async_clock: u64,
}

impl ShardedEngine {
    /// Builds the engine: exactly `min(shards, n)` lanes over balanced
    /// contiguous node ranges (sizes differ by at most one node), with
    /// one RNG stream per node split from `seed`.
    pub(crate) fn new(cfg: &DistConfig, seed: u64, shards: usize) -> Self {
        let n = cfg.num_nodes();
        let m = cfg.params().num_options();
        let map = ShardMap::new(n, shards);
        let lane_count = map.lanes(n);
        debug_assert_eq!(lane_count, shards.clamp(1, n));
        let lanes = (0..lane_count)
            .map(|index| {
                let base = map.base_of(index);
                let len = map.base_of(index + 1).min(n) - base;
                let mut counts = vec![0u64; m];
                let choices: Vec<NodeState> = (base..base + len)
                    .map(|i| {
                        let c = crate::uniform_start_choice(i, m);
                        counts[c as usize] += 1;
                        c
                    })
                    .collect();
                ShardLane {
                    index,
                    base: base as u32,
                    choices,
                    back: vec![NO_CHOICE; len],
                    epochs: vec![0; len],
                    last_wake: vec![0; len],
                    pending: vec![Pending::default(); len],
                    inboxes: (0..len).map(|_| VecDeque::new()).collect(),
                    rngs: (0..len)
                        .map(|local| SmallRng::seed_from_u64(node_stream_seed(seed, base + local)))
                        .collect(),
                    seqs: vec![0; len],
                    counts,
                    calendar: Calendar::new(),
                    outboxes: (0..lane_count).map(|_| Vec::new()).collect(),
                    rm: RoundMetrics::default(),
                    max_queue_depth: 0,
                }
            })
            .collect();
        ShardedEngine {
            map,
            lanes,
            async_clock: 0,
        }
    }

    /// The effective shard count (after clamping to the fleet size).
    pub(crate) fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// `node`'s completed local epoch counter.
    pub(crate) fn epoch_of(&self, node: usize) -> u64 {
        let lane = &self.lanes[self.map.shard_of(node)];
        lane.epochs[node - lane.base as usize]
    }

    /// Max-minus-min completed local epoch over alive nodes.
    pub(crate) fn epoch_spread(&self, crashes: &CrashTracker, t: u64) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut any = false;
        for lane in &self.lanes {
            for (local, &e) in lane.epochs.iter().enumerate() {
                if crashes.alive_in(lane.base as usize + local, t.max(1)) {
                    any = true;
                    lo = lo.min(e);
                    hi = hi.max(e);
                }
            }
        }
        if any {
            hi - lo
        } else {
            0
        }
    }

    /// Sums the per-lane commitment counts into `out`.
    pub(crate) fn write_counts(&self, out: &mut [u64]) {
        out.fill(0);
        for lane in &self.lanes {
            for (slot, &c) in out.iter_mut().zip(&lane.counts) {
                *slot += c;
            }
        }
    }

    /// The deepest any inbox has ever been.
    pub(crate) fn max_queue_depth(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// The earliest pending virtual time at or after `from`, across
    /// all lanes.
    fn next_window(&self, from: u64) -> Option<u64> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.calendar.next_time(from))
            .min()
    }

    /// Runs one time window on every lane — on the thread pool when
    /// dense, in-thread when sparse (identical results either way) —
    /// then drains the cross-shard mailboxes into the destination
    /// calendars.
    fn run_window(&mut self, now: u64, ctx: &Ctx<'_>) {
        let due: usize = self.lanes.iter().map(|l| l.calendar.due_len(now)).sum();
        if due == 0 {
            return;
        }
        if self.lanes.len() > 1 && due >= PARALLEL_WINDOW_EVENTS {
            let lanes = std::mem::take(&mut self.lanes);
            self.lanes = parallel_map(lanes, |mut lane| {
                lane.run_window(now, ctx);
                lane
            });
        } else {
            for lane in &mut self.lanes {
                lane.run_window(now, ctx);
            }
        }
        // Window boundary: hand cross-shard events over. Bucket order
        // does not matter — `take_due` re-sorts by `(src, seq)` — so
        // the drain order is free to be whatever is cheapest.
        for src in 0..self.lanes.len() {
            for dst in 0..self.lanes.len() {
                if src == dst || self.lanes[src].outboxes[dst].is_empty() {
                    continue;
                }
                let mut moved = std::mem::take(&mut self.lanes[src].outboxes[dst]);
                for entry in moved.drain(..) {
                    self.lanes[dst].calendar.push(entry);
                }
                self.lanes[src].outboxes[dst] = moved;
            }
        }
    }

    /// Sums the lanes' per-tick counters into one report.
    fn collect_rm(&self, t: u64) -> RoundMetrics {
        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };
        for lane in &self.lanes {
            rm.alive += lane.rm.alive;
            rm.committed += lane.rm.committed;
            rm.queries_sent += lane.rm.queries_sent;
            rm.replies_received += lane.rm.replies_received;
            rm.fallbacks += lane.rm.fallbacks;
            rm.explorations += lane.rm.explorations;
            rm.queue_drops += lane.rm.queue_drops;
            rm.stale_replies += lane.rm.stale_replies;
        }
        rm
    }

    /// One tick under `mode`: a full epoch run to quiescence, or one
    /// async epoch-period window of virtual time.
    pub(crate) fn tick(
        &mut self,
        mode: Mode,
        cfg: &DistConfig,
        queue_bound: usize,
        crashes: &CrashTracker,
        t: u64,
        rewards: &[bool],
    ) -> RoundMetrics {
        let ctx = Ctx {
            params: *cfg.params(),
            mode,
            n: cfg.num_nodes(),
            m: cfg.params().num_options(),
            map: self.map,
            mu: cfg.params().mu(),
            drop_prob: cfg.faults().drop_prob(),
            has_crashes: crashes.any_scheduled(),
            queue_bound,
            t,
            rewards,
            crashes,
        };
        match mode {
            Mode::Quiesced => self.tick_quiesced(&ctx),
            Mode::Async(_) => self.tick_async(&ctx),
        }
    }

    /// One epoch run to quiescence: reset, wake, then drain every
    /// window until no lane holds a pending event.
    fn tick_quiesced(&mut self, ctx: &Ctx<'_>) -> RoundMetrics {
        for lane in &mut self.lanes {
            lane.begin_epoch(ctx);
        }
        let mut cursor = 0u64;
        while let Some(w) = self.next_window(cursor) {
            self.run_window(w, ctx);
            cursor = w + 1;
        }
        debug_assert!(
            self.lanes
                .iter()
                .all(|lane| lane.pending.iter().all(|p| p.resolved)),
            "epoch ended with unresolved nodes"
        );
        let rm = self.collect_rm(ctx.t);
        debug_assert_eq!(rm.alive, ctx.crashes.alive(), "alive counter drifted");
        rm
    }

    /// One async tick: advance through one epoch-period window of
    /// virtual time; in-flight events survive into the next tick.
    fn tick_async(&mut self, ctx: &Ctx<'_>) -> RoundMetrics {
        for lane in &mut self.lanes {
            lane.rm = RoundMetrics::default();
        }
        // Newly-landed crashes leave the popularity counts; their
        // pending events become inert.
        if ctx.has_crashes {
            for lane in &mut self.lanes {
                for local in 0..lane.len() {
                    if !ctx.crashes.alive_in(lane.base as usize + local, ctx.t)
                        && lane.choices[local] != NO_CHOICE
                    {
                        lane.set_commit(local, NO_CHOICE);
                    }
                }
            }
        }
        // The very first tick seeds every node's epoch loop.
        if ctx.t == 1 {
            for lane in &mut self.lanes {
                for local in 0..lane.len() {
                    let node = lane.base + local as u32;
                    if ctx.crashes.alive_in(node as usize, ctx.t) {
                        let at = lane.rngs[local].gen_range(0..WAKE_SPREAD);
                        lane.push_from(node, at, Event::Wake { node }, ctx);
                    }
                }
            }
        }
        let window_end = self.async_clock + ASYNC_EPOCH_PERIOD;
        let mut cursor = self.async_clock;
        while let Some(w) = self.next_window(cursor) {
            if w >= window_end {
                break;
            }
            self.run_window(w, ctx);
            cursor = w + 1;
        }
        self.async_clock = window_end;
        let mut rm = self.collect_rm(ctx.t);
        rm.alive = ctx.crashes.alive();
        rm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, src: u32, seq: u32) -> Entry<u32> {
        Entry {
            at,
            src,
            seq,
            payload: src * 1000 + seq,
        }
    }

    #[test]
    fn calendar_pops_in_time_then_src_seq_order() {
        let mut cal = Calendar::new();
        cal.push(entry(5, 2, 0));
        cal.push(entry(3, 9, 1));
        cal.push(entry(5, 1, 7));
        cal.push(entry(5, 2, 1));
        assert_eq!(cal.len(), 4);
        assert_eq!(cal.next_time(0), Some(3));
        let due = cal.take_due(3);
        assert_eq!(due.len(), 1);
        cal.recycle(due);
        assert_eq!(cal.next_time(4), Some(5));
        let due = cal.take_due(5);
        let keys: Vec<(u32, u32)> = due.iter().map(|e| (e.src, e.seq)).collect();
        assert_eq!(keys, vec![(1, 7), (2, 0), (2, 1)]);
        assert!(cal.is_empty());
    }

    #[test]
    fn calendar_take_due_on_empty_slot_is_empty() {
        let mut cal = Calendar::<u32>::new();
        cal.push(entry(10, 0, 0));
        assert!(cal.take_due(9).is_empty());
        assert_eq!(cal.due_len(9), 0);
        assert_eq!(cal.due_len(10), 1);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn calendar_ring_wraps_across_rotations() {
        let mut cal = Calendar::<u32>::new();
        // Three full rotations of pushes one slot ahead of the cursor.
        for step in 0..(3 * RING_SLOTS as u64) {
            cal.push(entry(step + 1, 0, step as u32));
            let due = cal.take_due(step + 1);
            assert_eq!(due.len(), 1, "step {step}");
            assert_eq!(due[0].seq, step as u32);
            cal.recycle(due);
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn node_stream_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|i| node_stream_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        assert_ne!(node_stream_seed(1, 0), node_stream_seed(2, 0));
    }

    #[test]
    fn scheduler_kind_displays() {
        assert_eq!(SchedulerKind::SingleHeap.to_string(), "single-heap");
        assert_eq!(
            SchedulerKind::ShardedCalendar { shards: 4 }.to_string(),
            "sharded-calendar(4)"
        );
    }
}
