//! The event-driven runtime: the same O(1)-state-per-node protocol as
//! [`Runtime`](crate::Runtime), executed by a seeded discrete-event
//! scheduler instead of a global round barrier.
//!
//! Every message (query out, reply back) is a scheduled event with its
//! own latency jitter, and every node owns a **bounded FIFO inbox**:
//! a message arriving at a full queue is dropped (backpressure), and a
//! query that never produces a reply — lost on the link, addressed to
//! a crashed, departed, or sat-out peer, or squeezed out of a queue —
//! is recovered by a timeout-driven retry against a fresh peer, up to
//! [`MAX_QUERY_RETRIES`] attempts before the uniform fallback. This is
//! the transport behavior a round-synchronous barrier hides, and the
//! bridge toward fully asynchronous bounded-memory collaborative
//! learning (Su–Zubeldia–Lynch, arXiv:1802.08159).
//!
//! Membership churn (scripted joins, leaves, and rejoins from the
//! [`crate::FaultPlan`]) runs through the same machinery: an absent
//! node receives nothing and answers nothing, and a (re)joining node
//! enters *bootstrapping* — no commitment, no history — and adopts
//! through the ordinary query/reply protocol. There is no state-
//! transfer message type; [`crate::NODE_STATE_BYTES`] of state is
//! cheaper to relearn than to ship. In fully-async mode a wake-up
//! carries its node's *incarnation* so a wake scheduled before a leave
//! cannot fire into the node's next life after a rejoin.
//!
//! In the default **epoch-quiesced** mode, each call to
//! [`EventRuntime::tick`] is one *epoch*: alive nodes wake at jittered
//! virtual times, exchange messages through the scheduler, and the
//! epoch completes when every event has been delivered and every alive
//! node has resolved its stage-1 sample and stage-2 adoption against
//! the epoch's fresh reward signals. Peers answer queries from the
//! *previous* epoch's commitments, so on a clean network the per-epoch
//! law is the same sample-then-adopt process as the round-synchronous
//! runtime — the cross-crate equivalence tests check it agrees in law
//! with `sociolearn_core::FinitePopulation`.
//!
//! In **fully-async** mode ([`EventRuntime::with_async_epochs`]) the
//! quiescence barrier is removed: each node runs its own epoch loop on
//! a local cadence of [`ASYNC_EPOCH_PERIOD`] scheduler ticks, advances
//! its local epoch counter the moment its reply (or timeout fallback)
//! lands, and immediately schedules its next wake-up — nodes stuck in
//! retry storms drift behind while fast nodes race ahead, so epochs
//! overlap across the fleet. Queries carry the sender's local epoch; a
//! responder whose own information is more than the configured
//! [`StalenessBound`] behind the querier withholds its reply (counted
//! in [`RoundMetrics::stale_replies`]) and the querier's timeout
//! drives a retry. [`EventRuntime::tick`] then means "advance the
//! scheduler through one epoch-period window of virtual time": a
//! healthy node completes about one local epoch per tick, a node
//! mired in retry timeouts completes less than one and genuinely
//! falls behind the fleet, and in-flight messages survive from one
//! tick into the next — exactly the no-quiescence regime under study
//! (Su–Zubeldia–Lynch, arXiv:1802.08159).
//!
//! Message cost per epoch is bounded exactly as in the round-
//! synchronous runtime: at most [`MAX_QUERY_RETRIES`] queries and one
//! reply per query per node per epoch, i.e. `≤ 2 · MAX_QUERY_RETRIES
//! · N` messages per epoch (in async mode, per *local* epoch).
//! Protocol state stays O(1) per node in both modes: the current
//! commitment, plus — in async mode only — one history slot (the
//! previous commitment), kept so a node can answer queries about the
//! epoch a slower or faster peer is still working on.

use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sociolearn_core::GroupDynamics;

use crate::calendar::{ExecTuning, SchedulerKind, ShardedEngine, MAX_LOOKAHEAD};
use crate::cast::index_u32;
use crate::{
    DistConfig, ExecutionModel, MembershipTracker, Metrics, NodeState, ProtocolRuntime,
    RoundMetrics, Transition, MAX_QUERY_RETRIES, NO_CHOICE,
};

/// Default capacity of each node's FIFO inbox. Messages arriving at a
/// full inbox are dropped and counted in
/// [`RoundMetrics::queue_drops`].
pub const DEFAULT_QUEUE_BOUND: usize = 32;

/// Upper bound on the per-message latency jitter, in scheduler ticks;
/// each delivery draws uniformly from `1..=MAX_MESSAGE_LATENCY`.
pub const MAX_MESSAGE_LATENCY: u64 = 8;

/// Ticks between a message landing in an inbox and the owner
/// processing it.
pub(crate) const DELIVER_DELAY: u64 = 1;

/// Window over which alive nodes' wake-ups are jittered at the start
/// of an epoch.
pub(crate) const WAKE_SPREAD: u64 = 32;

/// How long a querier waits for a reply before retrying. Strictly
/// larger than the worst-case round trip
/// (`2 · MAX_MESSAGE_LATENCY + 2 · DELIVER_DELAY`), so a reply that
/// is actually in flight always wins over its timeout.
pub(crate) const RETRY_TIMEOUT: u64 = 2 * MAX_MESSAGE_LATENCY + 2 * DELIVER_DELAY + 1;

/// Nominal scheduler ticks between consecutive local-epoch wake-ups of
/// one node in fully-async mode. Long enough that an epoch resolved
/// within a few retry timeouts finishes inside the period — so a
/// healthy fleet keeps a loose common cadence and sees roughly one
/// local epoch per tick — while an epoch that burns through a longer
/// timeout chain (likely under message loss, crashes, or tight
/// staleness bounds) overruns it and the node drifts behind its
/// peers: that drift is the epoch overlap the mode exists to study.
pub const ASYNC_EPOCH_PERIOD: u64 = 4 * RETRY_TIMEOUT;

/// Jitter added to each async wake-up so node loops never phase-lock.
pub(crate) const ASYNC_WAKE_JITTER: u64 = 4;

/// How far behind the querier a responder's information may be before
/// the responder withholds its reply in fully-async mode
/// ([`EventRuntime::with_async_epochs`]).
///
/// Staleness of a reply is measured in local epochs: a querier working
/// on its local epoch `e` would, under synchronized execution, copy
/// information committed at epoch `e - 1`; a responder whose last
/// completed epoch is `r` is `(e - 1) - r` epochs staler than that
/// (clamped at zero — fresher information is never penalized). A bound
/// of `Epochs(0)` therefore accepts only peers at least as current as
/// a synchronized one, which is why bound-0 async execution agrees in
/// law with the epoch-quiesced scheduler, while `Unbounded` consumes
/// every reply and never counts [`RoundMetrics::stale_replies`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StalenessBound {
    /// Consume every reply, however stale the responder's information.
    Unbounded,
    /// Withhold replies whose information is more than this many local
    /// epochs behind what a synchronized peer would hold.
    Epochs(u64),
}

impl StalenessBound {
    /// Whether information `stale` epochs behind the synchronized
    /// reference is still consumable under this bound.
    pub fn allows(self, stale: u64) -> bool {
        match self {
            StalenessBound::Unbounded => true,
            StalenessBound::Epochs(k) => stale <= k,
        }
    }
}

impl std::fmt::Display for StalenessBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StalenessBound::Unbounded => f.write_str("unbounded"),
            StalenessBound::Epochs(k) => write!(f, "{k}"),
        }
    }
}

/// Which epoch discipline the scheduler runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Every epoch runs to quiescence before the next begins.
    Quiesced,
    /// Overlapping local epochs filtered by a staleness bound.
    Async(StalenessBound),
}

/// A scheduler event, shared by the single-heap scheduler and the
/// sharded calendar engine. Node ids are `u32` to keep the heap
/// entries small (the fleet bound of `u32::MAX` nodes is far beyond
/// anything the simulations run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// An alive node starts stage 1 of the protocol. `inc` is the
    /// node's incarnation at schedule time: async mode bumps a node's
    /// incarnation when it leaves, so a wake-up scheduled before the
    /// leave cannot fire into the rejoined node's next life (wake-ups
    /// are the only event kind whose horizon outlives an absence —
    /// everything else expires within one tick window). Quiesced mode
    /// clears the schedule every tick, so the tag is inert there.
    Wake { node: u32, inc: u32 },
    /// A query from `from` reaches `to`'s inbox (link loss already
    /// resolved at send time). `epoch` is the sender's local epoch at
    /// send time — the staleness reference in async mode, ignored in
    /// quiesced mode.
    QueryArrive { from: u32, to: u32, epoch: u64 },
    /// A reply carrying `option` reaches `node`'s inbox.
    ReplyArrive { node: u32, option: u32 },
    /// `node` processes the message at the head of its inbox.
    Deliver { node: u32 },
    /// `node`'s query `attempt` has waited long enough; retry or fall
    /// back unless a reply already resolved it. `epoch` pins the
    /// timeout to the local epoch that issued the attempt, so a stale
    /// timeout surviving into a later epoch (possible in async mode,
    /// where the heap is never cleared) cannot fire spuriously.
    Timeout { node: u32, attempt: u32, epoch: u64 },
}

/// A heap entry: events fire in `(at, seq)` order, so simultaneous
/// events resolve in the deterministic order they were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: u64,
    seq: u64,
    ev: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we pop earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A message sitting in a node's inbox.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Msg {
    /// "What option did you use last epoch?" — tagged with the
    /// querier's local epoch at send time (the async staleness
    /// reference; quiesced mode ignores it).
    Query { from: u32, epoch: u64 },
    /// "I used `option`."
    Reply { option: u32 },
}

/// Per-node transport bookkeeping for the current epoch. This is
/// scheduler state, not protocol state: the node's *protocol* memory
/// is still just its committed option ([`crate::NODE_STATE_BYTES`]).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Pending {
    /// The outstanding query attempt (0 = none issued yet).
    pub(crate) attempt: u32,
    /// Whether stage 1 has resolved this epoch (copied, explored, or
    /// fell back) — late replies and stale timeouts are ignored.
    pub(crate) resolved: bool,
}

/// Per-node protocol state the event-driven runtime keeps: the
/// current commitment, the one-slot history `back` that answers
/// epoch-nearest queries, and the local epoch counter that tags
/// outgoing queries in async mode. Everything else per node — the
/// pending-query slot, the bounded inbox, the wake anchor, the
/// incarnation tag — is scheduler/transport bookkeeping with its own
/// constant bounds, not protocol state.
pub const EVENT_NODE_STATE_BYTES: usize =
    2 * std::mem::size_of::<NodeState>() + std::mem::size_of::<u64>();

// Compile-time bounded-memory budget: the event runtime's per-node
// protocol state stays within 4× the advertised NODE_STATE_BYTES, a
// message never carries more than one commitment plus its epoch tag,
// and the transport bookkeeping stays flat. Renegotiate here, not by
// silently growing a struct.
const _: () = assert!(EVENT_NODE_STATE_BYTES <= 4 * crate::NODE_STATE_BYTES);
const _: () = assert!(std::mem::size_of::<Msg>() <= 4 * crate::NODE_STATE_BYTES);
const _: () = assert!(std::mem::size_of::<Pending>() <= 2 * crate::NODE_STATE_BYTES);

/// The event-driven message-passing runtime: `N` nodes of
/// [`crate::NODE_STATE_BYTES`] protocol state each, exchanging
/// query/reply gossip through a seeded discrete-event scheduler with
/// per-message latency jitter, bounded FIFO inboxes, and
/// timeout-driven retries, with faults injected per the configured
/// [`crate::FaultPlan`].
///
/// All randomness — wake jitter, message latencies, protocol choices,
/// and fault realizations — derives from the seed passed to
/// [`EventRuntime::new`], so runs are exactly reproducible. Like
/// [`Runtime`](crate::Runtime) it implements
/// [`GroupDynamics`] and
/// [`ProtocolRuntime`], so every harness drives the two runtimes
/// interchangeably.
///
/// # Example
///
/// ```
/// use sociolearn_core::{GroupDynamics, Params};
/// use sociolearn_dist::{DistConfig, EventRuntime, FaultPlan};
///
/// let params = Params::new(3, 0.6)?;
/// let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(0, 40);
/// let mut net = EventRuntime::new(DistConfig::new(params, 64).with_faults(faults), 7);
/// for _ in 0..50 {
///     let rm = net.tick(&[true, false, false]);
///     assert!(rm.committed <= rm.alive);
/// }
/// assert_eq!(net.distribution().len(), 3);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventRuntime {
    cfg: DistConfig,
    queue_bound: usize,
    mode: Mode,
    /// The root seed, kept so [`with_scheduler`](EventRuntime::with_scheduler)
    /// can split per-node streams for the sharded engine.
    seed: u64,
    /// The sharded calendar engine, when
    /// [`SchedulerKind::ShardedCalendar`] is selected; `None` runs the
    /// original single-heap scheduler below.
    sharded: Option<Box<ShardedEngine>>,
    /// Multi-core execution knobs for the sharded engine — lookahead
    /// block width, worker-thread count, and the fan-out threshold.
    tuning: ExecTuning,
    rng: SmallRng,
    /// This epoch's committed option per node — the fleet's protocol
    /// state, double-buffered with `back` in quiesced mode. In async
    /// mode there is no double buffer: this vector always holds each
    /// node's most recent commitment, updated in place.
    choices: Vec<NodeState>,
    /// Last epoch's commitments: the snapshot peers answer from in
    /// quiesced mode. Async mode repurposes it as a one-slot history —
    /// `back[i]` is node `i`'s commitment as of its *previous*
    /// completed local epoch — so a responder can serve the snapshot
    /// nearest the epoch a query asks about.
    back: Vec<NodeState>,
    /// Crash + membership schedule with O(1) presence checks and an
    /// O(1) alive counter.
    members: MembershipTracker,
    /// Cached committed counts per option (this epoch in quiesced
    /// mode; the current commitments in async mode, maintained
    /// incrementally).
    counts: Vec<u64>,
    /// Per-node completed local epoch counters (async mode; in
    /// quiesced mode every node is implicitly at `round`).
    epochs: Vec<u64>,
    /// Per-node virtual time of the last wake-up — the async cadence
    /// anchor (unused in quiesced mode).
    last_wake: Vec<u64>,
    /// Virtual time already consumed by async ticks: each tick
    /// processes one [`ASYNC_EPOCH_PERIOD`] window past this mark
    /// (unused in quiesced mode, which owns the whole clock per tick).
    async_clock: u64,
    /// The event queue, keyed by `(virtual time, sequence)`. Reused
    /// across epochs.
    heap: BinaryHeap<Scheduled>,
    /// Per-node bounded FIFO inboxes. Reused across epochs.
    inboxes: Vec<VecDeque<Msg>>,
    /// Per-node transport bookkeeping for the current epoch.
    pending: Vec<Pending>,
    /// Per-node incarnation counters, bumped on every leave (async
    /// mode; see [`Event::Wake`]). Scheduler state, not protocol
    /// state.
    incs: Vec<u32>,
    /// Per-node bootstrapping flags (async mode): set when a node
    /// (re)joins, cleared when its first epoch decision lands.
    boot: Vec<bool>,
    /// Number of `boot` flags currently set, so the per-tick gauge is
    /// O(1).
    boot_count: u64,
    /// Monotone sequence number for deterministic event tie-breaks.
    seq: u64,
    /// High-water mark of any inbox, across all epochs.
    max_queue_depth: usize,
    /// Epochs completed.
    round: u64,
    metrics: Metrics,
}

impl EventRuntime {
    /// Boots a fleet from the uniform initialization (node `i` starts
    /// committed to option `i mod m`, matching both the in-memory
    /// dynamics and the round-synchronous runtime) with all randomness
    /// derived from `seed` and inboxes bounded at
    /// [`DEFAULT_QUEUE_BOUND`].
    pub fn new(cfg: DistConfig, seed: u64) -> Self {
        let m = cfg.params().num_options();
        let n = cfg.num_nodes();
        let members = MembershipTracker::new(cfg.faults(), n);
        let choices: Vec<NodeState> = (0..n)
            .map(|i| {
                if members.in_initial_fleet(i) {
                    crate::uniform_start_choice(i, m)
                } else {
                    NO_CHOICE
                }
            })
            .collect();
        let mut counts = vec![0u64; m];
        for &c in &choices {
            if c != NO_CHOICE {
                counts[c as usize] += 1;
            }
        }
        EventRuntime {
            queue_bound: DEFAULT_QUEUE_BOUND,
            mode: Mode::Quiesced,
            seed,
            sharded: None,
            tuning: ExecTuning::default(),
            rng: SmallRng::seed_from_u64(seed),
            choices,
            back: vec![NO_CHOICE; n],
            members,
            counts,
            epochs: vec![0; n],
            last_wake: vec![0; n],
            async_clock: 0,
            heap: BinaryHeap::new(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            pending: vec![Pending::default(); n],
            incs: vec![0; n],
            boot: vec![false; n],
            boot_count: 0,
            seq: 0,
            max_queue_depth: 0,
            round: 0,
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// Switches the scheduler to **fully-async overlapping epochs**:
    /// no quiescence barrier, per-node local epoch counters advanced
    /// the moment a reply or timeout fallback lands, and replies
    /// staler than `bound` withheld by the responder (counted in
    /// [`RoundMetrics::stale_replies`]).
    ///
    /// In this mode [`tick`](EventRuntime::tick) advances the
    /// scheduler through one [`ASYNC_EPOCH_PERIOD`] window of virtual
    /// time: a healthy node completes about one local epoch per tick
    /// on its own cadence, a faulty one falls behind, and in-flight
    /// messages survive from tick to tick.
    ///
    /// # Panics
    ///
    /// Panics if the runtime has already executed a tick — the epoch
    /// discipline is part of the deployment, not a per-round switch.
    pub fn with_async_epochs(mut self, bound: StalenessBound) -> Self {
        assert_eq!(
            self.round, 0,
            "execution model must be chosen before the first tick"
        );
        self.mode = Mode::Async(bound);
        self
    }

    /// Selects the scheduler that executes the event streams:
    /// [`SchedulerKind::SingleHeap`] (the default — one global
    /// `BinaryHeap` and one RNG stream) or
    /// [`SchedulerKind::ShardedCalendar`] (per-node-range shards over
    /// calendar queues with per-node RNG streams split from the root
    /// seed; byte-identical results for any shard count, same law as
    /// the single heap). Composes with
    /// [`with_async_epochs`](EventRuntime::with_async_epochs) and
    /// [`with_queue_bound`](EventRuntime::with_queue_bound) in any
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the runtime has already executed a tick, or if a
    /// sharded scheduler is requested with zero shards.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        assert_eq!(
            self.round, 0,
            "scheduler must be chosen before the first tick"
        );
        let n = self.cfg.num_nodes();
        let m = self.cfg.params().num_options();
        self.sharded = match kind {
            SchedulerKind::SingleHeap => {
                // Rebuild the (round-0) single-heap per-node state in
                // case a sharded engine shrank it away below.
                self.choices = (0..n)
                    .map(|i| {
                        if self.members.in_initial_fleet(i) {
                            crate::uniform_start_choice(i, m)
                        } else {
                            NO_CHOICE
                        }
                    })
                    .collect();
                self.back = vec![NO_CHOICE; n];
                self.epochs = vec![0; n];
                self.last_wake = vec![0; n];
                self.pending = vec![Pending::default(); n];
                self.incs = vec![0; n];
                self.boot = vec![false; n];
                self.boot_count = 0;
                self.inboxes = (0..n).map(|_| VecDeque::new()).collect();
                None
            }
            SchedulerKind::ShardedCalendar { shards } => {
                assert!(shards > 0, "shard count must be at least 1");
                // The engine owns all per-node state; free the
                // single-heap copies so fleet-scale deployments don't
                // carry both (`counts` stays — it is the cache every
                // accessor reads, synced from the engine each tick).
                self.choices = Vec::new();
                self.back = Vec::new();
                self.epochs = Vec::new();
                self.last_wake = Vec::new();
                self.pending = Vec::new();
                self.incs = Vec::new();
                self.boot = Vec::new();
                self.boot_count = 0;
                self.inboxes = Vec::new();
                self.heap = BinaryHeap::new();
                Some(Box::new(ShardedEngine::new(
                    &self.cfg,
                    self.seed,
                    shards,
                    &self.members,
                )))
            }
        };
        self
    }

    /// The scheduler executing this runtime. For sharded schedulers
    /// the reported shard count is the effective one (clamped to the
    /// fleet size).
    pub fn scheduler(&self) -> SchedulerKind {
        match &self.sharded {
            None => SchedulerKind::SingleHeap,
            Some(engine) => SchedulerKind::ShardedCalendar {
                shards: engine.num_shards(),
            },
        }
    }

    /// Replaces the per-node inbox capacity (default
    /// [`DEFAULT_QUEUE_BOUND`]). Smaller bounds increase backpressure
    /// drops and hence retries/fallbacks.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` (a node must be able to receive).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be at least 1");
        self.queue_bound = bound;
        self
    }

    /// Sets the sharded engine's **lookahead block width** `K`: each
    /// shard lane advances through `K` whole virtual-time windows
    /// before the cross-shard mailboxes drain at a barrier, cutting
    /// the barrier count by `K×` and giving worker threads `K` windows
    /// of work per fan-out. Messages due inside a block are deferred
    /// to the block boundary (`max(now + latency, block end)`), a
    /// partition-independent rule, so for a fixed `K` results stay
    /// byte-identical across shard counts and thread counts. `K = 1`
    /// (the default) is exactly the classic per-window barrier —
    /// existing seeds replay bit-for-bit; larger `K` is a different
    /// (equally valid) trajectory of the same protocol law.
    ///
    /// Requires the [`SchedulerKind::ShardedCalendar`] scheduler;
    /// [`tick`](EventRuntime::tick) panics if `K > 1` is combined with
    /// the single-heap scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the runtime has already executed a tick, or if
    /// `lookahead` is `0` or exceeds [`MAX_LOOKAHEAD`].
    pub fn with_lookahead(mut self, lookahead: u64) -> Self {
        assert_eq!(
            self.round, 0,
            "lookahead must be chosen before the first tick"
        );
        assert!(
            (1..=MAX_LOOKAHEAD).contains(&lookahead),
            "lookahead must be in 1..={MAX_LOOKAHEAD}, got {lookahead}"
        );
        self.tuning.lookahead = lookahead;
        self
    }

    /// Sets the worker-thread count for dense lookahead blocks in the
    /// sharded engine: `0` (the default) sizes the pool to the
    /// machine's available parallelism, `1` always sweeps lanes
    /// in-thread, and `t > 1` uses a persistent pool of `t` threads.
    /// Purely a cost knob — results are byte-identical for every
    /// value. Ignored by the single-heap scheduler (one heap has no
    /// lanes to fan out).
    ///
    /// # Panics
    ///
    /// Panics if the runtime has already executed a tick.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert_eq!(
            self.round, 0,
            "thread count must be chosen before the first tick"
        );
        self.tuning.threads = threads;
        self
    }

    /// Sets the fewest due events a lookahead block must hold before
    /// the sharded engine fans its lanes out on the worker pool;
    /// sparser blocks are swept in-thread. Purely a cost knob —
    /// results are byte-identical for every value. Mostly useful in
    /// tests, which set it to `0` to force the pool path at small
    /// fleet sizes.
    ///
    /// # Panics
    ///
    /// Panics if the runtime has already executed a tick.
    pub fn with_parallel_threshold(mut self, events: usize) -> Self {
        assert_eq!(
            self.round, 0,
            "parallel threshold must be chosen before the first tick"
        );
        self.tuning.parallel_threshold = events;
        self
    }

    /// The lookahead block width `K` (see
    /// [`with_lookahead`](EventRuntime::with_lookahead)).
    pub fn lookahead(&self) -> u64 {
        self.tuning.lookahead
    }

    /// The configured worker-thread count (see
    /// [`with_threads`](EventRuntime::with_threads); `0` = auto).
    pub fn threads(&self) -> usize {
        self.tuning.threads
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.cfg.num_nodes()
    }

    /// Epochs completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Cumulative message/fallback/backpressure counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Committed counts per option over alive nodes — last epoch's in
    /// quiesced mode, the instantaneous commitments in async mode.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of nodes present for the *next* epoch, in O(1). With
    /// membership churn this can grow as well as shrink.
    pub fn alive_count(&self) -> usize {
        self.members.alive()
    }

    /// The per-node inbox capacity.
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
    }

    /// The deepest any inbox has ever been — by construction never
    /// more than [`queue_bound`](EventRuntime::queue_bound).
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Whether the scheduler runs fully-async overlapping epochs.
    pub fn is_async(&self) -> bool {
        matches!(self.mode, Mode::Async(_))
    }

    /// The configured staleness bound, if the runtime is fully-async.
    pub fn staleness_bound(&self) -> Option<StalenessBound> {
        match self.mode {
            Mode::Quiesced => None,
            Mode::Async(bound) => Some(bound),
        }
    }

    /// `node`'s completed local epoch count. In quiesced mode every
    /// node completes exactly one epoch per tick, so this equals
    /// [`rounds_completed`](EventRuntime::rounds_completed); in async
    /// mode the counters drift apart as slow nodes fall behind.
    ///
    /// # Panics
    ///
    /// Panics if `node >= num_nodes()`.
    pub fn local_epoch(&self, node: usize) -> u64 {
        assert!(node < self.cfg.num_nodes(), "node out of range");
        match (self.mode, &self.sharded) {
            (Mode::Quiesced, _) => self.round,
            (Mode::Async(_), None) => self.epochs[node],
            (Mode::Async(_), Some(engine)) => engine.epoch_of(node),
        }
    }

    /// Max-minus-min completed local epoch over alive nodes — the
    /// fleet's current epoch overlap. Always 0 in quiesced mode (and
    /// for an all-crashed fleet).
    pub fn epoch_spread(&self) -> u64 {
        if !self.is_async() {
            return 0;
        }
        if let Some(engine) = &self.sharded {
            return engine.epoch_spread(&self.members);
        }
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut any = false;
        for (i, &e) in self.epochs.iter().enumerate() {
            if self.members.is_present(i) {
                any = true;
                lo = lo.min(e);
                hi = hi.max(e);
            }
        }
        if any {
            hi - lo
        } else {
            0
        }
    }

    /// Pushes an event onto the schedule.
    fn push(&mut self, at: u64, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    /// One latency draw for a message about to be sent.
    fn latency(&mut self) -> u64 {
        self.rng.gen_range(1..=MAX_MESSAGE_LATENCY)
    }

    /// Whether a message is lost on the link, per the fault plan.
    fn link_drops(&mut self) -> bool {
        let p = self.cfg.faults().drop_prob();
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// Offers `msg` to `node`'s bounded inbox; on success schedules
    /// the matching `Deliver`, on overflow drops it (backpressure).
    fn enqueue(&mut self, node: u32, msg: Msg, now: u64, rm: &mut RoundMetrics) {
        let inbox = &mut self.inboxes[node as usize];
        if inbox.len() >= self.queue_bound {
            rm.queue_drops += 1;
            return;
        }
        inbox.push_back(msg);
        self.max_queue_depth = self.max_queue_depth.max(inbox.len());
        self.push(now + DELIVER_DELAY, Event::Deliver { node });
    }

    /// Resolves node `i`'s stage 1 with `considered` and runs stage 2
    /// (adopt with the quality-dependent probability, else sit out).
    fn decide(&mut self, node: u32, considered: u32, rewards: &[bool], rm: &mut RoundMetrics) {
        let i = node as usize;
        debug_assert!(!self.pending[i].resolved, "node resolved twice");
        self.pending[i].resolved = true;
        let adopt_p = self
            .cfg
            .params()
            .adopt_probability(rewards[considered as usize]);
        if self.rng.gen_bool(adopt_p) {
            self.choices[i] = considered;
            self.counts[considered as usize] += 1;
            rm.committed += 1;
        }
    }

    /// Issues query `attempt` for `node` (or the uniform fallback once
    /// the retry budget is spent). `attempt == 1` is the stage-1 entry
    /// point and may take the `µ`-exploration branch instead.
    fn start_attempt(
        &mut self,
        node: u32,
        attempt: u32,
        now: u64,
        rewards: &[bool],
        rm: &mut RoundMetrics,
    ) {
        let i = node as usize;
        let n = self.cfg.num_nodes();
        let m = self.cfg.params().num_options();
        if attempt == 1 {
            let mu = self.cfg.params().mu();
            if self.rng.gen_bool(mu) {
                rm.explorations += 1;
                let considered = index_u32(self.rng.gen_range(0..m));
                self.decide(node, considered, rewards, rm);
                return;
            }
        }
        if attempt > MAX_QUERY_RETRIES || n == 1 {
            // Retry budget spent (or no peers to ask at all): uniform
            // fallback, exactly as in the round-synchronous runtime.
            rm.fallbacks += 1;
            let considered = index_u32(self.rng.gen_range(0..m));
            self.decide(node, considered, rewards, rm);
            return;
        }
        self.pending[i].attempt = attempt;
        rm.queries_sent += 1;
        // Ask a uniformly random *other* node what it used last epoch.
        let mut peer = self.rng.gen_range(0..n - 1);
        if peer >= i {
            peer += 1;
        }
        // The retry clock starts now, reply or no reply. (Quiesced
        // mode clears the heap every tick, so the epoch tag is inert.)
        self.push(
            now + RETRY_TIMEOUT,
            Event::Timeout {
                node,
                attempt,
                epoch: 0,
            },
        );
        // The query must survive the link to be scheduled for arrival.
        if !self.link_drops() {
            let at = now + self.latency();
            self.push(
                at,
                Event::QueryArrive {
                    from: node,
                    to: index_u32(peer),
                    epoch: 0,
                },
            );
        }
    }

    /// `node` pops and handles the head of its inbox.
    fn deliver(&mut self, node: u32, now: u64, rewards: &[bool], rm: &mut RoundMetrics) {
        let i = node as usize;
        let Some(msg) = self.inboxes[i].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from, epoch: _ } => {
                // Answer with the option committed last epoch; a node
                // that sat out stays silent and the querier's timeout
                // drives the retry.
                let option = self.back[i];
                if option != NO_CHOICE && !self.link_drops() {
                    let at = now + self.latency();
                    self.push(at, Event::ReplyArrive { node: from, option });
                }
            }
            Msg::Reply { option } => {
                if self.pending[i].resolved {
                    // A late duplicate (cannot normally happen: the
                    // timeout window exceeds the worst-case round
                    // trip), ignored for safety.
                    return;
                }
                rm.replies_received += 1;
                self.decide(node, option, rewards, rm);
            }
        }
    }

    /// Executes one scheduler round against the fresh reward signals,
    /// returning what happened.
    ///
    /// In the default epoch-quiesced mode the round is one epoch run
    /// to quiescence: every alive node resolves both protocol stages
    /// and the event queue drains completely. In fully-async mode
    /// ([`with_async_epochs`](EventRuntime::with_async_epochs)) the
    /// round is instead one [`ASYNC_EPOCH_PERIOD`] window of virtual
    /// time — roughly one local epoch per healthy node, less for nodes
    /// mired in retries, with no barrier and with in-flight messages
    /// carrying over into the next tick. Decisions made during the
    /// tick probe this tick's `rewards`, whatever local epoch they
    /// belong to.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    pub fn tick(&mut self, rewards: &[bool]) -> RoundMetrics {
        assert_eq!(
            rewards.len(),
            self.cfg.params().num_options(),
            "rewards length must equal the number of options"
        );
        if self.sharded.is_some() {
            return self.tick_sharded(rewards);
        }
        assert!(
            self.tuning.lookahead == 1,
            "lookahead > 1 requires SchedulerKind::ShardedCalendar"
        );
        match self.mode {
            Mode::Quiesced => self.tick_quiesced(rewards),
            Mode::Async(bound) => self.tick_async(rewards, bound),
        }
    }

    /// One tick routed through the sharded calendar engine. The
    /// engine owns the per-node state; this wrapper keeps the
    /// runtime-level clocks, counters, and count cache in sync.
    fn tick_sharded(&mut self, rewards: &[bool]) -> RoundMetrics {
        self.round += 1;
        let t = self.round;
        let engine = self.sharded.as_mut().expect("sharded scheduler selected");
        let rm = engine.tick(
            self.mode,
            &self.cfg,
            self.queue_bound,
            &self.members,
            t,
            rewards,
            &self.tuning,
        );
        engine.write_counts(&mut self.counts);
        self.max_queue_depth = self.max_queue_depth.max(engine.max_queue_depth());
        self.members.advance_to(t + 1);
        self.metrics.absorb(&rm);
        rm
    }

    /// One epoch run to quiescence (the default mode).
    fn tick_quiesced(&mut self, rewards: &[bool]) -> RoundMetrics {
        self.round += 1;
        let t = self.round;
        let n = self.cfg.num_nodes();

        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };

        // Swap buffers: `back` now holds last epoch's commitments (the
        // queryable snapshot); `choices` is rewritten over the epoch.
        std::mem::swap(&mut self.choices, &mut self.back);
        self.counts.fill(0);
        self.heap.clear();
        self.seq = 0;
        for inbox in &mut self.inboxes {
            inbox.clear();
        }

        // Membership transitions land at the epoch boundary. With the
        // barrier, every (re)join bootstraps and resolves within this
        // very epoch, so the gauge is just the inflow.
        for &(_, kind) in self.members.recent() {
            match kind {
                Transition::Join => rm.joins += 1,
                Transition::Leave => rm.leaves += 1,
                Transition::Rejoin => rm.rejoins += 1,
                Transition::Crash => {}
            }
        }
        rm.bootstrapping = rm.joins + rm.rejoins;

        // Present nodes wake at jittered times; dead or departed nodes
        // are resolved (and silent) from the start. A node that just
        // (re)joined has `back == NO_CHOICE` (absent epochs write
        // NO_CHOICE) and bootstraps through the ordinary query path.
        for i in 0..n {
            self.choices[i] = NO_CHOICE;
            if self.members.is_present(i) {
                rm.alive += 1;
                self.pending[i] = Pending::default();
                let at = self.rng.gen_range(0..WAKE_SPREAD);
                self.push(
                    at,
                    Event::Wake {
                        node: index_u32(i),
                        inc: 0,
                    },
                );
            } else {
                // An absent node answers nothing: its snapshot slot is
                // cleared so a query landing here finds no commitment.
                self.back[i] = NO_CHOICE;
                self.pending[i] = Pending {
                    attempt: 0,
                    resolved: true,
                };
            }
        }
        debug_assert_eq!(rm.alive, self.members.alive(), "alive counter drifted");

        while let Some(Scheduled { at, ev, .. }) = self.heap.pop() {
            match ev {
                Event::Wake { node, .. } => self.start_attempt(node, 1, at, rewards, &mut rm),
                Event::QueryArrive { from, to, epoch } => {
                    // An absent peer (crashed or departed) swallows the
                    // query; the querier's timeout drives the retry.
                    if self.members.is_present(to as usize) {
                        self.enqueue(to, Msg::Query { from, epoch }, at, &mut rm);
                    }
                }
                Event::ReplyArrive { node, option } => {
                    self.enqueue(node, Msg::Reply { option }, at, &mut rm);
                }
                Event::Deliver { node } => self.deliver(node, at, rewards, &mut rm),
                Event::Timeout {
                    node,
                    attempt,
                    epoch: _,
                } => {
                    let p = self.pending[node as usize];
                    if !p.resolved && p.attempt == attempt {
                        self.start_attempt(node, attempt + 1, at, rewards, &mut rm);
                    }
                }
            }
        }
        debug_assert!(
            self.pending.iter().all(|p| p.resolved),
            "epoch ended with unresolved nodes"
        );

        self.members.advance_to(t + 1);
        self.metrics.absorb(&rm);
        rm
    }

    /// Replaces node `i`'s current commitment, keeping the running
    /// per-option counts in sync (async mode maintains `counts`
    /// incrementally instead of rebuilding it every epoch).
    fn set_commit(&mut self, i: usize, new: NodeState) {
        let old = self.choices[i];
        if old != NO_CHOICE {
            self.counts[old as usize] -= 1;
        }
        if new != NO_CHOICE {
            self.counts[new as usize] += 1;
        }
        self.choices[i] = new;
    }

    /// Async stage 2: adopt or sit out, complete the local epoch, and
    /// schedule the next wake-up on the node's own cadence — the
    /// moment the barrier-free design hinges on: nothing here waits
    /// for the rest of the fleet.
    fn decide_async(
        &mut self,
        node: u32,
        considered: u32,
        now: u64,
        rewards: &[bool],
        rm: &mut RoundMetrics,
    ) {
        let i = node as usize;
        debug_assert!(!self.pending[i].resolved, "node resolved twice");
        self.pending[i].resolved = true;
        if self.boot[i] {
            // First epoch decision after a (re)join: the bootstrap is
            // over, whatever stage 1 produced.
            self.boot[i] = false;
            self.boot_count -= 1;
        }
        let adopt_p = self
            .cfg
            .params()
            .adopt_probability(rewards[considered as usize]);
        // The commitment being superseded becomes the one-slot
        // history peers can still be served from.
        self.back[i] = self.choices[i];
        if self.rng.gen_bool(adopt_p) {
            self.set_commit(i, considered);
            rm.committed += 1;
        } else {
            self.set_commit(i, NO_CHOICE);
        }
        self.epochs[i] += 1;
        // Next local epoch: one period after the last wake-up, or
        // immediately (plus jitter) if this epoch overran the period —
        // that overrun is how slow nodes drift behind their peers
        // (they catch back up by running epochs back-to-back once the
        // retry storm passes).
        let cadence = self.last_wake[i] + ASYNC_EPOCH_PERIOD;
        let at = cadence.max(now + 1) + self.rng.gen_range(0..ASYNC_WAKE_JITTER);
        self.push(
            at,
            Event::Wake {
                node,
                inc: self.incs[i],
            },
        );
    }

    /// Async counterpart of [`start_attempt`](EventRuntime::start_attempt):
    /// queries and timeouts are tagged with the local epoch that
    /// issued them, because the heap is never cleared and an abandoned
    /// timeout may surface epochs later.
    ///
    /// Deliberately mirrors the quiesced path stage for stage
    /// (µ-branch, retry budget, peer pick, timeout clock, link drop)
    /// rather than sharing code with it: the two must make the same
    /// protocol decisions in the same RNG order for the cross-mode
    /// law-equivalence tests to hold, so any change here must be
    /// mirrored in `start_attempt` and vice versa.
    fn start_attempt_async(
        &mut self,
        node: u32,
        attempt: u32,
        now: u64,
        rewards: &[bool],
        rm: &mut RoundMetrics,
    ) {
        let i = node as usize;
        let n = self.cfg.num_nodes();
        let m = self.cfg.params().num_options();
        if attempt == 1 {
            let mu = self.cfg.params().mu();
            if self.rng.gen_bool(mu) {
                rm.explorations += 1;
                let considered = index_u32(self.rng.gen_range(0..m));
                self.decide_async(node, considered, now, rewards, rm);
                return;
            }
        }
        if attempt > MAX_QUERY_RETRIES || n == 1 {
            rm.fallbacks += 1;
            let considered = index_u32(self.rng.gen_range(0..m));
            self.decide_async(node, considered, now, rewards, rm);
            return;
        }
        self.pending[i].attempt = attempt;
        rm.queries_sent += 1;
        let mut peer = self.rng.gen_range(0..n - 1);
        if peer >= i {
            peer += 1;
        }
        let epoch = self.epochs[i] + 1;
        self.push(
            now + RETRY_TIMEOUT,
            Event::Timeout {
                node,
                attempt,
                epoch,
            },
        );
        if !self.link_drops() {
            let at = now + self.latency();
            self.push(
                at,
                Event::QueryArrive {
                    from: node,
                    to: index_u32(peer),
                    epoch,
                },
            );
        }
    }

    /// Async counterpart of [`deliver`](EventRuntime::deliver): peers
    /// answer from their *latest* commitment (there is no previous-
    /// epoch snapshot without a barrier), and a responder whose
    /// information is staler than the bound withholds its reply.
    fn deliver_async(
        &mut self,
        node: u32,
        now: u64,
        rewards: &[bool],
        rm: &mut RoundMetrics,
        bound: StalenessBound,
    ) {
        let i = node as usize;
        let Some(msg) = self.inboxes[i].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from, epoch } => {
                // The querier at local epoch `e` would, under
                // synchronized execution, copy information committed
                // at epoch `e - 1`. Serve the snapshot nearest that
                // epoch: the latest commitment if the responder is at
                // or behind the requested epoch (staleness = the gap),
                // else the one-slot history (a responder that already
                // completed the requested epoch still holds what it
                // committed then; one that raced further ahead serves
                // the oldest it has — fresher than asked, never
                // stale). Withhold the reply when the served
                // information is staler than the bound, and let the
                // querier's timeout drive its retry.
                let want = epoch.saturating_sub(1);
                let r = self.epochs[i];
                let (option, stale) = if want >= r {
                    (self.choices[i], want - r)
                } else {
                    (self.back[i], 0)
                };
                // Nothing to report after sitting that epoch out.
                if option == NO_CHOICE {
                    return;
                }
                if !bound.allows(stale) {
                    rm.stale_replies += 1;
                    return;
                }
                if !self.link_drops() {
                    let at = now + self.latency();
                    self.push(at, Event::ReplyArrive { node: from, option });
                }
            }
            Msg::Reply { option } => {
                if self.pending[i].resolved {
                    // A late duplicate (cannot normally happen: a
                    // delivered reply always beats its timeout).
                    return;
                }
                rm.replies_received += 1;
                self.decide_async(node, option, now, rewards, rm);
            }
        }
    }

    /// One fully-async tick: advance the scheduler through exactly one
    /// [`ASYNC_EPOCH_PERIOD`] window of virtual time. No barrier of
    /// any kind — a healthy node completes about one local epoch per
    /// window on its own cadence, a node mired in retry timeouts
    /// completes less than one and genuinely falls behind the fleet
    /// (catching up later by running epochs back-to-back), and
    /// in-flight messages, pending timeouts, and future wake-ups all
    /// survive into the next tick.
    fn tick_async(&mut self, rewards: &[bool], bound: StalenessBound) -> RoundMetrics {
        self.round += 1;
        let t = self.round;
        let n = self.cfg.num_nodes();
        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };

        // Membership transitions land at the tick boundary, processed
        // in node order (the tracker's timeline order) so every
        // scheduler realizes the same sequence. A departing node's
        // commitment leaves the popularity counts, its history and
        // pending attempt are wiped (a rejoiner remembers nothing),
        // and a leave bumps its incarnation so wake-ups scheduled in
        // its old life die on arrival. A (re)joining node enters
        // bootstrapping and gets a jittered boot wake-up; everything
        // after that is the ordinary protocol.
        if self.members.any_scheduled() && !self.members.recent().is_empty() {
            let recent: Vec<(u32, Transition)> = self.members.recent().to_vec();
            for &(node, kind) in &recent {
                let i = node as usize;
                match kind {
                    Transition::Leave | Transition::Crash => {
                        if kind == Transition::Leave {
                            rm.leaves += 1;
                            self.incs[i] = self.incs[i].wrapping_add(1);
                        }
                        if self.choices[i] != NO_CHOICE {
                            self.set_commit(i, NO_CHOICE);
                        }
                        self.back[i] = NO_CHOICE;
                        self.pending[i] = Pending {
                            attempt: 0,
                            resolved: true,
                        };
                        if self.boot[i] {
                            self.boot[i] = false;
                            self.boot_count -= 1;
                        }
                    }
                    Transition::Join | Transition::Rejoin => {
                        if kind == Transition::Join {
                            rm.joins += 1;
                        } else {
                            rm.rejoins += 1;
                        }
                        if !self.boot[i] {
                            self.boot[i] = true;
                            self.boot_count += 1;
                        }
                        // The t == 1 seeding loop below covers nodes
                        // present from the start; later (re)joins
                        // schedule their own boot wake here.
                        if t > 1 {
                            let at = self.async_clock + self.rng.gen_range(0..WAKE_SPREAD);
                            self.push(
                                at,
                                Event::Wake {
                                    node,
                                    inc: self.incs[i],
                                },
                            );
                        }
                    }
                }
            }
        }
        rm.alive = self.members.alive();
        rm.bootstrapping = self.boot_count;

        // The very first tick seeds every node's epoch loop; from then
        // on each node perpetually re-schedules its own wake-ups.
        if t == 1 {
            for i in 0..n {
                if self.members.is_present(i) {
                    let at = self.rng.gen_range(0..WAKE_SPREAD);
                    self.push(
                        at,
                        Event::Wake {
                            node: index_u32(i),
                            inc: self.incs[i],
                        },
                    );
                }
            }
        }

        let window_end = self.async_clock + ASYNC_EPOCH_PERIOD;
        while self
            .heap
            .peek()
            .is_some_and(|scheduled| scheduled.at < window_end)
        {
            let Scheduled { at, ev, .. } = self.heap.pop().expect("peeked entry");
            match ev {
                Event::Wake { node, inc } => {
                    let i = node as usize;
                    // The incarnation tag kills wake-ups scheduled
                    // before a leave: they are the only events whose
                    // horizon (~WAKE_SPREAD + ASYNC_EPOCH_PERIOD)
                    // outlives a one-round absence.
                    if self.members.is_present(i) && inc == self.incs[i] {
                        self.pending[i] = Pending::default();
                        self.last_wake[i] = at;
                        self.start_attempt_async(node, 1, at, rewards, &mut rm);
                    }
                }
                Event::QueryArrive { from, to, epoch } => {
                    if self.members.is_present(to as usize) {
                        self.enqueue(to, Msg::Query { from, epoch }, at, &mut rm);
                    }
                }
                Event::ReplyArrive { node, option } => {
                    if self.members.is_present(node as usize) {
                        self.enqueue(node, Msg::Reply { option }, at, &mut rm);
                    }
                }
                Event::Deliver { node } => {
                    if self.members.is_present(node as usize) {
                        self.deliver_async(node, at, rewards, &mut rm, bound);
                    } else {
                        // Keep deliveries 1:1 with enqueues even for
                        // the dead.
                        self.inboxes[node as usize].pop_front();
                    }
                }
                Event::Timeout {
                    node,
                    attempt,
                    epoch,
                } => {
                    let i = node as usize;
                    if self.members.is_present(i) {
                        let p = self.pending[i];
                        // The epoch tag rejects timeouts abandoned by
                        // an earlier local epoch.
                        if !p.resolved && p.attempt == attempt && self.epochs[i] + 1 == epoch {
                            self.start_attempt_async(node, attempt + 1, at, rewards, &mut rm);
                        }
                    }
                }
            }
        }
        self.async_clock = window_end;

        self.members.advance_to(t + 1);
        self.metrics.absorb(&rm);
        rm
    }
}

impl GroupDynamics for EventRuntime {
    fn num_options(&self) -> usize {
        self.cfg.params().num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.cfg.params().num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    /// Advances one epoch. Like the round-synchronous runtime, the
    /// event-driven runtime draws all randomness from its own seed;
    /// the caller's RNG is ignored.
    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.tick(rewards);
    }

    fn label(&self) -> &str {
        match self.mode {
            Mode::Quiesced => "social (event-driven)",
            Mode::Async(_) => "social (event-driven, async)",
        }
    }
}

impl ProtocolRuntime for EventRuntime {
    fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        self.tick(rewards)
    }

    fn metrics(&self) -> Metrics {
        EventRuntime::metrics(self)
    }

    fn num_nodes(&self) -> usize {
        EventRuntime::num_nodes(self)
    }

    fn alive_count(&self) -> usize {
        EventRuntime::alive_count(self)
    }

    fn rounds_completed(&self) -> u64 {
        EventRuntime::rounds_completed(self)
    }

    fn execution_model(&self) -> ExecutionModel {
        match self.mode {
            Mode::Quiesced => ExecutionModel::EpochQuiesced,
            Mode::Async(_) => ExecutionModel::FullyAsync,
        }
    }

    fn epoch_skew(&self) -> u64 {
        self.epoch_spread()
    }

    fn write_shard_loads(&self, out: &mut Vec<usize>) {
        match &self.sharded {
            Some(engine) => engine.write_shard_loads(&self.members, out),
            None => out.push(self.alive_count()),
        }
    }

    fn shard_rebalances(&self) -> u64 {
        self.sharded.as_ref().map_or(0, |e| e.rebalances())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use sociolearn_core::Params;

    fn params() -> Params {
        Params::new(2, 0.65).unwrap()
    }

    #[test]
    fn initialization_matches_uniform_start() {
        let net = EventRuntime::new(DistConfig::new(Params::new(3, 0.6).unwrap(), 7), 1);
        assert_eq!(net.counts(), &[3, 2, 2]);
        let q = net.distribution();
        assert!((q[0] - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_network_converges_to_best_option() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 500), 2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.tick(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn epoch_metrics_are_internally_consistent() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 4);
        for _ in 0..50 {
            let rm = net.tick(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.alive <= 64);
            assert!(rm.replies_received <= rm.queries_sent);
            assert!(rm.queries_sent <= 64 * MAX_QUERY_RETRIES as u64);
            let handled = rm.explorations + rm.fallbacks + rm.replies_received;
            assert!(
                handled >= rm.alive as u64,
                "every alive node resolves stage 1"
            );
        }
        assert!(net.max_queue_depth() <= net.queue_bound());
        let m = net.metrics();
        assert_eq!(m.rounds, 50);
        assert!(m.messages_per_round() > 0.0);
    }

    #[test]
    fn total_loss_means_no_replies() {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 40).with_faults(faults), 5);
        for _ in 0..20 {
            net.tick(&[true, true]);
        }
        assert_eq!(net.metrics().replies_received, 0);
        assert!(net.metrics().fallbacks > 0);
    }

    #[test]
    fn crashed_nodes_leave_the_distribution() {
        let faults = FaultPlan::none().crash(0, 1).crash(1, 1).crash(2, 1);
        let mut net = EventRuntime::new(DistConfig::new(params(), 4).with_faults(faults), 6);
        let rm = net.tick(&[true, true]);
        assert_eq!(rm.alive, 1);
        assert_eq!(net.alive_count(), 1);
        assert!(net.counts().iter().sum::<u64>() <= 1);
    }

    #[test]
    fn single_node_fleet_never_queries() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 1), 7);
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert_eq!(net.metrics().queries_sent, 0);
        assert!(net.metrics().explorations + net.metrics().fallbacks > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net =
                EventRuntime::new(DistConfig::new(params(), 50).with_faults(faults), seed);
            let mut out = Vec::new();
            for t in 0..40 {
                net.tick(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, net.metrics())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn tiny_queue_bound_is_respected_under_load() {
        // A bound of 1 forces heavy backpressure in a dense fleet; the
        // high-water mark must never exceed the bound and drops must
        // be visible in the metrics.
        let mut net = EventRuntime::new(DistConfig::new(params(), 128), 9).with_queue_bound(1);
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert!(net.max_queue_depth() <= 1);
        assert!(net.metrics().queue_drops > 0, "bound 1 never overflowed");
        // Backpressure degrades copying but never learning.
        assert!(net.distribution()[0] > 0.5);
    }

    #[test]
    fn run_batch_matches_tick_loop() {
        let schedule: Vec<Vec<bool>> = (0..25).map(|t| vec![t % 2 == 0, t % 5 == 0]).collect();
        let faults = FaultPlan::with_drop_prob(0.1).unwrap().crash(2, 9);
        let mut batched = EventRuntime::new(
            DistConfig::new(params(), 30).with_faults(faults.clone()),
            13,
        );
        let mut looped = EventRuntime::new(DistConfig::new(params(), 30).with_faults(faults), 13);
        let batch = batched.run_batch(&schedule);
        for rewards in &schedule {
            looped.tick(rewards);
        }
        assert_eq!(batched.distribution(), looped.distribution());
        assert_eq!(batch, looped.metrics());
    }

    #[test]
    fn step_ignores_external_rng_stream() {
        let drive = |ext_seed: u64| {
            let mut net = EventRuntime::new(DistConfig::new(params(), 80), 13);
            let mut ext = SmallRng::seed_from_u64(ext_seed);
            for _ in 0..20 {
                net.step(&[true, false], &mut ext);
            }
            net.distribution()
        };
        assert_eq!(drive(1), drive(999));
    }

    #[test]
    fn async_clean_network_converges_to_best_option() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 500), 2)
            .with_async_epochs(StalenessBound::Unbounded);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.tick(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn async_local_epochs_are_monotone_and_track_the_tick_cadence() {
        let faults = FaultPlan::with_drop_prob(0.4).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 60).with_faults(faults), 8)
            .with_async_epochs(StalenessBound::Epochs(1));
        let mut prev = vec![0u64; 60];
        for t in 1..=40u64 {
            net.tick(&[true, false]);
            for (i, slot) in prev.iter_mut().enumerate() {
                let e = net.local_epoch(i);
                assert!(e >= *slot, "node {i} epoch went backwards");
                // The cadence caps progress at about one epoch per
                // tick; retries under 40% loss may slow a node well
                // below that, but never to a crawl.
                assert!(e <= t + 2, "node {i} outran its cadence: {e} > {t} + 2");
                assert!(e >= t / 8, "node {i} stalled: {e} << {t}");
                *slot = e;
            }
        }
    }

    #[test]
    fn async_epochs_overlap_under_message_loss() {
        // Loss forces retry storms on some nodes while others cruise,
        // so local epochs must drift apart — the barrier really is
        // gone. (Quiesced mode reports spread 0 by definition.)
        let faults = FaultPlan::with_drop_prob(0.5).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 200).with_faults(faults), 5)
            .with_async_epochs(StalenessBound::Unbounded);
        let mut max_spread = 0;
        for _ in 0..60 {
            net.tick(&[true, false]);
            max_spread = max_spread.max(net.epoch_spread());
        }
        assert!(max_spread > 0, "epochs never overlapped");
    }

    #[test]
    fn async_unbounded_staleness_never_counts_stale_replies() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap().crash(1, 8);
        let mut net = EventRuntime::new(DistConfig::new(params(), 80).with_faults(faults), 6)
            .with_async_epochs(StalenessBound::Unbounded);
        for _ in 0..50 {
            let rm = net.tick(&[true, false]);
            assert_eq!(rm.stale_replies, 0);
        }
        assert_eq!(net.metrics().stale_replies, 0);
    }

    #[test]
    fn async_tight_staleness_bound_withholds_replies_under_loss() {
        // Heavy loss spreads the fleet's local epochs; with bound 0,
        // laggards must refuse queries from the nodes that raced
        // ahead.
        let faults = FaultPlan::with_drop_prob(0.6).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 150).with_faults(faults), 7)
            .with_async_epochs(StalenessBound::Epochs(0));
        for _ in 0..80 {
            net.tick(&[true, false]);
        }
        assert!(
            net.metrics().stale_replies > 0,
            "bound 0 under 60% loss never found a stale responder"
        );
        // Withheld replies push queriers toward retries/fallbacks, but
        // learning must survive.
        assert!(net.distribution()[0] > 0.5);
    }

    #[test]
    fn async_deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net =
                EventRuntime::new(DistConfig::new(params(), 50).with_faults(faults), seed)
                    .with_async_epochs(StalenessBound::Epochs(2));
            let mut out = Vec::new();
            for t in 0..40 {
                net.tick(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, net.metrics())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn async_crashed_nodes_leave_the_distribution_and_stop_pacing() {
        let faults = FaultPlan::none().crash(0, 5).crash(1, 5);
        let mut net = EventRuntime::new(DistConfig::new(params(), 6).with_faults(faults), 9)
            .with_async_epochs(StalenessBound::Unbounded);
        for _ in 0..20 {
            net.tick(&[true, true]);
        }
        assert_eq!(net.alive_count(), 4);
        assert!(net.counts().iter().sum::<u64>() <= 4);
        // Dead nodes' epochs froze at or near the crash round; the
        // fleet kept ticking past them.
        assert!(net.local_epoch(0) < net.local_epoch(5));
    }

    #[test]
    fn async_single_node_fleet_never_queries() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 1), 7)
            .with_async_epochs(StalenessBound::Epochs(0));
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert_eq!(net.metrics().queries_sent, 0);
        assert!(net.metrics().explorations + net.metrics().fallbacks > 0);
    }

    #[test]
    fn async_total_loss_means_no_replies() {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 40).with_faults(faults), 5)
            .with_async_epochs(StalenessBound::Unbounded);
        for _ in 0..20 {
            net.tick(&[true, true]);
        }
        assert_eq!(net.metrics().replies_received, 0);
        assert!(net.metrics().fallbacks > 0);
    }

    #[test]
    fn execution_models_are_reported_through_the_trait() {
        let quiesced = EventRuntime::new(DistConfig::new(params(), 4), 1);
        let asynch = EventRuntime::new(DistConfig::new(params(), 4), 1)
            .with_async_epochs(StalenessBound::Epochs(3));
        assert_eq!(
            ProtocolRuntime::execution_model(&quiesced),
            ExecutionModel::EpochQuiesced
        );
        assert_eq!(
            ProtocolRuntime::execution_model(&asynch),
            ExecutionModel::FullyAsync
        );
        assert!(!quiesced.is_async());
        assert!(asynch.is_async());
        assert_eq!(asynch.staleness_bound(), Some(StalenessBound::Epochs(3)));
        assert_eq!(quiesced.staleness_bound(), None);
        assert_eq!(asynch.label(), "social (event-driven, async)");
    }

    #[test]
    fn staleness_bound_allows_and_formats() {
        assert!(StalenessBound::Unbounded.allows(u64::MAX));
        assert!(StalenessBound::Epochs(2).allows(2));
        assert!(!StalenessBound::Epochs(2).allows(3));
        assert_eq!(StalenessBound::Unbounded.to_string(), "unbounded");
        assert_eq!(StalenessBound::Epochs(4).to_string(), "4");
    }

    /// Drives one runtime config under every scheduler/shard-count in
    /// `kinds`, returning (per-tick distributions, per-tick round
    /// metrics, final cumulative metrics) per kind.
    #[allow(clippy::type_complexity)]
    fn drive_kinds(
        make: impl Fn() -> EventRuntime,
        kinds: &[SchedulerKind],
        ticks: u64,
    ) -> Vec<(Vec<Vec<f64>>, Vec<RoundMetrics>, Metrics)> {
        kinds
            .iter()
            .map(|&kind| {
                let mut net = make().with_scheduler(kind);
                let mut dists = Vec::new();
                let mut rms = Vec::new();
                for t in 0..ticks {
                    rms.push(net.tick(&[t % 2 == 0, t % 3 == 0]));
                    dists.push(net.distribution());
                }
                (dists, rms, EventRuntime::metrics(&net))
            })
            .collect()
    }

    #[test]
    fn sharded_results_are_byte_identical_across_shard_counts() {
        let kinds = [
            SchedulerKind::ShardedCalendar { shards: 1 },
            SchedulerKind::ShardedCalendar { shards: 2 },
            SchedulerKind::ShardedCalendar { shards: 4 },
            SchedulerKind::ShardedCalendar { shards: 7 },
        ];
        let faults = FaultPlan::with_drop_prob(0.3)
            .unwrap()
            .crash(5, 9)
            .crash(24, 9);
        let make = || {
            EventRuntime::new(
                DistConfig::new(params(), 50).with_faults(faults.clone()),
                11,
            )
        };
        let runs = drive_kinds(make, &kinds, 30);
        for run in &runs[1..] {
            assert_eq!(
                runs[0].0, run.0,
                "distributions diverged across shard counts"
            );
            assert_eq!(
                runs[0].1, run.1,
                "round metrics diverged across shard counts"
            );
            assert_eq!(runs[0].2, run.2, "metrics diverged across shard counts");
        }
    }

    #[test]
    fn sharded_async_results_are_byte_identical_across_shard_counts() {
        let kinds = [
            SchedulerKind::ShardedCalendar { shards: 1 },
            SchedulerKind::ShardedCalendar { shards: 2 },
            SchedulerKind::ShardedCalendar { shards: 4 },
        ];
        let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
        let make = || {
            EventRuntime::new(
                DistConfig::new(params(), 48).with_faults(faults.clone()),
                13,
            )
            .with_async_epochs(StalenessBound::Epochs(1))
        };
        let runs = drive_kinds(make, &kinds, 40);
        for run in &runs[1..] {
            assert_eq!(
                runs[0].0, run.0,
                "distributions diverged across shard counts"
            );
            assert_eq!(
                runs[0].1, run.1,
                "round metrics diverged across shard counts"
            );
            assert_eq!(runs[0].2, run.2, "metrics diverged across shard counts");
        }
    }

    /// Runs `ticks` rounds with the given execution knobs and returns
    /// the full observable trajectory (distributions, round metrics,
    /// cumulative metrics).
    fn drive_tuned(
        make: impl Fn() -> EventRuntime,
        shards: usize,
        lookahead: u64,
        threads: usize,
        ticks: u64,
    ) -> (Vec<Vec<f64>>, Vec<RoundMetrics>, Metrics) {
        let mut net = make()
            .with_scheduler(SchedulerKind::ShardedCalendar { shards })
            .with_lookahead(lookahead)
            .with_threads(threads)
            // Force the pool path even at unit-test fleet sizes.
            .with_parallel_threshold(0);
        let mut dists = Vec::new();
        let mut rms = Vec::new();
        for t in 0..ticks {
            rms.push(net.tick(&[t % 2 == 0, t % 3 == 0]));
            dists.push(net.distribution());
        }
        (dists, rms, net.metrics())
    }

    #[test]
    fn lookahead_results_are_byte_identical_across_shards_and_threads() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap().crash(5, 9);
        for async_mode in [false, true] {
            let make = || {
                let net = EventRuntime::new(
                    DistConfig::new(params(), 50).with_faults(faults.clone()),
                    11,
                );
                if async_mode {
                    net.with_async_epochs(StalenessBound::Epochs(1))
                } else {
                    net
                }
            };
            for lookahead in [2, 4] {
                let baseline = drive_tuned(make, 1, lookahead, 1, 25);
                for (shards, threads) in [(1, 2), (4, 1), (4, 2), (7, 2)] {
                    let run = drive_tuned(make, shards, lookahead, threads, 25);
                    assert_eq!(
                        baseline, run,
                        "trajectory diverged at async={async_mode} K={lookahead} \
                         shards={shards} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn lookahead_one_replays_the_classic_trajectory() {
        // K = 1 must replay existing seeds bit-for-bit, pool or not.
        let make = || EventRuntime::new(DistConfig::new(params(), 50), 11);
        let classic = drive_kinds(make, &[SchedulerKind::ShardedCalendar { shards: 4 }], 25);
        let tuned = drive_tuned(make, 4, 1, 2, 25);
        assert_eq!(classic[0], tuned, "K = 1 diverged from the classic path");
    }

    #[test]
    #[should_panic(expected = "lookahead > 1 requires SchedulerKind::ShardedCalendar")]
    fn single_heap_tick_rejects_lookahead() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 8), 1).with_lookahead(2);
        net.tick(&[true, false]);
    }

    #[test]
    #[should_panic(expected = "lookahead must be in")]
    fn zero_lookahead_is_rejected() {
        let _ = EventRuntime::new(DistConfig::new(params(), 8), 1).with_lookahead(0);
    }

    #[test]
    #[should_panic(expected = "lookahead must be in")]
    fn oversized_lookahead_is_rejected() {
        let _ =
            EventRuntime::new(DistConfig::new(params(), 8), 1).with_lookahead(MAX_LOOKAHEAD + 1);
    }

    #[test]
    fn lookahead_and_thread_knobs_are_reported() {
        let net = EventRuntime::new(DistConfig::new(params(), 8), 1)
            .with_lookahead(4)
            .with_threads(2);
        assert_eq!(net.lookahead(), 4);
        assert_eq!(net.threads(), 2);
        let default = EventRuntime::new(DistConfig::new(params(), 8), 1);
        assert_eq!(default.lookahead(), 1);
        assert_eq!(default.threads(), 0);
    }

    #[test]
    fn sharded_clean_network_converges_to_best_option() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 500), 2)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.tick(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn sharded_async_clean_network_converges_to_best_option() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 500), 2)
            .with_async_epochs(StalenessBound::Unbounded)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.tick(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn sharded_epoch_metrics_are_internally_consistent() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 4)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        for _ in 0..50 {
            let rm = net.tick(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.alive <= 64);
            assert!(rm.replies_received <= rm.queries_sent);
            let handled = rm.explorations + rm.fallbacks + rm.replies_received;
            assert!(
                handled >= rm.alive as u64,
                "every alive node resolves stage 1"
            );
        }
        assert!(net.max_queue_depth() <= net.queue_bound());
        let m = EventRuntime::metrics(&net);
        assert_eq!(m.rounds, 50);
        assert!(m.messages_per_round() > 0.0);
    }

    #[test]
    fn sharded_scheduler_reports_effective_shard_count() {
        let net = EventRuntime::new(DistConfig::new(params(), 4), 1);
        assert_eq!(net.scheduler(), SchedulerKind::SingleHeap);
        let sharded = net.with_scheduler(SchedulerKind::ShardedCalendar { shards: 2 });
        assert_eq!(
            sharded.scheduler(),
            SchedulerKind::ShardedCalendar { shards: 2 }
        );
        // Shard counts beyond the fleet size clamp to one node/shard.
        let tiny = EventRuntime::new(DistConfig::new(params(), 3), 1)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 16 });
        assert_eq!(
            tiny.scheduler(),
            SchedulerKind::ShardedCalendar { shards: 3 }
        );
        // An awkward split (9 nodes, 8 shards) still yields exactly 8
        // lanes — the partition balances range sizes instead of
        // rounding the lane count down.
        let mut awkward = EventRuntime::new(DistConfig::new(params(), 9), 1)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 8 });
        assert_eq!(
            awkward.scheduler(),
            SchedulerKind::ShardedCalendar { shards: 8 }
        );
        let rm = awkward.tick(&[true, false]);
        assert_eq!(rm.alive, 9);
        // Selecting the single heap again is a no-op round trip.
        let back = tiny.with_scheduler(SchedulerKind::SingleHeap);
        assert_eq!(back.scheduler(), SchedulerKind::SingleHeap);
    }

    #[test]
    fn sharded_local_epochs_and_spread_are_tracked() {
        let faults = FaultPlan::with_drop_prob(0.5).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 200).with_faults(faults), 5)
            .with_async_epochs(StalenessBound::Unbounded)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        let mut max_spread = 0;
        for t in 1..=60u64 {
            net.tick(&[true, false]);
            max_spread = max_spread.max(net.epoch_spread());
            for i in [0usize, 99, 199] {
                assert!(net.local_epoch(i) <= t + 2, "node {i} outran its cadence");
            }
        }
        assert!(max_spread > 0, "epochs never overlapped");
    }

    #[test]
    fn sharded_single_node_fleet_never_queries() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 1), 7)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert_eq!(EventRuntime::metrics(&net).queries_sent, 0);
        let m = EventRuntime::metrics(&net);
        assert!(m.explorations + m.fallbacks > 0);
    }

    #[test]
    fn sharded_deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net =
                EventRuntime::new(DistConfig::new(params(), 50).with_faults(faults), seed)
                    .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
            let mut out = Vec::new();
            for t in 0..40 {
                net.tick(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, EventRuntime::metrics(&net))
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn sharded_tiny_queue_bound_is_respected_under_load() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 128), 9)
            .with_queue_bound(1)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert!(net.max_queue_depth() <= 1);
        assert!(
            EventRuntime::metrics(&net).queue_drops > 0,
            "bound 1 never overflowed"
        );
        assert!(net.distribution()[0] > 0.5);
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shards_rejected() {
        let _ = EventRuntime::new(DistConfig::new(params(), 4), 1)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 0 });
    }

    #[test]
    #[should_panic(expected = "before the first tick")]
    fn scheduler_switch_after_first_tick_rejected() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 4), 1);
        net.tick(&[true, false]);
        let _ = net.with_scheduler(SchedulerKind::ShardedCalendar { shards: 2 });
    }

    #[test]
    #[should_panic(expected = "before the first tick")]
    fn async_switch_after_first_tick_rejected() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 4), 1);
        net.tick(&[true, false]);
        let _ = net.with_async_epochs(StalenessBound::Unbounded);
    }

    #[test]
    #[should_panic(expected = "queue bound")]
    fn zero_queue_bound_rejected() {
        let _ = EventRuntime::new(DistConfig::new(params(), 4), 1).with_queue_bound(0);
    }

    #[test]
    #[should_panic(expected = "rewards length")]
    fn reward_width_mismatch_rejected() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 4), 1);
        net.tick(&[true]);
    }

    /// A kitchen-sink membership script: a restart, a crash, a region
    /// blinking out, and a late flash crowd, over a 48-node fleet.
    fn churn_faults() -> FaultPlan {
        FaultPlan::with_drop_prob(0.2)
            .unwrap()
            .crash(7, 12)
            .leave(3, 4)
            .rejoin(3, 9)
            .region_loss(20..28, 6, 14)
            .flash_crowd(6, 10)
    }

    #[test]
    fn quiesced_leave_and_rejoin_bootstrap_through_the_protocol() {
        let faults = FaultPlan::none().leave(3, 4).rejoin(3, 9);
        let mut net = EventRuntime::new(DistConfig::new(params(), 32).with_faults(faults), 21);
        for t in 1..=12u64 {
            let rm = net.tick(&[true, false]);
            match t {
                4 => {
                    assert_eq!(rm.leaves, 1);
                    assert_eq!(rm.alive, 31);
                }
                9 => {
                    assert_eq!(rm.rejoins, 1);
                    assert_eq!(rm.bootstrapping, 1);
                    assert_eq!(rm.alive, 32);
                }
                _ => {
                    assert_eq!(rm.leaves + rm.joins + rm.rejoins, 0);
                    assert_eq!(rm.bootstrapping, 0);
                }
            }
        }
        let m = EventRuntime::metrics(&net);
        assert_eq!((m.leaves, m.rejoins, m.joins), (1, 1, 0));
        assert_eq!(net.alive_count(), 32);
    }

    #[test]
    fn async_rejoiner_bootstraps_on_its_own_cadence() {
        let faults = FaultPlan::none().leave(5, 3).rejoin(5, 8);
        let mut net = EventRuntime::new(DistConfig::new(params(), 24).with_faults(faults), 23)
            .with_async_epochs(StalenessBound::Unbounded);
        let mut saw_boot = false;
        for t in 1..=20u64 {
            let rm = net.tick(&[true, false]);
            if t == 3 {
                assert_eq!(rm.leaves, 1);
                assert_eq!(rm.alive, 23);
            }
            if t == 8 {
                assert_eq!(rm.rejoins, 1);
                assert_eq!(rm.alive, 24);
            }
            saw_boot |= rm.bootstrapping > 0;
            if t > 10 {
                assert_eq!(rm.bootstrapping, 0, "bootstrap never completed");
            }
        }
        assert!(saw_boot, "the rejoin never showed in the gauge");
        let m = EventRuntime::metrics(&net);
        assert_eq!((m.leaves, m.rejoins), (1, 1));
        // The rejoined node keeps making progress after bootstrap.
        assert!(net.local_epoch(5) > 0);
    }

    #[test]
    fn flash_crowd_nodes_join_the_sharded_distribution_late() {
        let faults = FaultPlan::none().flash_crowd(6, 10);
        let mut net = EventRuntime::new(DistConfig::new(params(), 48).with_faults(faults), 29)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
        // Absent nodes hold no commitment before their join round.
        assert_eq!(net.counts().iter().sum::<u64>(), 42);
        assert_eq!(net.alive_count(), 42);
        for t in 1..=12u64 {
            let rm = net.tick(&[true, false]);
            if t == 10 {
                assert_eq!(rm.joins, 6);
                assert_eq!(rm.bootstrapping, 6);
            }
            assert_eq!(rm.alive, if t < 10 { 42 } else { 48 });
        }
        assert_eq!(net.alive_count(), 48);
    }

    #[test]
    fn sharded_churn_results_are_byte_identical_across_shard_counts() {
        let kinds = [
            SchedulerKind::ShardedCalendar { shards: 1 },
            SchedulerKind::ShardedCalendar { shards: 2 },
            SchedulerKind::ShardedCalendar { shards: 4 },
            SchedulerKind::ShardedCalendar { shards: 8 },
        ];
        let make = || {
            EventRuntime::new(
                DistConfig::new(params(), 48).with_faults(churn_faults()),
                17,
            )
        };
        let runs = drive_kinds(make, &kinds, 30);
        for run in &runs[1..] {
            assert_eq!(
                runs[0].0, run.0,
                "distributions diverged across shard counts under churn"
            );
            assert_eq!(
                runs[0].1, run.1,
                "round metrics diverged across shard counts under churn"
            );
            assert_eq!(runs[0].2, run.2, "metrics diverged across shard counts");
        }
    }

    #[test]
    fn sharded_async_churn_results_are_byte_identical_across_shard_counts() {
        let kinds = [
            SchedulerKind::ShardedCalendar { shards: 1 },
            SchedulerKind::ShardedCalendar { shards: 2 },
            SchedulerKind::ShardedCalendar { shards: 4 },
            SchedulerKind::ShardedCalendar { shards: 8 },
        ];
        let make = || {
            EventRuntime::new(
                DistConfig::new(params(), 48).with_faults(churn_faults()),
                19,
            )
            .with_async_epochs(StalenessBound::Epochs(2))
        };
        let runs = drive_kinds(make, &kinds, 40);
        for run in &runs[1..] {
            assert_eq!(
                runs[0].0, run.0,
                "distributions diverged across shard counts under churn"
            );
            assert_eq!(
                runs[0].1, run.1,
                "round metrics diverged across shard counts under churn"
            );
            assert_eq!(runs[0].2, run.2, "metrics diverged across shard counts");
        }
    }

    #[test]
    fn rolling_restart_matches_between_schedulers_in_law_and_counters() {
        // The two schedulers draw from different RNG streams, so only
        // the deterministic membership arithmetic must agree exactly.
        let run = |kind: SchedulerKind| {
            let faults = FaultPlan::none().rolling_restart(8, 4);
            let mut net = EventRuntime::new(DistConfig::new(params(), 32).with_faults(faults), 31)
                .with_scheduler(kind);
            let mut alive = Vec::new();
            for _ in 0..24 {
                alive.push(net.tick(&[true, false]).alive);
            }
            (alive, {
                let m = EventRuntime::metrics(&net);
                (m.leaves, m.rejoins, m.joins)
            })
        };
        let single = run(SchedulerKind::SingleHeap);
        let sharded = run(SchedulerKind::ShardedCalendar { shards: 4 });
        assert_eq!(single, sharded);
        assert_eq!(single.1, (32, 32, 0), "every node left and came back");
        assert!(
            *single.0.iter().min().unwrap() >= 24,
            "too many down at once"
        );
    }

    #[test]
    fn churn_epoch_message_bound_holds() {
        // Per quiesced epoch: at most MAX_QUERY_RETRIES queries per
        // present node, and never more replies than queries.
        for kind in [
            SchedulerKind::SingleHeap,
            SchedulerKind::ShardedCalendar { shards: 4 },
        ] {
            let mut net = EventRuntime::new(
                DistConfig::new(params(), 48).with_faults(churn_faults()),
                37,
            )
            .with_scheduler(kind);
            for _ in 0..20 {
                let rm = net.tick(&[true, false]);
                let cap = 2 * MAX_QUERY_RETRIES as u64 * rm.alive as u64;
                assert!(
                    rm.queries_sent + rm.replies_received <= cap,
                    "epoch message bound violated under churn ({kind})"
                );
            }
        }
    }
}
