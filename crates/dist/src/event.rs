//! The event-driven runtime: the same O(1)-state-per-node protocol as
//! [`Runtime`](crate::Runtime), executed by a seeded discrete-event
//! scheduler instead of a global round barrier.
//!
//! Every message (query out, reply back) is a scheduled event with its
//! own latency jitter, and every node owns a **bounded FIFO inbox**:
//! a message arriving at a full queue is dropped (backpressure), and a
//! query that never produces a reply — lost on the link, addressed to
//! a crashed or sat-out peer, or squeezed out of a queue — is
//! recovered by a timeout-driven retry against a fresh peer, up to
//! [`MAX_QUERY_RETRIES`] attempts before the uniform fallback. This is
//! the transport behavior a round-synchronous barrier hides, and the
//! bridge toward fully asynchronous bounded-memory collaborative
//! learning (Su–Zubeldia–Lynch, arXiv:1802.08159).
//!
//! Each call to [`EventRuntime::tick`] is one *epoch*: alive nodes
//! wake at jittered virtual times, exchange messages through the
//! scheduler, and the epoch completes when every event has been
//! delivered and every alive node has resolved its stage-1 sample and
//! stage-2 adoption against the epoch's fresh reward signals. Peers
//! answer queries from the *previous* epoch's commitments, so on a
//! clean network the per-epoch law is the same sample-then-adopt
//! process as the round-synchronous runtime — the cross-crate
//! equivalence tests check it agrees in law with
//! `sociolearn_core::FinitePopulation`.
//!
//! Message cost is bounded exactly as in the round-synchronous
//! runtime: at most [`MAX_QUERY_RETRIES`] queries and one reply per
//! query per node per epoch, i.e. `≤ 2 · MAX_QUERY_RETRIES · N`
//! messages per epoch.

use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use sociolearn_core::GroupDynamics;

use crate::{
    CrashTracker, DistConfig, Metrics, NodeState, ProtocolRuntime, RoundMetrics, MAX_QUERY_RETRIES,
    NO_CHOICE,
};

/// Default capacity of each node's FIFO inbox. Messages arriving at a
/// full inbox are dropped and counted in
/// [`RoundMetrics::queue_drops`].
pub const DEFAULT_QUEUE_BOUND: usize = 32;

/// Upper bound on the per-message latency jitter, in scheduler ticks;
/// each delivery draws uniformly from `1..=MAX_MESSAGE_LATENCY`.
pub const MAX_MESSAGE_LATENCY: u64 = 8;

/// Ticks between a message landing in an inbox and the owner
/// processing it.
const DELIVER_DELAY: u64 = 1;

/// Window over which alive nodes' wake-ups are jittered at the start
/// of an epoch.
const WAKE_SPREAD: u64 = 32;

/// How long a querier waits for a reply before retrying. Strictly
/// larger than the worst-case round trip
/// (`2 · MAX_MESSAGE_LATENCY + 2 · DELIVER_DELAY`), so a reply that
/// is actually in flight always wins over its timeout.
const RETRY_TIMEOUT: u64 = 2 * MAX_MESSAGE_LATENCY + 2 * DELIVER_DELAY + 1;

/// A scheduler event. Node ids are `u32` to keep the heap entries
/// small (the fleet bound of `u32::MAX` nodes is far beyond anything
/// the simulations run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// An alive node starts stage 1 of the protocol.
    Wake { node: u32 },
    /// A query from `from` reaches `to`'s inbox (link loss already
    /// resolved at send time).
    QueryArrive { from: u32, to: u32 },
    /// A reply carrying `option` reaches `node`'s inbox.
    ReplyArrive { node: u32, option: u32 },
    /// `node` processes the message at the head of its inbox.
    Deliver { node: u32 },
    /// `node`'s query `attempt` has waited long enough; retry or fall
    /// back unless a reply already resolved it.
    Timeout { node: u32, attempt: u32 },
}

/// A heap entry: events fire in `(at, seq)` order, so simultaneous
/// events resolve in the deterministic order they were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: u64,
    seq: u64,
    ev: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we pop earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A message sitting in a node's inbox.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// "What option did you use last epoch?"
    Query { from: u32 },
    /// "I used `option`."
    Reply { option: u32 },
}

/// Per-node transport bookkeeping for the current epoch. This is
/// scheduler state, not protocol state: the node's *protocol* memory
/// is still just its committed option ([`crate::NODE_STATE_BYTES`]).
#[derive(Debug, Clone, Copy, Default)]
struct Pending {
    /// The outstanding query attempt (0 = none issued yet).
    attempt: u32,
    /// Whether stage 1 has resolved this epoch (copied, explored, or
    /// fell back) — late replies and stale timeouts are ignored.
    resolved: bool,
}

/// The event-driven message-passing runtime: `N` nodes of
/// [`crate::NODE_STATE_BYTES`] protocol state each, exchanging
/// query/reply gossip through a seeded discrete-event scheduler with
/// per-message latency jitter, bounded FIFO inboxes, and
/// timeout-driven retries, with faults injected per the configured
/// [`crate::FaultPlan`].
///
/// All randomness — wake jitter, message latencies, protocol choices,
/// and fault realizations — derives from the seed passed to
/// [`EventRuntime::new`], so runs are exactly reproducible. Like
/// [`Runtime`](crate::Runtime) it implements
/// [`GroupDynamics`](sociolearn_core::GroupDynamics) and
/// [`ProtocolRuntime`], so every harness drives the two runtimes
/// interchangeably.
///
/// # Example
///
/// ```
/// use sociolearn_core::{GroupDynamics, Params};
/// use sociolearn_dist::{DistConfig, EventRuntime, FaultPlan};
///
/// let params = Params::new(3, 0.6)?;
/// let faults = FaultPlan::with_drop_prob(0.2).unwrap().crash(0, 40);
/// let mut net = EventRuntime::new(DistConfig::new(params, 64).with_faults(faults), 7);
/// for _ in 0..50 {
///     let rm = net.tick(&[true, false, false]);
///     assert!(rm.committed <= rm.alive);
/// }
/// assert_eq!(net.distribution().len(), 3);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EventRuntime {
    cfg: DistConfig,
    queue_bound: usize,
    rng: SmallRng,
    /// This epoch's committed option per node — the fleet's protocol
    /// state, double-buffered with `back`.
    choices: Vec<NodeState>,
    /// Last epoch's commitments: the snapshot peers answer from.
    back: Vec<NodeState>,
    /// Crash schedule + O(1) alive counter.
    crashes: CrashTracker,
    /// Cached committed counts per option (this epoch).
    counts: Vec<u64>,
    /// The event queue, keyed by `(virtual time, sequence)`. Reused
    /// across epochs.
    heap: BinaryHeap<Scheduled>,
    /// Per-node bounded FIFO inboxes. Reused across epochs.
    inboxes: Vec<VecDeque<Msg>>,
    /// Per-node transport bookkeeping for the current epoch.
    pending: Vec<Pending>,
    /// Monotone sequence number for deterministic event tie-breaks.
    seq: u64,
    /// High-water mark of any inbox, across all epochs.
    max_queue_depth: usize,
    /// Epochs completed.
    round: u64,
    metrics: Metrics,
}

impl EventRuntime {
    /// Boots a fleet from the uniform initialization (node `i` starts
    /// committed to option `i mod m`, matching both the in-memory
    /// dynamics and the round-synchronous runtime) with all randomness
    /// derived from `seed` and inboxes bounded at
    /// [`DEFAULT_QUEUE_BOUND`].
    pub fn new(cfg: DistConfig, seed: u64) -> Self {
        let m = cfg.params().num_options();
        let n = cfg.num_nodes();
        let choices: Vec<NodeState> = (0..n).map(|i| (i % m) as NodeState).collect();
        let mut counts = vec![0u64; m];
        for &c in &choices {
            counts[c as usize] += 1;
        }
        let crashes = CrashTracker::new(cfg.faults(), n);
        EventRuntime {
            queue_bound: DEFAULT_QUEUE_BOUND,
            rng: SmallRng::seed_from_u64(seed),
            choices,
            back: vec![NO_CHOICE; n],
            crashes,
            counts,
            heap: BinaryHeap::new(),
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            pending: vec![Pending::default(); n],
            seq: 0,
            max_queue_depth: 0,
            round: 0,
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// Replaces the per-node inbox capacity (default
    /// [`DEFAULT_QUEUE_BOUND`]). Smaller bounds increase backpressure
    /// drops and hence retries/fallbacks.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` (a node must be able to receive).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be at least 1");
        self.queue_bound = bound;
        self
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Fleet size `N`.
    pub fn num_nodes(&self) -> usize {
        self.cfg.num_nodes()
    }

    /// Epochs completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Cumulative message/fallback/backpressure counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Committed counts per option over alive nodes (last epoch).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of nodes alive for the *next* epoch, in O(1).
    pub fn alive_count(&self) -> usize {
        self.crashes.alive()
    }

    /// The per-node inbox capacity.
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
    }

    /// The deepest any inbox has ever been — by construction never
    /// more than [`queue_bound`](EventRuntime::queue_bound).
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Pushes an event onto the schedule.
    fn push(&mut self, at: u64, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    /// One latency draw for a message about to be sent.
    fn latency(&mut self) -> u64 {
        self.rng.gen_range(1..=MAX_MESSAGE_LATENCY)
    }

    /// Whether a message is lost on the link, per the fault plan.
    fn link_drops(&mut self) -> bool {
        let p = self.cfg.faults().drop_prob();
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// Offers `msg` to `node`'s bounded inbox; on success schedules
    /// the matching `Deliver`, on overflow drops it (backpressure).
    fn enqueue(&mut self, node: u32, msg: Msg, now: u64, rm: &mut RoundMetrics) {
        let inbox = &mut self.inboxes[node as usize];
        if inbox.len() >= self.queue_bound {
            rm.queue_drops += 1;
            return;
        }
        inbox.push_back(msg);
        self.max_queue_depth = self.max_queue_depth.max(inbox.len());
        self.push(now + DELIVER_DELAY, Event::Deliver { node });
    }

    /// Resolves node `i`'s stage 1 with `considered` and runs stage 2
    /// (adopt with the quality-dependent probability, else sit out).
    fn decide(&mut self, node: u32, considered: u32, rewards: &[bool], rm: &mut RoundMetrics) {
        let i = node as usize;
        debug_assert!(!self.pending[i].resolved, "node resolved twice");
        self.pending[i].resolved = true;
        let adopt_p = self
            .cfg
            .params()
            .adopt_probability(rewards[considered as usize]);
        if self.rng.gen_bool(adopt_p) {
            self.choices[i] = considered;
            self.counts[considered as usize] += 1;
            rm.committed += 1;
        }
    }

    /// Issues query `attempt` for `node` (or the uniform fallback once
    /// the retry budget is spent). `attempt == 1` is the stage-1 entry
    /// point and may take the `µ`-exploration branch instead.
    fn start_attempt(
        &mut self,
        node: u32,
        attempt: u32,
        now: u64,
        rewards: &[bool],
        rm: &mut RoundMetrics,
    ) {
        let i = node as usize;
        let n = self.cfg.num_nodes();
        let m = self.cfg.params().num_options();
        if attempt == 1 {
            let mu = self.cfg.params().mu();
            if self.rng.gen_bool(mu) {
                rm.explorations += 1;
                let considered = self.rng.gen_range(0..m) as u32;
                self.decide(node, considered, rewards, rm);
                return;
            }
        }
        if attempt > MAX_QUERY_RETRIES || n == 1 {
            // Retry budget spent (or no peers to ask at all): uniform
            // fallback, exactly as in the round-synchronous runtime.
            rm.fallbacks += 1;
            let considered = self.rng.gen_range(0..m) as u32;
            self.decide(node, considered, rewards, rm);
            return;
        }
        self.pending[i].attempt = attempt;
        rm.queries_sent += 1;
        // Ask a uniformly random *other* node what it used last epoch.
        let mut peer = self.rng.gen_range(0..n - 1);
        if peer >= i {
            peer += 1;
        }
        // The retry clock starts now, reply or no reply.
        self.push(now + RETRY_TIMEOUT, Event::Timeout { node, attempt });
        // The query must survive the link to be scheduled for arrival.
        if !self.link_drops() {
            let at = now + self.latency();
            self.push(
                at,
                Event::QueryArrive {
                    from: node,
                    to: peer as u32,
                },
            );
        }
    }

    /// `node` pops and handles the head of its inbox.
    fn deliver(&mut self, node: u32, now: u64, rewards: &[bool], rm: &mut RoundMetrics) {
        let i = node as usize;
        let Some(msg) = self.inboxes[i].pop_front() else {
            return;
        };
        match msg {
            Msg::Query { from } => {
                // Answer with the option committed last epoch; a node
                // that sat out stays silent and the querier's timeout
                // drives the retry.
                let option = self.back[i];
                if option != NO_CHOICE && !self.link_drops() {
                    let at = now + self.latency();
                    self.push(at, Event::ReplyArrive { node: from, option });
                }
            }
            Msg::Reply { option } => {
                if self.pending[i].resolved {
                    // A late duplicate (cannot normally happen: the
                    // timeout window exceeds the worst-case round
                    // trip), ignored for safety.
                    return;
                }
                rm.replies_received += 1;
                self.decide(node, option, rewards, rm);
            }
        }
    }

    /// Executes one scheduler epoch against the fresh reward signals,
    /// returning what happened. The epoch runs to quiescence: every
    /// alive node resolves both protocol stages and the event queue
    /// drains completely.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len()` differs from the number of options.
    pub fn tick(&mut self, rewards: &[bool]) -> RoundMetrics {
        let m = self.cfg.params().num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        self.round += 1;
        let t = self.round;
        let n = self.cfg.num_nodes();

        let mut rm = RoundMetrics {
            round: t,
            ..RoundMetrics::default()
        };

        // Swap buffers: `back` now holds last epoch's commitments (the
        // queryable snapshot); `choices` is rewritten over the epoch.
        std::mem::swap(&mut self.choices, &mut self.back);
        self.counts.fill(0);
        self.heap.clear();
        self.seq = 0;
        for inbox in &mut self.inboxes {
            inbox.clear();
        }

        // Alive nodes wake at jittered times; dead nodes are resolved
        // (and silent) from the start.
        for i in 0..n {
            self.choices[i] = NO_CHOICE;
            if self.crashes.alive_in(i, t) {
                rm.alive += 1;
                self.pending[i] = Pending::default();
                let at = self.rng.gen_range(0..WAKE_SPREAD);
                self.push(at, Event::Wake { node: i as u32 });
            } else {
                self.pending[i] = Pending {
                    attempt: 0,
                    resolved: true,
                };
            }
        }
        debug_assert_eq!(rm.alive, self.crashes.alive(), "alive counter drifted");

        while let Some(Scheduled { at, ev, .. }) = self.heap.pop() {
            match ev {
                Event::Wake { node } => self.start_attempt(node, 1, at, rewards, &mut rm),
                Event::QueryArrive { from, to } => {
                    // A crashed peer swallows the query; the querier's
                    // timeout drives the retry.
                    if self.crashes.alive_in(to as usize, t) {
                        self.enqueue(to, Msg::Query { from }, at, &mut rm);
                    }
                }
                Event::ReplyArrive { node, option } => {
                    self.enqueue(node, Msg::Reply { option }, at, &mut rm);
                }
                Event::Deliver { node } => self.deliver(node, at, rewards, &mut rm),
                Event::Timeout { node, attempt } => {
                    let p = self.pending[node as usize];
                    if !p.resolved && p.attempt == attempt {
                        self.start_attempt(node, attempt + 1, at, rewards, &mut rm);
                    }
                }
            }
        }
        debug_assert!(
            self.pending.iter().all(|p| p.resolved),
            "epoch ended with unresolved nodes"
        );

        self.crashes.advance_to(t + 1);
        self.metrics.absorb(&rm);
        rm
    }
}

impl GroupDynamics for EventRuntime {
    fn num_options(&self) -> usize {
        self.cfg.params().num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.cfg.params().num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    /// Advances one epoch. Like the round-synchronous runtime, the
    /// event-driven runtime draws all randomness from its own seed;
    /// the caller's RNG is ignored.
    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.tick(rewards);
    }

    fn label(&self) -> &str {
        "social (event-driven)"
    }
}

impl ProtocolRuntime for EventRuntime {
    fn round(&mut self, rewards: &[bool]) -> RoundMetrics {
        self.tick(rewards)
    }

    fn metrics(&self) -> Metrics {
        EventRuntime::metrics(self)
    }

    fn num_nodes(&self) -> usize {
        EventRuntime::num_nodes(self)
    }

    fn alive_count(&self) -> usize {
        EventRuntime::alive_count(self)
    }

    fn rounds_completed(&self) -> u64 {
        EventRuntime::rounds_completed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use sociolearn_core::Params;

    fn params() -> Params {
        Params::new(2, 0.65).unwrap()
    }

    #[test]
    fn initialization_matches_uniform_start() {
        let net = EventRuntime::new(DistConfig::new(Params::new(3, 0.6).unwrap(), 7), 1);
        assert_eq!(net.counts(), &[3, 2, 2]);
        let q = net.distribution();
        assert!((q[0] - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_network_converges_to_best_option() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 500), 2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let rewards = [rng.gen_bool(0.9), rng.gen_bool(0.3)];
            net.tick(&rewards);
        }
        assert!(
            net.distribution()[0] > 0.8,
            "share {}",
            net.distribution()[0]
        );
    }

    #[test]
    fn epoch_metrics_are_internally_consistent() {
        let faults = FaultPlan::with_drop_prob(0.3).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 4);
        for _ in 0..50 {
            let rm = net.tick(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.alive <= 64);
            assert!(rm.replies_received <= rm.queries_sent);
            assert!(rm.queries_sent <= 64 * MAX_QUERY_RETRIES as u64);
            let handled = rm.explorations + rm.fallbacks + rm.replies_received;
            assert!(
                handled >= rm.alive as u64,
                "every alive node resolves stage 1"
            );
        }
        assert!(net.max_queue_depth() <= net.queue_bound());
        let m = net.metrics();
        assert_eq!(m.rounds, 50);
        assert!(m.messages_per_round() > 0.0);
    }

    #[test]
    fn total_loss_means_no_replies() {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 40).with_faults(faults), 5);
        for _ in 0..20 {
            net.tick(&[true, true]);
        }
        assert_eq!(net.metrics().replies_received, 0);
        assert!(net.metrics().fallbacks > 0);
    }

    #[test]
    fn crashed_nodes_leave_the_distribution() {
        let faults = FaultPlan::none().crash(0, 1).crash(1, 1).crash(2, 1);
        let mut net = EventRuntime::new(DistConfig::new(params(), 4).with_faults(faults), 6);
        let rm = net.tick(&[true, true]);
        assert_eq!(rm.alive, 1);
        assert_eq!(net.alive_count(), 1);
        assert!(net.counts().iter().sum::<u64>() <= 1);
    }

    #[test]
    fn single_node_fleet_never_queries() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 1), 7);
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert_eq!(net.metrics().queries_sent, 0);
        assert!(net.metrics().explorations + net.metrics().fallbacks > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let faults = FaultPlan::with_drop_prob(0.4).unwrap().crash(3, 10);
            let mut net =
                EventRuntime::new(DistConfig::new(params(), 50).with_faults(faults), seed);
            let mut out = Vec::new();
            for t in 0..40 {
                net.tick(&[t % 2 == 0, t % 3 == 0]);
                out.push(net.distribution());
            }
            (out, net.metrics())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn tiny_queue_bound_is_respected_under_load() {
        // A bound of 1 forces heavy backpressure in a dense fleet; the
        // high-water mark must never exceed the bound and drops must
        // be visible in the metrics.
        let mut net = EventRuntime::new(DistConfig::new(params(), 128), 9).with_queue_bound(1);
        for _ in 0..30 {
            net.tick(&[true, false]);
        }
        assert!(net.max_queue_depth() <= 1);
        assert!(net.metrics().queue_drops > 0, "bound 1 never overflowed");
        // Backpressure degrades copying but never learning.
        assert!(net.distribution()[0] > 0.5);
    }

    #[test]
    fn run_batch_matches_tick_loop() {
        let schedule: Vec<Vec<bool>> = (0..25).map(|t| vec![t % 2 == 0, t % 5 == 0]).collect();
        let faults = FaultPlan::with_drop_prob(0.1).unwrap().crash(2, 9);
        let mut batched = EventRuntime::new(
            DistConfig::new(params(), 30).with_faults(faults.clone()),
            13,
        );
        let mut looped = EventRuntime::new(DistConfig::new(params(), 30).with_faults(faults), 13);
        let batch = batched.run_batch(&schedule);
        for rewards in &schedule {
            looped.tick(rewards);
        }
        assert_eq!(batched.distribution(), looped.distribution());
        assert_eq!(batch, looped.metrics());
    }

    #[test]
    fn step_ignores_external_rng_stream() {
        let drive = |ext_seed: u64| {
            let mut net = EventRuntime::new(DistConfig::new(params(), 80), 13);
            let mut ext = SmallRng::seed_from_u64(ext_seed);
            for _ in 0..20 {
                net.step(&[true, false], &mut ext);
            }
            net.distribution()
        };
        assert_eq!(drive(1), drive(999));
    }

    #[test]
    #[should_panic(expected = "queue bound")]
    fn zero_queue_bound_rejected() {
        let _ = EventRuntime::new(DistConfig::new(params(), 4), 1).with_queue_bound(0);
    }

    #[test]
    #[should_panic(expected = "rewards length")]
    fn reward_width_mismatch_rejected() {
        let mut net = EventRuntime::new(DistConfig::new(params(), 4), 1);
        net.tick(&[true]);
    }
}
