//! Cache-line-aligned struct-of-arrays storage for shard-lane hot
//! state.
//!
//! A [`ShardLane`](crate::calendar) sweeps its per-node scalars
//! (choices, back-buffers, epochs, sequence counters) once per
//! window; with plain `Vec<u32>`/`Vec<u64>` those sweeps start at an
//! arbitrary offset inside a cache line and two lanes' allocations
//! can share a line (false sharing once lanes run on separate worker
//! threads). The vectors here store their elements in 64-byte
//! `#[repr(C, align(64))]` chunks — the `trueno-viz` framebuffer
//! idiom — so every lane's array starts on its own cache line, a
//! 16-wide `u32` (or 8-wide `u64`) chunk is exactly one line, and the
//! inner loop streams line after line with no partial prefix.
//!
//! The types keep ordinary `Vec` ergonomics where the engine needs
//! them: `Index`/`IndexMut`, `push`, `iter`, `extend`, and a draining
//! iterator for the rebalance path's flatten/re-split. Everything is
//! safe Rust — alignment comes from the chunk type's declared layout,
//! not from manual allocation.

use std::ops::{Index, IndexMut};

macro_rules! aligned_vec {
    ($(#[$meta:meta])* $name:ident, $chunk:ident, $elem:ty, $lanes:expr) => {
        /// One cache line of elements. Padding slots beyond `len`
        /// always hold `<$elem>::default()` so chunk-wise comparison
        /// equals element-wise comparison.
        #[repr(C, align(64))]
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        struct $chunk([$elem; $lanes]);

        const _: () = assert!(std::mem::size_of::<$chunk>() == 64);
        const _: () = assert!(std::mem::align_of::<$chunk>() == 64);

        $(#[$meta])*
        #[derive(Clone, Debug, Default)]
        pub(crate) struct $name {
            chunks: Vec<$chunk>,
            len: usize,
        }

        impl $name {
            /// A vector of `len` copies of `fill`.
            pub(crate) fn with_len(len: usize, fill: $elem) -> Self {
                let mut v = Self::default();
                v.resize(len, fill);
                v
            }

            pub(crate) fn len(&self) -> usize {
                self.len
            }

            /// Appends one element.
            pub(crate) fn push(&mut self, value: $elem) {
                let (chunk, slot) = (self.len / $lanes, self.len % $lanes);
                if slot == 0 {
                    self.chunks.push($chunk([<$elem>::default(); $lanes]));
                }
                self.chunks[chunk].0[slot] = value;
                self.len += 1;
            }

            /// Grows to `len` elements, filling new slots with `fill`
            /// (shrinking is not needed by the engine and not
            /// supported).
            pub(crate) fn resize(&mut self, len: usize, fill: $elem) {
                assert!(len >= self.len, "aligned vec never shrinks in place");
                for _ in self.len..len {
                    self.push(fill);
                }
            }

            /// Iterates the live elements (padding excluded).
            pub(crate) fn iter(&self) -> impl Iterator<Item = &$elem> + '_ {
                self.chunks
                    .iter()
                    .flat_map(|c| c.0.iter())
                    .take(self.len())
            }

            /// Empties `self`, yielding its elements in order — the
            /// rebalance path's flatten step.
            pub(crate) fn drain_all(&mut self) -> impl Iterator<Item = $elem> + '_ {
                let len = self.len;
                self.len = 0;
                self.chunks
                    .drain(..)
                    .flat_map(|c| c.0.into_iter())
                    .take(len)
            }
        }

        impl Extend<$elem> for $name {
            fn extend<I: IntoIterator<Item = $elem>>(&mut self, iter: I) {
                for v in iter {
                    self.push(v);
                }
            }
        }

        impl FromIterator<$elem> for $name {
            fn from_iter<I: IntoIterator<Item = $elem>>(iter: I) -> Self {
                let mut v = Self::default();
                v.extend(iter);
                v
            }
        }

        impl Index<usize> for $name {
            type Output = $elem;
            #[inline]
            fn index(&self, i: usize) -> &$elem {
                assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
                &self.chunks[i / $lanes].0[i % $lanes]
            }
        }

        impl IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut $elem {
                assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
                &mut self.chunks[i / $lanes].0[i % $lanes]
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                // Padding is held at default, so chunk equality is
                // element equality.
                self.len == other.len && self.chunks == other.chunks
            }
        }
        impl Eq for $name {}
    };
}

aligned_vec!(
    /// Cache-line-aligned `u32` storage: 16 elements per 64-byte line.
    AlignedU32s,
    ChunkU32,
    u32,
    16
);

aligned_vec!(
    /// Cache-line-aligned `u64` storage: 8 elements per 64-byte line.
    AlignedU64s,
    ChunkU64,
    u64,
    8
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_cache_line_aligned() {
        let mut v = AlignedU32s::with_len(33, 0);
        v[0] = 7;
        assert_eq!(std::ptr::from_ref(&v[0]) as usize % 64, 0);
        assert_eq!(std::ptr::from_ref(&v[16]) as usize % 64, 0);
        let w = AlignedU64s::with_len(9, 0);
        assert_eq!(std::ptr::from_ref(&w[0]) as usize % 64, 0);
        assert_eq!(std::ptr::from_ref(&w[8]) as usize % 64, 0);
    }

    #[test]
    fn index_push_and_len_behave_like_vec() {
        let mut v = AlignedU32s::default();
        let mut reference = Vec::new();
        for i in 0..100u32 {
            v.push(i * 3);
            reference.push(i * 3);
        }
        assert_eq!(v.len(), reference.len());
        for (i, r) in reference.iter().enumerate() {
            assert_eq!(v[i], *r);
        }
        v[57] = 999;
        assert_eq!(v[57], 999);
        assert_eq!(v.iter().count(), 100);
    }

    #[test]
    fn with_len_fills_and_resize_grows() {
        let mut v = AlignedU64s::with_len(20, 42);
        assert!(v.iter().all(|&x| x == 42));
        v.resize(25, 7);
        assert_eq!(v.len(), 25);
        assert_eq!(v[19], 42);
        assert_eq!(v[20], 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn padding_slots_are_not_indexable() {
        let v = AlignedU32s::with_len(3, 1);
        let _ = v[3];
    }

    #[test]
    fn drain_and_collect_roundtrip_preserves_order() {
        // The rebalance flatten/re-split shape: drain several vecs
        // into one, then re-split by take().
        let mut a: AlignedU32s = (0..23u32).collect();
        let mut b: AlignedU32s = (100..117u32).collect();
        let mut all = AlignedU32s::default();
        all.extend(a.drain_all());
        all.extend(b.drain_all());
        assert_eq!(a.len(), 0);
        assert_eq!(all.len(), 40);
        let mut it = all.drain_all();
        let first: AlignedU32s = it.by_ref().take(30).collect();
        let second: AlignedU32s = it.collect();
        assert_eq!(first.len(), 30);
        assert_eq!(second.len(), 10);
        assert_eq!(first[29], 106);
        assert_eq!(second[0], 107);
        assert_eq!(second[9], 116);
    }

    #[test]
    fn equality_ignores_capacity_history() {
        let mut a = AlignedU32s::with_len(5, 9);
        let b: AlignedU32s = std::iter::repeat_n(9u32, 5).collect();
        assert_eq!(a, b);
        a[4] = 8;
        assert_ne!(a, b);
    }
}
