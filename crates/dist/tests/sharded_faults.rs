//! Fault injection aimed at the sharded scheduler's seams: crashes
//! and message loss landing on nodes adjacent to a shard split must
//! behave exactly like they do under the single-heap scheduler —
//! deterministically where the observable is schedule-independent
//! (alive counts, zero-reply regimes, count conservation), and
//! byte-identically across shard counts everywhere.

use sociolearn_core::{GroupDynamics, Params};
use sociolearn_dist::{DistConfig, EventRuntime, FaultPlan, SchedulerKind, StalenessBound};

fn params() -> Params {
    Params::new(2, 0.65).unwrap()
}

/// The worker-thread count the identity fixtures run in addition to 1:
/// 2 by default; CI additionally sweeps the suite with
/// `SOCIOLEARN_TEST_THREADS=4`.
fn test_threads() -> usize {
    std::env::var("SOCIOLEARN_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// A fleet of 64 nodes sharded 4 ways splits at 16/32/48: crash the
/// node on each side of every split, plus the range ends.
fn boundary_crashes(round: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for node in [0usize, 15, 16, 31, 32, 47, 48, 63] {
        plan = plan.crash(node, round);
    }
    plan
}

/// Builds the quiesced 64-node boundary-crash fleet under `kind`.
fn boundary_fleet(kind: SchedulerKind, seed: u64) -> EventRuntime {
    EventRuntime::new(
        DistConfig::new(params(), 64).with_faults(boundary_crashes(10)),
        seed,
    )
    .with_scheduler(kind)
}

#[test]
fn boundary_crashes_kill_the_same_nodes_under_both_schedulers() {
    // The alive trajectory is fixed by the fault plan, not the
    // schedule: both schedulers must report the identical per-round
    // alive counts, and the crashed boundary nodes must leave the
    // committed counts on both.
    let mut single = boundary_fleet(SchedulerKind::SingleHeap, 5);
    let mut sharded = boundary_fleet(SchedulerKind::ShardedCalendar { shards: 4 }, 5);
    for t in 1..=25u64 {
        let a = single.tick(&[true, false]);
        let b = sharded.tick(&[true, false]);
        assert_eq!(a.alive, b.alive, "alive counts diverged at round {t}");
        assert_eq!(a.alive, if t < 10 { 64 } else { 56 });
        assert!(a.committed <= a.alive);
        assert!(b.committed <= b.alive);
    }
    assert_eq!(single.alive_count(), 56);
    assert_eq!(sharded.alive_count(), 56);
    assert!(single.counts().iter().sum::<u64>() <= 56);
    assert!(sharded.counts().iter().sum::<u64>() <= 56);
}

#[test]
fn boundary_crashes_are_identical_across_shard_counts() {
    // Crashes landing exactly at shard splits must not perturb the
    // shard-count invariance: runs at 1, 2, and 4 shards — crossed
    // with lookahead widths and worker-thread counts — stay
    // byte-identical through the crash round and after it. The
    // parallel threshold is pinned to 0 so `threads > 1` really
    // exercises the worker pool at this fleet size.
    let drive = |shards: usize, lookahead: u64, threads: usize| {
        let faults = boundary_crashes(8);
        let mut net = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 9)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards })
            .with_lookahead(lookahead)
            .with_threads(threads)
            .with_parallel_threshold(0);
        let mut trace = Vec::new();
        for t in 0..20u64 {
            let rm = net.tick(&[t % 2 == 0, t % 3 == 0]);
            trace.push((rm, net.distribution()));
        }
        (trace, EventRuntime::metrics(&net))
    };
    for lookahead in [1u64, 4] {
        let one = drive(1, lookahead, 1);
        for shards in [2usize, 4] {
            for threads in [1usize, test_threads()] {
                assert_eq!(
                    one,
                    drive(shards, lookahead, threads),
                    "K={lookahead} shards={shards} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn async_boundary_crashes_are_identical_across_shard_counts() {
    let drive = |shards: usize, lookahead: u64, threads: usize| {
        let faults = boundary_crashes(6);
        let mut net = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 11)
            .with_async_epochs(StalenessBound::Epochs(1))
            .with_scheduler(SchedulerKind::ShardedCalendar { shards })
            .with_lookahead(lookahead)
            .with_threads(threads)
            .with_parallel_threshold(0);
        let mut trace = Vec::new();
        for t in 0..24u64 {
            let rm = net.tick(&[t % 2 == 0, t % 3 == 0]);
            trace.push((rm, net.distribution()));
        }
        (trace, EventRuntime::metrics(&net))
    };
    for lookahead in [1u64, 2] {
        let one = drive(1, lookahead, 1);
        for shards in [2usize, 4] {
            for threads in [1usize, test_threads()] {
                assert_eq!(
                    one,
                    drive(shards, lookahead, threads),
                    "K={lookahead} shards={shards} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn async_boundary_crashes_stop_pacing_and_leave_counts() {
    // Async mode: crashed boundary nodes stop advancing their local
    // epochs while interior survivors keep the fleet moving — same
    // qualitative contract the single heap promises.
    let faults = boundary_crashes(5);
    let mut single =
        EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults.clone()), 7)
            .with_async_epochs(StalenessBound::Unbounded);
    let mut sharded = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 7)
        .with_async_epochs(StalenessBound::Unbounded)
        .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
    for _ in 0..20 {
        single.tick(&[true, true]);
        sharded.tick(&[true, true]);
    }
    for net in [&single, &sharded] {
        assert_eq!(net.alive_count(), 56);
        assert!(net.counts().iter().sum::<u64>() <= 56);
        // Boundary nodes 16 and 32 died at round 5; interior node 20
        // kept its loop running.
        assert!(net.local_epoch(16) < net.local_epoch(20));
        assert!(net.local_epoch(32) < net.local_epoch(20));
    }
}

#[test]
fn total_loss_starves_replies_under_the_sharded_scheduler() {
    // Message loss is decided at the sending node's stream, so a
    // p = 1 plan must produce exactly zero replies on any scheduler
    // and shard count — every node lives off explorations/fallbacks.
    for shards in [1usize, 2, 4] {
        let faults = FaultPlan::with_drop_prob(1.0).unwrap();
        let mut net = EventRuntime::new(DistConfig::new(params(), 40).with_faults(faults), 5)
            .with_scheduler(SchedulerKind::ShardedCalendar { shards });
        for _ in 0..20 {
            net.tick(&[true, true]);
        }
        let m = EventRuntime::metrics(&net);
        assert_eq!(m.replies_received, 0, "{shards} shards leaked a reply");
        assert!(m.fallbacks > 0);
    }
}

#[test]
fn async_total_loss_starves_replies_under_the_sharded_scheduler() {
    let faults = FaultPlan::with_drop_prob(1.0).unwrap();
    let mut net = EventRuntime::new(DistConfig::new(params(), 40).with_faults(faults), 5)
        .with_async_epochs(StalenessBound::Unbounded)
        .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
    for _ in 0..20 {
        net.tick(&[true, true]);
    }
    let m = EventRuntime::metrics(&net);
    assert_eq!(m.replies_received, 0);
    assert!(m.fallbacks > 0);
}

#[test]
fn loss_and_boundary_crashes_keep_sharded_learning_alive() {
    // The compound scenario ISSUE names: loss plus crashes at shard
    // boundaries. Learning must survive (share far above the 1/m
    // floor) and per-round invariants must hold throughout, on both
    // schedulers, with a starved queue bound for extra backpressure.
    for (kind, lookahead) in [
        (SchedulerKind::SingleHeap, 1u64),
        (SchedulerKind::ShardedCalendar { shards: 4 }, 1),
        (SchedulerKind::ShardedCalendar { shards: 4 }, 4),
    ] {
        let faults = {
            let mut plan = FaultPlan::with_drop_prob(0.3).unwrap();
            for node in [15usize, 16, 31, 32, 47, 48] {
                plan = plan.crash(node, 40);
            }
            plan
        };
        let mut net = EventRuntime::new(DistConfig::new(params(), 64).with_faults(faults), 3)
            .with_queue_bound(2)
            .with_scheduler(kind)
            .with_lookahead(lookahead)
            .with_threads(test_threads())
            .with_parallel_threshold(0);
        for _ in 0..120 {
            let rm = net.tick(&[true, false]);
            assert!(rm.committed <= rm.alive);
            assert!(rm.replies_received <= rm.queries_sent);
        }
        assert!(net.max_queue_depth() <= 2);
        assert!(
            net.distribution()[0] > 0.6,
            "{kind}: share {} under loss + boundary crashes",
            net.distribution()[0]
        );
    }
}

#[test]
fn sharded_message_bound_holds_per_epoch() {
    // The protocol's per-epoch message bound (≤ 2 · retries · N) is a
    // scheduler-independent contract; check it on the sharded engine
    // under loss, where retries are maximally exercised.
    let faults = FaultPlan::with_drop_prob(0.5).unwrap();
    let mut net = EventRuntime::new(DistConfig::new(params(), 48).with_faults(faults), 13)
        .with_scheduler(SchedulerKind::ShardedCalendar { shards: 4 });
    for _ in 0..40 {
        let rm = net.tick(&[true, false]);
        assert!(rm.queries_sent <= 2 * sociolearn_dist::MAX_QUERY_RETRIES as u64 * 48);
    }
}
