//! Unit tests of the [`FaultPlan`] builders: drop-probability
//! validation, per-round crash scheduling, and the inertness of
//! `FaultPlan::none()` — beyond what the workspace-level integration
//! tests exercise.

use sociolearn_core::{GroupDynamics, Params};
use sociolearn_dist::{
    DistConfig, EventRuntime, FaultPlan, FaultPlanError, Runtime, StalenessBound,
};

#[test]
fn drop_prob_validation_rejects_out_of_range() {
    for bad in [
        -0.1,
        -1e-9,
        1.0 + 1e-9,
        2.0,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        let err = FaultPlan::with_drop_prob(bad).expect_err("p outside [0,1] must be rejected");
        assert!(matches!(err, FaultPlanError::DropProbOutOfRange(_)));
        // The error is a real std error with a useful message.
        assert!(err.to_string().contains("[0, 1]"), "message: {err}");
    }
}

#[test]
fn drop_prob_validation_accepts_boundaries() {
    for good in [0.0, 1e-12, 0.5, 1.0 - 1e-12, 1.0] {
        let plan = FaultPlan::with_drop_prob(good).expect("p in [0,1] is valid");
        assert_eq!(plan.drop_prob(), good);
        assert!(plan.num_crashes() == 0);
    }
}

#[test]
fn none_is_inert() {
    let plan = FaultPlan::none();
    assert!(plan.is_inert());
    assert_eq!(plan.drop_prob(), 0.0);
    assert_eq!(plan.num_crashes(), 0);
    assert_eq!(plan.crash_round(0), None);

    // Inert also operationally: a runtime with `none()` follows the
    // exact trajectory of a runtime with no fault plan attached.
    let params = Params::new(3, 0.6).unwrap();
    let mut with_none = Runtime::new(DistConfig::new(params, 60).with_faults(plan), 9);
    let mut without = Runtime::new(DistConfig::new(params, 60), 9);
    for t in 0..40u64 {
        let rewards = [t % 2 == 0, t % 3 == 0, t % 5 == 0];
        with_none.round(&rewards);
        without.round(&rewards);
        assert_eq!(with_none.distribution(), without.distribution());
    }
    assert_eq!(with_none.metrics(), without.metrics());
}

#[test]
fn crash_scheduling_is_per_round() {
    let plan = FaultPlan::none().crash(2, 5);
    assert_eq!(plan.crash_round(2), Some(5));

    let params = Params::new(2, 0.65).unwrap();
    let mut net = Runtime::new(DistConfig::new(params, 3).with_faults(plan), 1);
    for t in 1..=10u64 {
        let rm = net.round(&[true, true]);
        // Node 2 is alive through round 4 and dead from round 5 on.
        let expected_alive = if t < 5 { 3 } else { 2 };
        assert_eq!(rm.alive, expected_alive, "round {t}");
        assert_eq!(rm.round, t);
    }
}

#[test]
fn crash_builder_accumulates_nodes() {
    let mut plan = FaultPlan::none();
    for node in 0..7 {
        plan = plan.crash(node, 3 + node as u64);
    }
    assert_eq!(plan.num_crashes(), 7);
    for node in 0..7 {
        assert_eq!(plan.crash_round(node), Some(3 + node as u64));
    }
    assert!(!plan.is_inert());
}

#[test]
fn duplicate_crash_keeps_earliest_round() {
    let plan = FaultPlan::none().crash(4, 10).crash(4, 6).crash(4, 20);
    assert_eq!(plan.crash_round(4), Some(6));
    assert_eq!(plan.num_crashes(), 1, "one node, one schedule entry");
}

#[test]
fn crash_composes_with_drop_prob() {
    let plan = FaultPlan::with_drop_prob(0.3)
        .unwrap()
        .crash(0, 2)
        .crash(1, 4);
    assert_eq!(plan.drop_prob(), 0.3);
    assert_eq!(plan.crash_round(0), Some(2));
    assert_eq!(plan.crash_round(1), Some(4));
    assert!(!plan.is_inert());
}

#[test]
fn crash_at_round_one_is_dead_from_the_start() {
    let params = Params::new(2, 0.65).unwrap();
    let plan = FaultPlan::none().crash(0, 1);
    let mut net = Runtime::new(DistConfig::new(params, 2).with_faults(plan), 3);
    let rm = net.round(&[true, true]);
    assert_eq!(rm.alive, 1);
    // The survivor never gets a reply (its only peer is dead), so it
    // can only explore or fall back — never copy.
    assert_eq!(net.metrics().replies_received, 0);
}

#[test]
fn same_plan_applies_across_all_three_execution_models() {
    // One fault schedule, three execution models: the crash lands at
    // the same round everywhere, and message loss degrades copying
    // without stopping learning under any of them.
    let params = Params::new(2, 0.65).unwrap();
    let plan = FaultPlan::with_drop_prob(0.25)
        .unwrap()
        .crash(0, 8)
        .crash(1, 8);
    let cfg = DistConfig::new(params, 40).with_faults(plan);

    let mut sync = Runtime::new(cfg.clone(), 11);
    let mut quiesced = EventRuntime::new(cfg.clone(), 11);
    let mut asynch = EventRuntime::new(cfg, 11).with_async_epochs(StalenessBound::Epochs(2));
    for t in 1..=30u64 {
        let rewards = [true, t % 4 == 0];
        let a = sync.round(&rewards).alive;
        let b = quiesced.tick(&rewards).alive;
        let c = asynch.tick(&rewards).alive;
        let expected = if t < 8 { 40 } else { 38 };
        assert_eq!((a, b, c), (expected, expected, expected), "round {t}");
    }
    for share in [
        sync.distribution()[0],
        quiesced.distribution()[0],
        asynch.distribution()[0],
    ] {
        assert!(share > 0.6, "learning collapsed under faults: {share}");
    }
}

#[test]
fn async_crash_of_whole_fleet_halts_progress_but_not_the_clock() {
    let params = Params::new(2, 0.65).unwrap();
    let mut plan = FaultPlan::none();
    for node in 0..5 {
        plan = plan.crash(node, 4);
    }
    let mut net = EventRuntime::new(DistConfig::new(params, 5).with_faults(plan), 2)
        .with_async_epochs(StalenessBound::Unbounded);
    for _ in 0..12 {
        net.tick(&[true, false]);
    }
    assert_eq!(net.alive_count(), 0);
    assert_eq!(net.rounds_completed(), 12);
    // Every local epoch froze at or before the crash round.
    for i in 0..5 {
        assert!(net.local_epoch(i) <= 4);
    }
    // Nobody committed anywhere: the distribution falls back to
    // uniform rather than dividing by zero.
    assert_eq!(net.counts().iter().sum::<u64>(), 0);
    assert!((net.distribution()[0] - 0.5).abs() < 1e-12);
}
