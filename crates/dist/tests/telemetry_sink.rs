//! Property tests of the telemetry observer hook: attaching a sink is
//! invisible to the protocol. For arbitrary parameters, seeds, and
//! churn scripts, a runtime driven through `observed_round` with a
//! recording sink follows the byte-identical trajectory of a twin
//! driven through plain `round` — same per-round counters, same
//! cumulative `Metrics`, same final distribution — on all three
//! execution models.

use proptest::prelude::*;
use sociolearn_core::Params;
use sociolearn_dist::{
    DistConfig, EventRuntime, FaultPlan, MetricsRecorder, ProtocolRuntime, Runtime, SchedulerKind,
    StalenessBound, TelemetrySink, TickObservation,
};

/// Strategy: valid parameters in the interesting corner of the cube.
fn params_strategy() -> impl Strategy<Value = Params> {
    (2usize..6, 0.5f64..=0.95).prop_map(|(m, beta)| Params::new(m, beta).expect("valid params"))
}

/// A deterministic reward table, `steps` rounds by `m` options,
/// derived from the case's seed so every proptest case sees a
/// different (but reproducible) environment.
fn reward_table(m: usize, steps: usize, seed: u64) -> Vec<Vec<bool>> {
    (0..steps)
        .map(|t| {
            (0..m)
                .map(|j| {
                    (seed as usize)
                        .wrapping_add(t * 31 + j * 7)
                        .is_multiple_of(3)
                })
                .collect()
        })
        .collect()
}

/// A sink that records everything *and* checks internal consistency,
/// to make the "attached" side do real observable work.
#[derive(Default)]
struct CheckingSink {
    ticks: u64,
    last_round: u64,
}

impl TelemetrySink for CheckingSink {
    fn on_tick(&mut self, obs: &TickObservation) {
        // This sink only sees every other tick (it alternates with a
        // recorder), so rounds advance monotonically, not by 1.
        assert!(obs.round.round > self.last_round, "rounds in order");
        assert!(obs.round.committed <= obs.round.alive);
        assert!(!obs.shard_loads.is_empty());
        assert_eq!(obs.cumulative.rounds, obs.round.round);
        self.last_round = obs.round.round;
        self.ticks += 1;
    }
}

/// Drives `observed` through the hook (one real recorder + one
/// checking sink alternating) and `plain` directly, asserting
/// identical trajectories.
fn assert_sink_invisible<R: ProtocolRuntime>(mut observed: R, mut plain: R, rewards: &[Vec<bool>]) {
    let mut recorder = MetricsRecorder::new(16);
    let mut checker = CheckingSink::default();
    for (t, row) in rewards.iter().enumerate() {
        let ra = if t % 2 == 0 {
            observed.observed_round(row, &mut recorder)
        } else {
            observed.observed_round(row, &mut checker)
        };
        let rb = plain.round(row);
        assert_eq!(ra, rb, "round {} diverged", t + 1);
    }
    assert_eq!(observed.metrics(), plain.metrics());
    assert_eq!(observed.distribution(), plain.distribution());
    assert_eq!(observed.alive_count(), plain.alive_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-synchronous runtime, with scripted churn and drops.
    #[test]
    fn sink_is_invisible_round_sync(
        params in params_strategy(),
        seed in any::<u64>(),
        drop in 0.0f64..0.4,
        steps in 8usize..24,
    ) {
        let rewards = reward_table(params.num_options(), steps, seed);
        let faults = FaultPlan::with_drop_prob(drop).unwrap().rolling_restart(4, 5);
        let cfg = || DistConfig::new(params, 20).with_faults(faults.clone());
        assert_sink_invisible(Runtime::new(cfg(), seed), Runtime::new(cfg(), seed), &rewards);
    }

    /// Epoch-quiesced event runtime.
    #[test]
    fn sink_is_invisible_event_quiesced(
        params in params_strategy(),
        seed in any::<u64>(),
        steps in 6usize..16,
    ) {
        let rewards = reward_table(params.num_options(), steps, seed);
        let faults = FaultPlan::none().rolling_restart(5, 4);
        let cfg = || DistConfig::new(params, 18).with_faults(faults.clone());
        assert_sink_invisible(
            EventRuntime::new(cfg(), seed),
            EventRuntime::new(cfg(), seed),
            &rewards,
        );
    }

    /// Fully-async sharded calendar engine (the model with the most
    /// telemetry surface: epoch skew, shard loads, rebalances).
    #[test]
    fn sink_is_invisible_async_sharded(
        params in params_strategy(),
        seed in any::<u64>(),
        shards in 2usize..6,
        steps in 6usize..14,
    ) {
        let rewards = reward_table(params.num_options(), steps, seed);
        let faults = FaultPlan::none().rolling_restart(4, 4);
        let cfg = || DistConfig::new(params, 16).with_faults(faults.clone());
        let make = || {
            EventRuntime::new(cfg(), seed)
                .with_async_epochs(StalenessBound::Epochs(3))
                .with_scheduler(SchedulerKind::ShardedCalendar { shards })
        };
        assert_sink_invisible(make(), make(), &rewards);
    }
}

/// Epoch skew must be computed over *present* nodes only: a flash
/// crowd's pre-join members sit at local epoch 0, and if the skew
/// gauge counted them it would read roughly "ticks elapsed" instead of
/// the fleet's true overlap. Pinned on both async engines so the
/// sharded refactor cannot regress either path.
#[test]
fn epoch_skew_ignores_nodes_that_have_not_joined_yet() {
    const N: usize = 24;
    const CROWD: usize = 12;
    const JOIN_AT: u64 = 8;
    let params = Params::new(2, 0.6).expect("valid params");
    let rewards = reward_table(2, 14, 5);
    for shards in [1usize, 4] {
        let faults = FaultPlan::none().flash_crowd(CROWD, JOIN_AT);
        let mut net = EventRuntime::new(DistConfig::new(params, N).with_faults(faults), 9)
            .with_async_epochs(StalenessBound::Unbounded);
        if shards > 1 {
            net = net.with_scheduler(SchedulerKind::ShardedCalendar { shards });
        }
        for (t, row) in rewards.iter().enumerate() {
            let t = t as u64 + 1;
            net.round(row);
            // The crowd joins at the start of tick JOIN_AT, and the
            // membership tracker advances to the *next* epoch's view
            // at the end of each tick — so post-tick queries see the
            // crowd from tick JOIN_AT - 1 onward (at local epoch 0,
            // bootstrapping: genuinely present, legitimately skewed).
            let present: Vec<usize> = if t < JOIN_AT - 1 {
                (0..N - CROWD).collect()
            } else {
                (0..N).collect()
            };
            let epochs: Vec<u64> = present.iter().map(|&i| net.local_epoch(i)).collect();
            let hi = *epochs.iter().max().unwrap();
            let lo = *epochs.iter().min().unwrap();
            assert_eq!(
                net.epoch_spread(),
                hi - lo,
                "shards={shards} tick={t}: skew must match the present-node span"
            );
            if (4..JOIN_AT - 1).contains(&t) {
                // The teeth: by now the early fleet has completed
                // epochs, so counting an absent (epoch-0) node would
                // have inflated the gauge to at least `hi`.
                assert!(hi >= 2, "shards={shards} tick={t}: fleet should progress");
                assert!(
                    net.epoch_spread() < hi,
                    "shards={shards} tick={t}: skew {} looks anchored to an \
                     absent node's epoch 0",
                    net.epoch_spread()
                );
            }
        }
    }
}
