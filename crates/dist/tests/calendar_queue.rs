//! Property-based tests for the calendar-queue scheduler: the
//! [`Calendar`] container itself (deterministic pop order, FIFO
//! stability, conservation across ring rotations) and the engine-level
//! guarantee it exists to provide — byte-identical runtime results for
//! the same seed across shard counts.

use proptest::prelude::*;
use sociolearn_dist::{
    Calendar, DistConfig, Entry, EventRuntime, FaultPlan, Metrics, RoundMetrics, SchedulerKind,
    StalenessBound, MAX_LOOKAHEAD, RING_SLOTS,
};

use sociolearn_core::Params;

/// A pushed item: `(delay past the drain cursor, source id)`. Delays
/// stay strictly inside one ring rotation, as the runtime guarantees
/// for its own events.
fn batch_strategy() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..RING_SLOTS as u64, 0u32..6), 0..40)
}

/// Drains `cal` completely from `cursor`, returning the popped entries
/// in pop order.
fn drain_all(cal: &mut Calendar<u64>, mut cursor: u64) -> Vec<Entry<u64>> {
    let mut out = Vec::new();
    while let Some(t) = cal.next_time(cursor) {
        let due = cal.take_due(t);
        assert!(!due.is_empty(), "next_time pointed at an empty slot");
        out.extend(due.iter().copied());
        cal.recycle(due);
        cursor = t + 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pops come out globally time-ordered, and within one timestamp
    /// in `(src, seq)` order — with `seq` preserving each source's
    /// push order (FIFO stability).
    #[test]
    fn pops_are_time_ordered_and_fifo_stable(batches in proptest::collection::vec(batch_strategy(), 1..8)) {
        let mut cal = Calendar::new();
        let mut cursor = 0u64;
        let mut seqs = [0u32; 6];
        let mut pushed = 0usize;
        let mut popped = 0usize;
        for batch in batches {
            // Push a batch relative to the current cursor.
            for &(delay, src) in &batch {
                let seq = seqs[src as usize];
                seqs[src as usize] += 1;
                cal.push(Entry { at: cursor + delay, src, seq, payload: u64::from(seq) });
                pushed += 1;
            }
            // Drain a window or two, checking order.
            let drained = drain_all(&mut cal, cursor);
            popped += drained.len();
            for pair in drained.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                prop_assert!(
                    (a.at, a.src, a.seq) < (b.at, b.src, b.seq),
                    "pop order violated: {:?} before {:?}",
                    (a.at, a.src, a.seq),
                    (b.at, b.src, b.seq)
                );
            }
            // FIFO within equal timestamps: for one source at one
            // time, seqs pop in push order (seq assignment is
            // monotone per source, so push order = seq order).
            for pair in drained.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if a.at == b.at && a.src == b.src {
                    prop_assert!(a.seq < b.seq, "source {} popped out of push order", a.src);
                }
            }
            // The drain fully emptied the calendar; advance the clock
            // past everything seen so the next batch stays in-window.
            prop_assert!(cal.is_empty());
            cursor += RING_SLOTS as u64;
        }
        prop_assert_eq!(pushed, popped, "events lost or duplicated");
    }

    /// Interleaved pushes and window drains across many ring rotations
    /// conserve every entry exactly once (none lost at a rotation or
    /// shard-handoff boundary, none duplicated).
    #[test]
    fn rotation_conserves_entries(
        rounds in 1usize..6,
        batches in proptest::collection::vec(batch_strategy(), 6),
        step in 1u64..(RING_SLOTS as u64),
    ) {
        let mut cal = Calendar::new();
        let mut cursor = 0u64;
        let mut next_payload = 0u64;
        let mut outstanding: std::collections::BTreeSet<u64> = Default::default();
        let mut seqs = [0u32; 6];
        for batch in batches.iter().cycle().take(rounds * batches.len()) {
            for &(delay, src) in batch {
                // Clamp into the legal window relative to the cursor.
                let at = cursor + delay.min(RING_SLOTS as u64 - 1);
                let seq = seqs[src as usize];
                seqs[src as usize] += 1;
                cal.push(Entry { at, src, seq, payload: next_payload });
                outstanding.insert(next_payload);
                next_payload += 1;
            }
            // Drain `step` windows, then keep going.
            for w in cursor..cursor + step {
                let due = cal.take_due(w);
                for e in &due {
                    prop_assert!(outstanding.remove(&e.payload), "duplicated or phantom entry");
                    prop_assert_eq!(e.at, w, "entry due at the wrong window");
                }
                cal.recycle(due);
            }
            cursor += step;
        }
        let rest = drain_all(&mut cal, cursor.saturating_sub(step));
        for e in &rest {
            prop_assert!(outstanding.remove(&e.payload), "duplicated or phantom entry");
        }
        prop_assert!(outstanding.is_empty(), "entries lost: {outstanding:?}");
        prop_assert!(cal.is_empty());
    }
}

/// The worker-thread count the identity matrix runs in addition to 1:
/// 2 by default (enough to exercise the pool handoff on any machine);
/// CI additionally sweeps the suite with `SOCIOLEARN_TEST_THREADS=4`.
fn test_threads() -> usize {
    std::env::var("SOCIOLEARN_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// Drives one deployment under a scheduler, recording everything
/// observable: per-tick round metrics, per-tick distributions, and the
/// final cumulative metrics. The parallel threshold is pinned to 0 so
/// `threads > 1` exercises the worker pool even at proptest-sized
/// fleets.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_observables(
    params: Params,
    n: usize,
    faults: FaultPlan,
    seed: u64,
    bound: Option<StalenessBound>,
    kind: SchedulerKind,
    lookahead: u64,
    threads: usize,
    ticks: u64,
) -> (Vec<RoundMetrics>, Vec<Vec<f64>>, Metrics) {
    use sociolearn_core::GroupDynamics;
    let mut net = EventRuntime::new(DistConfig::new(params, n).with_faults(faults), seed);
    if let Some(b) = bound {
        net = net.with_async_epochs(b);
    }
    let mut net = net
        .with_scheduler(kind)
        .with_lookahead(lookahead)
        .with_threads(threads)
        .with_parallel_threshold(0);
    let m = params.num_options();
    let mut rms = Vec::new();
    let mut dists = Vec::new();
    for t in 0..ticks {
        let rewards: Vec<bool> = (0..m).map(|j| !(t + j as u64).is_multiple_of(3)).collect();
        rms.push(net.tick(&rewards));
        dists.push(net.distribution());
    }
    (rms, dists, EventRuntime::metrics(&net))
}

/// Builds a conflict-free membership script from raw proptest tuples:
/// the last `flash` ids arrive late as a flash crowd, and each churn
/// tuple becomes a leave→rejoin pair on a distinct stable node.
fn churn_plan(n: usize, drop_prob: f64, flash: usize, churn: &[(usize, u64, u64)]) -> FaultPlan {
    let flash = flash.min(n.saturating_sub(2));
    let mut plan = FaultPlan::with_drop_prob(drop_prob).expect("valid drop prob");
    if flash > 0 {
        plan = plan.flash_crowd(flash, 4);
    }
    let stable = n - flash;
    let mut used = std::collections::HashSet::new();
    for &(node, round, gap) in churn {
        let node = node % stable;
        if !used.insert(node) {
            continue;
        }
        plan = plan.leave(node, round).rejoin(node, round + gap);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline engine guarantee: for any valid deployment — fault
    /// plan, staleness bound, seed — and any lookahead block width K in
    /// {1, 2, 4}, the sharded scheduler produces byte-identical metrics
    /// and distributions for shard counts {1, 2, 4, 8} crossed with
    /// worker-thread counts {1, `test_threads()`}. (Different K values
    /// are *different* trajectories by design; identity is over the
    /// partition and the thread count, never the block width.)
    #[test]
    fn sharded_runs_are_identical_across_shard_counts(
        seed in any::<u64>(),
        n in 4usize..80,
        m in 2usize..5,
        beta in 0.55f64..0.9,
        drop_prob in 0.0f64..0.6,
        crash_node in 0usize..80,
        // 0 = epoch-quiesced; 1..=3 = async Epochs(k - 1); 4 = async
        // Unbounded.
        mode_sel in 0u64..5,
        ticks in 1u64..25,
    ) {
        let params = Params::new(m, beta).expect("valid params");
        let faults = FaultPlan::with_drop_prob(drop_prob)
            .expect("valid drop prob")
            .crash(crash_node % n, 1 + (seed % 20));
        let bound = match mode_sel {
            0 => None,
            4 => Some(StalenessBound::Unbounded),
            k => Some(StalenessBound::Epochs(k - 1)),
        };
        for lookahead in [1u64, 2, 4] {
            let reference = run_observables(
                params, n, faults.clone(), seed, bound,
                SchedulerKind::ShardedCalendar { shards: 1 }, lookahead, 1, ticks,
            );
            for shards in [2usize, 4, 8] {
                for threads in [1usize, test_threads()] {
                    let run = run_observables(
                        params, n, faults.clone(), seed, bound,
                        SchedulerKind::ShardedCalendar { shards }, lookahead, threads, ticks,
                    );
                    prop_assert_eq!(
                        &reference.0, &run.0,
                        "round metrics diverged at K={} shards={} threads={}",
                        lookahead, shards, threads
                    );
                    prop_assert_eq!(
                        &reference.1, &run.1,
                        "distributions diverged at K={} shards={} threads={}",
                        lookahead, shards, threads
                    );
                    prop_assert_eq!(
                        &reference.2, &run.2,
                        "metrics diverged at K={} shards={} threads={}",
                        lookahead, shards, threads
                    );
                }
            }
        }
    }

    /// Byte-identity survives active membership scripts: random
    /// join/leave/rejoin schedules force online shard rebalancing at
    /// window boundaries, and the results must still match across
    /// shard counts {1, 2, 4} in both quiesced and async modes.
    #[test]
    fn sharded_churn_runs_are_identical_across_shard_counts(
        seed in any::<u64>(),
        n in 4usize..60,
        m in 2usize..4,
        drop_prob in 0.0f64..0.5,
        flash in 0usize..5,
        churn in proptest::collection::vec((0usize..1000, 1u64..12, 1u64..6), 1..8),
        // 0 = epoch-quiesced; 1..=2 = async Epochs(k - 1).
        mode_sel in 0u64..3,
        ticks in 5u64..25,
    ) {
        let params = Params::new(m, 0.7).expect("valid params");
        let plan = churn_plan(n, drop_prob, flash, &churn);
        let bound = (mode_sel > 0).then(|| StalenessBound::Epochs(mode_sel - 1));
        for lookahead in [1u64, 4] {
            let reference = run_observables(
                params, n, plan.clone(), seed, bound,
                SchedulerKind::ShardedCalendar { shards: 1 }, lookahead, 1, ticks,
            );
            for shards in [2usize, 4] {
                for threads in [1usize, test_threads()] {
                    let run = run_observables(
                        params, n, plan.clone(), seed, bound,
                        SchedulerKind::ShardedCalendar { shards }, lookahead, threads, ticks,
                    );
                    prop_assert_eq!(
                        &reference.0, &run.0,
                        "round metrics diverged at K={} shards={} threads={}",
                        lookahead, shards, threads
                    );
                    prop_assert_eq!(
                        &reference.1, &run.1,
                        "distributions diverged at K={} shards={} threads={}",
                        lookahead, shards, threads
                    );
                    prop_assert_eq!(
                        &reference.2, &run.2,
                        "metrics diverged at K={} shards={} threads={}",
                        lookahead, shards, threads
                    );
                }
            }
        }
    }

    /// The sharded engine satisfies the same per-tick invariants the
    /// single heap promises, under arbitrary faults and bounds.
    #[test]
    fn sharded_tick_invariants_hold(
        seed in any::<u64>(),
        n in 2usize..60,
        drop_prob in 0.0f64..1.0,
        shards in 1usize..6,
        // 0 = epoch-quiesced; 1..=3 = async Epochs(k - 1).
        mode_sel in 0u64..4,
        ticks in 1u64..20,
    ) {
        let params = Params::new(2, 0.7).expect("valid params");
        let faults = FaultPlan::with_drop_prob(drop_prob).expect("valid drop prob");
        let bound = (mode_sel > 0).then(|| StalenessBound::Epochs(mode_sel - 1));
        let lookahead = 1 + seed % 4; // any K in 1..=4; invariants hold at all widths
        let (rms, dists, metrics) = run_observables(
            params, n, faults, seed, bound,
            SchedulerKind::ShardedCalendar { shards }, lookahead, test_threads(), ticks,
        );
        // Replies trail queries *cumulatively*: lookahead defers
        // deliveries to block boundaries, so in async mode a reply can
        // land one tick after its query and the per-tick inequality no
        // longer holds — the running totals always do.
        let (mut queries, mut replies) = (0u64, 0u64);
        for rm in &rms {
            prop_assert!(rm.committed <= rm.alive);
            prop_assert!(rm.alive <= n);
            queries += rm.queries_sent;
            replies += rm.replies_received;
            prop_assert!(replies <= queries);
        }
        for dist in &dists {
            let total: f64 = dist.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "distribution sums to {total}");
        }
        prop_assert_eq!(metrics.rounds, ticks);
    }
}

/// The ring-horizon guard at the limit: at `K = MAX_LOOKAHEAD` the
/// message deferral reaches its worst case (`max(latency, K) =
/// MAX_MESSAGE_LATENCY`), and many async ticks of churn + loss wrap
/// the calendar ring dozens of times. `Calendar::push`'s collision
/// panic firing anywhere in here would fail the test.
#[test]
fn max_lookahead_never_outruns_the_ring() {
    let params = Params::new(3, 0.7).expect("valid params");
    let faults = FaultPlan::with_drop_prob(0.3)
        .expect("valid drop prob")
        .rolling_restart(20, 6);
    let (rms, dists, metrics) = run_observables(
        params,
        200,
        faults,
        42,
        Some(StalenessBound::Epochs(2)),
        SchedulerKind::ShardedCalendar { shards: 4 },
        MAX_LOOKAHEAD,
        test_threads(),
        60,
    );
    assert_eq!(metrics.rounds, 60);
    for rm in &rms {
        assert!(rm.committed <= rm.alive);
    }
    let last: f64 = dists.last().unwrap().iter().sum();
    assert!((last - 1.0).abs() < 1e-9);
}
