//! The stochastic multiplicative-weights update in its explicit
//! expert-weights form.
//!
//! Section 2.2 of the paper observes that the infinite-population
//! dynamics *is* a stochastic MWU over `m` experts. This module keeps
//! the raw weights `W^t_j` (with periodic rescaling to dodge
//! underflow) so the identity with [`InfiniteDynamics`] can be
//! verified bit-for-bit-to-rounding (experiment E8), and so the
//! "distributed low-memory MWU implementation" framing has a concrete
//! centralized object to compare against.
//!
//! [`InfiniteDynamics`]: crate::InfiniteDynamics

use crate::dynamics::GroupDynamics;
use crate::params::Params;
use rand::RngCore;

/// Explicit-weights stochastic MWU (Equation (1) of the paper).
///
/// Maintains `W^t_j` directly, plus a scale exponent so the total
/// potential `Φ^t = scale · Σ_j W^t_j` never under/overflows.
///
/// # Example
///
/// ```
/// use sociolearn_core::{GroupDynamics, Params, StochasticMwu};
///
/// let params = Params::new(2, 0.6)?;
/// let mut mwu = StochasticMwu::new(params);
/// mwu.step_rewards(&[true, false]);
/// assert!(mwu.weights()[0] > mwu.weights()[1]);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMwu {
    params: Params,
    weights: Vec<f64>,
    /// `ln` of the factor taken out of the weights so far.
    log_scale: f64,
    steps: u64,
}

impl StochasticMwu {
    /// Starts from `W^0_j = 1` for all experts.
    pub fn new(params: Params) -> Self {
        let m = params.num_options();
        StochasticMwu {
            params,
            weights: vec![1.0; m],
            log_scale: 0.0,
            steps: 0,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The current (rescaled) weights. Multiply by
    /// `exp(log_scale())` to recover the true `W^t_j`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Natural log of the factor extracted from the weights.
    pub fn log_scale(&self) -> f64 {
        self.log_scale
    }

    /// Natural log of the true potential `Φ^t = Σ_j W^t_j`.
    pub fn log_potential(&self) -> f64 {
        let s: f64 = self.weights.iter().sum();
        self.log_scale + s.ln()
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Applies Equation (1) for one step.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len() != m`.
    pub fn step_rewards(&mut self, rewards: &[bool]) {
        let m = self.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        let mu = self.params.mu();
        let total: f64 = self.weights.iter().sum();
        for (j, w) in self.weights.iter_mut().enumerate() {
            let mixed = (1.0 - mu) * *w + (mu / m as f64) * total;
            *w = mixed * self.params.adopt_probability(rewards[j]);
        }
        self.steps += 1;
        // Rescale before the weights vanish: every step multiplies the
        // potential by at most beta (< 1 in the theorem regime).
        let new_total: f64 = self.weights.iter().sum();
        if !(1e-100..=1e100).contains(&new_total) {
            assert!(new_total > 0.0, "weights collapsed to zero");
            for w in self.weights.iter_mut() {
                *w /= new_total;
            }
            self.log_scale += new_total.ln();
        }
    }
}

impl GroupDynamics for StochasticMwu {
    fn num_options(&self) -> usize {
        self.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.weights.len(),
            "buffer length must equal the number of options"
        );
        let total: f64 = self.weights.iter().sum();
        for (slot, &w) in out.iter_mut().zip(&self.weights) {
            *slot = w / total;
        }
    }

    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.step_rewards(rewards);
    }

    fn label(&self) -> &str {
        "stochastic MWU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infinite::InfiniteDynamics;
    use crate::reward::{BernoulliRewards, RewardModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::new(4, 0.65).unwrap()
    }

    #[test]
    fn identical_to_infinite_dynamics() {
        // The paper's Section 2.2 identity: same distribution at every
        // step under shared rewards.
        let p = params();
        let mut mwu = StochasticMwu::new(p);
        let mut inf = InfiniteDynamics::new(p);
        let mut env = BernoulliRewards::linear(4, 0.9, 0.2).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut rewards = vec![false; 4];
        for t in 0..2_000 {
            env.sample(t, &mut rng, &mut rewards);
            mwu.step_rewards(&rewards);
            inf.step_rewards(&rewards);
            let a = mwu.distribution();
            let b = inf.distribution();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "diverged at t={t}: {x} vs {y}");
            }
        }
        // Potentials also agree.
        assert!((mwu.log_potential() - inf.log_potential()).abs() < 1e-6);
    }

    #[test]
    fn weights_rescale_without_changing_distribution() {
        let p = params();
        let mut mwu = StochasticMwu::new(p);
        // All-bad rewards shrink the potential by alpha each step;
        // 10_000 steps would underflow without rescaling.
        for _ in 0..10_000 {
            mwu.step_rewards(&[false, false, false, false]);
        }
        let d = mwu.distribution();
        crate::dynamics::assert_distribution(&d, 1e-9);
        assert!(mwu.log_potential().is_finite());
        assert!(
            mwu.log_potential() < -1000.0,
            "potential should have shrunk massively"
        );
    }

    #[test]
    fn potential_upper_bound_from_theorem_proof() {
        // From the proof of Theorem 4.3:
        //   Φ^T <= (1-β)^T (1 + µ(e^δ - 1))^T m e^{δ' Σ_t Σ_j P R}
        // We check the simpler unconditional consequence
        //   ln Φ^T <= T ln((1-β)(1 + µ(e^δ-1))) + ln m + δ(1+δ) T
        let p = params();
        let mut mwu = StochasticMwu::new(p);
        let mut env = BernoulliRewards::linear(4, 0.9, 0.2).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut rewards = vec![false; 4];
        let t_max = 500u64;
        for t in 0..t_max {
            env.sample(t, &mut rng, &mut rewards);
            mwu.step_rewards(&rewards);
        }
        let d = p.delta();
        let bound = t_max as f64
            * ((1.0 - p.beta()).ln() + (1.0 + p.mu() * (d.exp() - 1.0)).ln() + d * (1.0 + d))
            + 4f64.ln();
        assert!(
            mwu.log_potential() <= bound + 1e-6,
            "potential {} exceeds proof bound {}",
            mwu.log_potential(),
            bound
        );
    }

    #[test]
    fn potential_lower_bound_from_best_option() {
        // Proof of Thm 4.3: Φ^T >= (1-β)^T (1-µ)^T e^{δ Σ_t R^t_1}.
        let p = params();
        let mut mwu = StochasticMwu::new(p);
        let mut env = BernoulliRewards::linear(4, 0.9, 0.2).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut rewards = vec![false; 4];
        let mut r1_sum = 0u64;
        let t_max = 500u64;
        for t in 0..t_max {
            env.sample(t, &mut rng, &mut rewards);
            r1_sum += rewards[0] as u64;
            mwu.step_rewards(&rewards);
        }
        let d = p.delta();
        let lower =
            t_max as f64 * ((1.0 - p.beta()).ln() + (1.0 - p.mu()).ln()) + d * r1_sum as f64;
        assert!(
            mwu.log_potential() >= lower - 1e-6,
            "potential {} below proof lower bound {}",
            mwu.log_potential(),
            lower
        );
    }

    #[test]
    fn uniform_rewards_preserve_uniform() {
        let mut mwu = StochasticMwu::new(params());
        mwu.step_rewards(&[true; 4]);
        assert_eq!(mwu.distribution(), vec![0.25; 4]);
        mwu.step_rewards(&[false; 4]);
        assert_eq!(mwu.distribution(), vec![0.25; 4]);
    }
}
