//! Epoch decomposition for the large-`T` regret argument
//! (Section 4.3.2 of the paper).
//!
//! Theorem 4.4 handles `T ≫ ln m/δ²` by cutting time into epochs of
//! length `ln(1/ζ)/δ²` (with `ζ = µ(1−β)/4m` the popularity floor),
//! re-coupling the infinite process to the finite state at each epoch
//! boundary, and summing the per-epoch regret bounds. This module
//! provides the schedule plus per-epoch regret accounting so the
//! experiments can display regret epoch by epoch.

use crate::params::Params;
use crate::regret::RegretTracker;

/// An epoch schedule: fixed-length windows over `1..=T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSchedule {
    epoch_len: u64,
}

impl EpochSchedule {
    /// The schedule used by the proof of Theorem 4.4 for these
    /// parameters.
    pub fn for_params(params: &Params) -> Self {
        EpochSchedule {
            epoch_len: params.epoch_length().max(1),
        }
    }

    /// A schedule with an explicit epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len == 0`.
    pub fn with_length(epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        EpochSchedule { epoch_len }
    }

    /// Epoch length in steps.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// The 0-based epoch index containing 1-based step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` (steps are 1-based, as in the paper).
    pub fn epoch_of(&self, t: u64) -> u64 {
        assert!(t > 0, "steps are 1-based");
        (t - 1) / self.epoch_len
    }

    /// Whether step `t` is the first step of its epoch.
    pub fn is_epoch_start(&self, t: u64) -> bool {
        t > 0 && (t - 1).is_multiple_of(self.epoch_len)
    }

    /// Number of (possibly partial) epochs needed to cover horizon `T`.
    pub fn epochs_for_horizon(&self, horizon: u64) -> u64 {
        horizon.div_ceil(self.epoch_len)
    }
}

/// Per-epoch regret accounting: one [`RegretTracker`] per epoch plus a
/// whole-run tracker.
#[derive(Debug, Clone)]
pub struct EpochRegret {
    schedule: EpochSchedule,
    benchmark: f64,
    best_index: usize,
    epochs: Vec<RegretTracker>,
    total: RegretTracker,
    t: u64,
}

impl EpochRegret {
    /// Creates the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `benchmark` is not a probability.
    pub fn new(schedule: EpochSchedule, benchmark: f64, best_index: usize) -> Self {
        EpochRegret {
            schedule,
            benchmark,
            best_index,
            epochs: Vec::new(),
            total: RegretTracker::new(benchmark, best_index),
            t: 0,
        }
    }

    /// Records one step (same arguments as [`RegretTracker::record`]).
    pub fn record(&mut self, dist_before: &[f64], rewards: &[bool], qualities: Option<&[f64]>) {
        self.t += 1;
        let idx = self.schedule.epoch_of(self.t) as usize;
        while self.epochs.len() <= idx {
            self.epochs
                .push(RegretTracker::new(self.benchmark, self.best_index));
        }
        self.epochs[idx].record(dist_before, rewards, qualities);
        self.total.record(dist_before, rewards, qualities);
    }

    /// The whole-run tracker.
    pub fn total(&self) -> &RegretTracker {
        &self.total
    }

    /// Average regret within each completed-or-partial epoch.
    pub fn per_epoch_regret(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.average_regret()).collect()
    }

    /// The worst single-epoch average regret, if any epochs exist.
    pub fn worst_epoch_regret(&self) -> Option<f64> {
        self.per_epoch_regret()
            .into_iter()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The epoch schedule in use.
    pub fn schedule(&self) -> EpochSchedule {
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_boundaries() {
        let s = EpochSchedule::with_length(10);
        assert_eq!(s.epoch_of(1), 0);
        assert_eq!(s.epoch_of(10), 0);
        assert_eq!(s.epoch_of(11), 1);
        assert!(s.is_epoch_start(1));
        assert!(s.is_epoch_start(11));
        assert!(!s.is_epoch_start(10));
        assert_eq!(s.epochs_for_horizon(25), 3);
        assert_eq!(s.epochs_for_horizon(30), 3);
    }

    #[test]
    fn schedule_from_params_matches_theorem() {
        let p = Params::new(10, 0.6).unwrap();
        let s = EpochSchedule::for_params(&p);
        assert_eq!(s.epoch_len(), p.epoch_length());
        // Epochs start from the popularity floor, so they are at least
        // as long as the uniform-start horizon.
        assert!(s.epoch_len() >= p.min_horizon());
    }

    #[test]
    fn per_epoch_accounting() {
        let s = EpochSchedule::with_length(2);
        let mut acc = EpochRegret::new(s, 0.9, 0);
        // Epoch 0: perfect play; epoch 1: worst play.
        for _ in 0..2 {
            acc.record(&[1.0, 0.0], &[true, false], Some(&[0.9, 0.1]));
        }
        for _ in 0..2 {
            acc.record(&[0.0, 1.0], &[false, true], Some(&[0.9, 0.1]));
        }
        let per = acc.per_epoch_regret();
        assert_eq!(per.len(), 2);
        assert!(per[0].abs() < 1e-12);
        assert!((per[1] - 0.8).abs() < 1e-12);
        assert!((acc.worst_epoch_regret().unwrap() - 0.8).abs() < 1e-12);
        // Whole-run average is the mean of the two epochs here.
        assert!((acc.total().average_regret() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_step_rejected() {
        EpochSchedule::with_length(5).epoch_of(0);
    }
}
