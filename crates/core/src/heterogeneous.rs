//! Heterogeneous adoption functions — the generalization the paper
//! notes in Section 2.1: each individual `i` may have its own
//! `(α_i, β_i)` ("for simplicity in the exposition, we assume that all
//! `f_i` are identical ... This assumption is not essential for our
//! results").
//!
//! The collective statistic is no longer sufficient (stage 2 depends
//! on *which* individuals sampled each option), so this runs
//! per-agent. The expected behaviour is governed by the population
//! means `ᾱ, β̄`: tests pin the heterogeneous dynamics against the
//! homogeneous one at `(ᾱ, β̄)`.

use crate::dynamics::GroupDynamics;
use crate::error::ParamsError;
use rand::{Rng, RngCore};

/// Per-individual adoption sensitivities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdoptProfile {
    /// Probability of adopting on a good signal.
    pub beta: f64,
    /// Probability of adopting on a bad signal (`alpha <= beta`).
    pub alpha: f64,
}

impl AdoptProfile {
    /// Creates a profile.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if either value is not a probability or
    /// `alpha > beta`.
    pub fn new(beta: f64, alpha: f64) -> Result<Self, ParamsError> {
        for (name, value) in [("beta", beta), ("alpha", alpha)] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ParamsError::ProbabilityOutOfRange { name, value });
            }
        }
        if alpha > beta {
            return Err(ParamsError::AlphaAboveBeta { alpha, beta });
        }
        Ok(AdoptProfile { beta, alpha })
    }

    /// The symmetric profile `alpha = 1 - beta` used by the theorems.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `beta < 1/2` (so that
    /// `alpha <= beta`) or out of range.
    pub fn symmetric(beta: f64) -> Result<Self, ParamsError> {
        AdoptProfile::new(beta, 1.0 - beta)
    }

    /// Adoption probability given the signal.
    pub fn adopt_probability(&self, good: bool) -> f64 {
        if good {
            self.beta
        } else {
            self.alpha
        }
    }
}

/// The finite-population dynamics with per-individual adoption
/// functions `f_i` (and shared exploration rate `µ`).
///
/// # Example
///
/// ```
/// use sociolearn_core::{AdoptProfile, GroupDynamics, HeterogeneousPopulation};
/// use rand::SeedableRng;
///
/// // Half the group is keen (beta = 0.7), half is skeptical (0.55).
/// let profiles: Vec<AdoptProfile> = (0..100)
///     .map(|i| AdoptProfile::symmetric(if i % 2 == 0 { 0.7 } else { 0.55 }).unwrap())
///     .collect();
/// let mut pop = HeterogeneousPopulation::new(2, 0.05, profiles)?;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// pop.step(&[true, false], &mut rng);
/// assert_eq!(pop.distribution().len(), 2);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneousPopulation {
    m: usize,
    mu: f64,
    profiles: Vec<AdoptProfile>,
    choices: Vec<Option<u32>>,
    committed_options: Vec<u32>,
    counts: Vec<u64>,
    steps: u64,
}

impl HeterogeneousPopulation {
    /// Creates the population, one agent per profile, starting
    /// round-robin committed.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0`, `mu` is not a probability,
    /// or `profiles` is empty.
    pub fn new(m: usize, mu: f64, profiles: Vec<AdoptProfile>) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        if !(0.0..=1.0).contains(&mu) || mu.is_nan() {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "mu",
                value: mu,
            });
        }
        if profiles.is_empty() {
            return Err(ParamsError::NoOptions);
        }
        let n = profiles.len();
        let choices: Vec<Option<u32>> = (0..n).map(|i| Some((i % m) as u32)).collect();
        let mut counts = vec![0u64; m];
        let mut committed_options = Vec::with_capacity(n);
        for c in choices.iter().flatten() {
            counts[*c as usize] += 1;
            committed_options.push(*c);
        }
        Ok(HeterogeneousPopulation {
            m,
            mu,
            profiles,
            choices,
            committed_options,
            counts,
            steps: 0,
        })
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.profiles.len()
    }

    /// The agents' profiles.
    pub fn profiles(&self) -> &[AdoptProfile] {
        &self.profiles
    }

    /// Population-mean profile `(β̄, ᾱ)` — the parameters whose
    /// homogeneous dynamics this one tracks in expectation.
    pub fn mean_profile(&self) -> AdoptProfile {
        let n = self.profiles.len() as f64;
        let beta = self.profiles.iter().map(|p| p.beta).sum::<f64>() / n;
        let alpha = self.profiles.iter().map(|p| p.alpha).sum::<f64>() / n;
        AdoptProfile { beta, alpha }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl GroupDynamics for HeterogeneousPopulation {
    fn num_options(&self) -> usize {
        self.m
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / self.m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    fn step(&mut self, rewards: &[bool], rng: &mut dyn RngCore) {
        assert_eq!(
            rewards.len(),
            self.m,
            "rewards length must equal the number of options"
        );
        let pool = std::mem::take(&mut self.committed_options);
        let mut new_counts = vec![0u64; self.m];
        let mut new_pool = Vec::with_capacity(self.choices.len());
        for (choice, profile) in self.choices.iter_mut().zip(&self.profiles) {
            let j = if pool.is_empty() || rng.gen_bool(self.mu) {
                rng.gen_range(0..self.m) as u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            let p = profile.adopt_probability(rewards[j as usize]);
            if rng.gen_bool(p) {
                *choice = Some(j);
                new_counts[j as usize] += 1;
                new_pool.push(j);
            } else {
                *choice = None;
            }
        }
        self.counts = new_counts;
        self.committed_options = new_pool;
        self.steps += 1;
    }

    fn label(&self) -> &str {
        "social (heterogeneous)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::assert_distribution;
    use crate::{AgentPopulation, BernoulliRewards, Params, RewardModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mixed_profiles(n: usize) -> Vec<AdoptProfile> {
        (0..n)
            .map(|i| {
                AdoptProfile::symmetric(match i % 3 {
                    0 => 0.55,
                    1 => 0.65,
                    _ => 0.72,
                })
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn profile_validation() {
        assert!(AdoptProfile::new(0.6, 0.7).is_err());
        assert!(AdoptProfile::new(1.2, 0.1).is_err());
        assert!(AdoptProfile::symmetric(0.4).is_err()); // alpha 0.6 > beta 0.4
        let p = AdoptProfile::symmetric(0.6).unwrap();
        assert!((p.adopt_probability(true) - 0.6).abs() < 1e-12);
        assert!((p.adopt_probability(false) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn construction_validation() {
        assert!(HeterogeneousPopulation::new(0, 0.1, mixed_profiles(4)).is_err());
        assert!(HeterogeneousPopulation::new(2, 1.5, mixed_profiles(4)).is_err());
        assert!(HeterogeneousPopulation::new(2, 0.1, vec![]).is_err());
    }

    #[test]
    fn invariants_over_time() {
        let mut pop = HeterogeneousPopulation::new(3, 0.05, mixed_profiles(120)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for t in 0..100u64 {
            let rewards: Vec<bool> = (0..3).map(|j| (t + j as u64).is_multiple_of(2)).collect();
            pop.step(&rewards, &mut rng);
            assert_distribution(&pop.distribution(), 1e-12);
        }
        assert_eq!(pop.steps(), 100);
    }

    #[test]
    fn converges_to_best_option() {
        let mut pop = HeterogeneousPopulation::new(2, 0.05, mixed_profiles(2_000)).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
        let mut rewards = vec![false; 2];
        for t in 1..=300 {
            env.sample(t, &mut rng, &mut rewards);
            pop.step(&rewards, &mut rng);
        }
        assert!(
            pop.distribution()[0] > 0.85,
            "share {:?}",
            pop.distribution()
        );
    }

    #[test]
    fn mean_profile_is_population_average() {
        let profiles = vec![
            AdoptProfile::new(0.8, 0.2).unwrap(),
            AdoptProfile::new(0.6, 0.4).unwrap(),
        ];
        let pop = HeterogeneousPopulation::new(2, 0.1, profiles).unwrap();
        let mean = pop.mean_profile();
        assert!((mean.beta - 0.7).abs() < 1e-12);
        assert!((mean.alpha - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tracks_homogeneous_dynamics_at_mean_parameters() {
        // One-step mean committed share must match the homogeneous
        // population at (beta-bar, alpha-bar): stage 2 thinning is
        // linear in the profile, so the means coincide exactly.
        let n = 400;
        let mu = 0.1;
        let profiles = mixed_profiles(n);
        let reps = 600u64;
        let rewards = [true, false];

        let mut het_mean = 0.0;
        for seed in 0..reps {
            let mut pop = HeterogeneousPopulation::new(2, mu, profiles.clone()).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            pop.step(&rewards, &mut rng);
            het_mean += pop.distribution()[0];
        }
        het_mean /= reps as f64;

        let mean = {
            let tmp = HeterogeneousPopulation::new(2, mu, profiles).unwrap();
            tmp.mean_profile()
        };
        let params = Params::with_all(2, mean.beta, mean.alpha, mu).unwrap();
        let mut hom_mean = 0.0;
        for seed in 0..reps {
            let mut pop = AgentPopulation::new(params, n);
            let mut rng = SmallRng::seed_from_u64(100_000 + seed);
            crate::GroupDynamics::step(&mut pop, &rewards, &mut rng);
            hom_mean += pop.distribution()[0];
        }
        hom_mean /= reps as f64;
        assert!(
            (het_mean - hom_mean).abs() < 0.02,
            "heterogeneous {het_mean} vs homogeneous-at-mean {hom_mean}"
        );
    }

    #[test]
    fn extreme_split_population_still_learns() {
        // Half the agents ignore signals entirely (alpha = beta = 0.5),
        // half are sharp (0.72); the sharp half drives learning.
        let profiles: Vec<AdoptProfile> = (0..1_000)
            .map(|i| {
                if i % 2 == 0 {
                    AdoptProfile::new(0.5, 0.5).unwrap()
                } else {
                    AdoptProfile::symmetric(0.72).unwrap()
                }
            })
            .collect();
        let mut pop = HeterogeneousPopulation::new(2, 0.05, profiles).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut env = BernoulliRewards::new(vec![0.9, 0.3]).unwrap();
        let mut rewards = vec![false; 2];
        let mut tail = 0.0;
        for t in 1..=400 {
            env.sample(t, &mut rng, &mut rewards);
            pop.step(&rewards, &mut rng);
            if t > 300 {
                tail += pop.distribution()[0];
            }
        }
        tail /= 100.0;
        assert!(tail > 0.75, "mixed-competence group share {tail}");
    }
}
