//! The finite-population distributed learning dynamics (the paper's
//! primary object of study), in its exact collective-statistic form.

use crate::dynamics::GroupDynamics;
use crate::params::Params;
use crate::sampling::{sample_binomial, sample_multinomial};
use crate::scratch::{mix_popularity, write_adopt_probs, StepScratch};
use rand::RngCore;

/// Per-step record of the two stages: how many individuals *sampled*
/// each option (the paper's `S_j^{t+1}`) and how many then *committed*
/// (`D_j^{t+1}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Stage-1 sampling counts `S_j`.
    pub sampled: Vec<u64>,
    /// Stage-2 committed counts `D_j`.
    pub committed: Vec<u64>,
}

impl StepRecord {
    /// Total number of individuals that committed this step.
    pub fn total_committed(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// Fraction of the population that sat out this step.
    pub fn sit_out_fraction(&self, n: usize) -> f64 {
        1.0 - self.total_committed() as f64 / n as f64
    }
}

/// The finite-population dynamics over `N` individuals (Section 2.1),
/// simulated through its collective sufficient statistic.
///
/// Because all individuals share the same adoption function `f` and
/// stage-1 choices depend only on the popularity vector `Q^t`, the
/// per-option counts are a sufficient statistic of the whole
/// population: stage 1 is one multinomial draw
/// `S ~ Multinomial(N, (1-µ)Q^t + µ/m)` and stage 2 is an independent
/// binomial thinning `D_j ~ Binomial(S_j, β^{R_j}(1-β)^{1-R_j})`.
/// This is *exactly* the law of the per-agent process (see
/// [`AgentPopulation`](crate::AgentPopulation), and the equivalence
/// tests in `tests/`), at O(m) cost per step instead of O(N).
///
/// # Example
///
/// ```
/// use sociolearn_core::{FinitePopulation, GroupDynamics, Params};
/// use rand::SeedableRng;
///
/// let params = Params::new(3, 0.6)?;
/// let mut pop = FinitePopulation::new(params, 1_000);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// pop.step(&[true, false, false], &mut rng);
/// let q = pop.distribution();
/// assert_eq!(q.len(), 3);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FinitePopulation {
    params: Params,
    n: usize,
    /// Committed counts `D_j` after the latest step.
    counts: Vec<u64>,
    /// Per-step SoA scratch (`probs` / `sampled` / `adopt`), reused
    /// across steps so the hot loop is allocation-free.
    scratch: StepScratch,
    steps: u64,
}

impl FinitePopulation {
    /// Creates a population of `n` individuals starting from the
    /// uniform popularity `Q^0_j = 1/m` (the paper's initialization):
    /// committed counts are split as evenly as integers allow, with
    /// the first `n mod m` options receiving one extra individual.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Params, n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        let m = params.num_options();
        let base = (n / m) as u64;
        let extra = n % m;
        let counts: Vec<u64> = (0..m).map(|j| base + (j < extra) as u64).collect();
        FinitePopulation::from_counts(params, n, counts)
    }

    /// Creates a population with explicit initial committed counts
    /// (used by the nonuniform-start experiments for Theorem 4.6).
    ///
    /// The counts may sum to less than `n` (the remainder starts
    /// sat-out), but not more.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, the count vector length differs from `m`,
    /// or the counts exceed `n`.
    pub fn from_counts(params: Params, n: usize, counts: Vec<u64>) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert_eq!(
            counts.len(),
            params.num_options(),
            "counts length must equal the number of options"
        );
        let total: u64 = counts.iter().sum();
        assert!(
            total <= n as u64,
            "committed counts ({total}) exceed population size ({n})"
        );
        let m = params.num_options();
        FinitePopulation {
            params,
            n,
            counts,
            scratch: StepScratch::new(m),
            steps: 0,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Population size `N`.
    pub fn population_size(&self) -> usize {
        self.n
    }

    /// Committed counts `D_j` after the latest step.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Stage-1 sampling distribution `(1-µ)Q^t_j + µ/m` given the
    /// current popularity, written into `out`.
    ///
    /// If nobody is committed (everyone sat out last step — an event of
    /// probability at most `(1 - (1-β)µ/m)^N`), the popularity term
    /// falls back to uniform, as documented in DESIGN.md.
    pub fn write_sampling_distribution(&self, out: &mut [f64]) {
        let m = self.params.num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        write_mix(&self.counts, self.params.mu(), out);
    }

    /// Advances one step and returns the per-stage counts.
    ///
    /// This is [`GroupDynamics::step`] with the intermediate sampling
    /// counts exposed (needed by the concentration experiments for
    /// Propositions 4.1–4.2).
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len() != m`.
    pub fn step_detailed<R: RngCore + ?Sized>(
        &mut self,
        rewards: &[bool],
        rng: &mut R,
    ) -> StepRecord {
        let m = self.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );

        let StepScratch {
            probs,
            sampled,
            adopt,
        } = &mut self.scratch;

        // Stage 1: everyone picks an option to consider.
        write_mix(&self.counts, self.params.mu(), probs);
        sample_multinomial(rng, self.n as u64, probs, sampled);

        // Stage 2: adopt with probability f(R_j), else sit out. The
        // adoption probabilities are materialized once per step so the
        // thinning loop is a straight zip over the SoA buffers.
        let p_false = self.params.adopt_probability(false);
        let p_true = self.params.adopt_probability(true);
        write_adopt_probs(rewards, p_false, p_true, adopt);
        for ((count, &s), &p) in self.counts.iter_mut().zip(&*sampled).zip(&*adopt) {
            *count = sample_binomial(rng, s, p);
        }
        self.steps += 1;
        StepRecord {
            sampled: sampled.clone(),
            committed: self.counts.clone(),
        }
    }
}

/// Writes the stage-1 mix `(1-µ)·counts_j/total + µ/m` into `out`,
/// falling back to uniform when nobody is committed. Both divisions
/// are hoisted so the per-option work is one fused multiply-add.
fn write_mix(counts: &[u64], mu: f64, out: &mut [f64]) {
    let m = out.len();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        out.fill(1.0 / m as f64);
        return;
    }
    mix_popularity(counts, out, (1.0 - mu) / total as f64, mu / m as f64);
}

impl GroupDynamics for FinitePopulation {
    fn num_options(&self) -> usize {
        self.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.params.num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            // Popularity is undefined when everyone sat out; report the
            // uniform distribution the next sampling stage will use.
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    fn step(&mut self, rewards: &[bool], rng: &mut dyn RngCore) {
        self.step_detailed(rewards, rng);
    }

    fn label(&self) -> &str {
        "social (finite N)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::assert_distribution;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::new(4, 0.6).unwrap()
    }

    #[test]
    fn uniform_initialization_with_remainder() {
        let pop = FinitePopulation::new(params(), 10);
        assert_eq!(pop.counts(), &[3, 3, 2, 2]);
        let q = pop.distribution();
        assert_distribution(&q, 1e-12);
    }

    #[test]
    fn distribution_sums_to_one_over_time() {
        let mut pop = FinitePopulation::new(params(), 500);
        let mut rng = SmallRng::seed_from_u64(1);
        for t in 0..200 {
            let rewards: Vec<bool> = (0..4).map(|j| (t + j) % 3 == 0).collect();
            pop.step(&rewards, &mut rng);
            assert_distribution(&pop.distribution(), 1e-12);
        }
        assert_eq!(pop.steps(), 200);
    }

    #[test]
    fn counts_never_exceed_population() {
        let mut pop = FinitePopulation::new(params(), 100);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..300 {
            let rec = pop.step_detailed(&[true, false, true, false], &mut rng);
            assert_eq!(rec.sampled.iter().sum::<u64>(), 100);
            assert!(rec.total_committed() <= 100);
            for (s, d) in rec.sampled.iter().zip(&rec.committed) {
                assert!(d <= s, "committed exceeds sampled");
            }
        }
    }

    #[test]
    fn sit_out_fraction_reasonable() {
        // With beta = 0.6, alpha = 0.4 and mixed rewards, roughly half
        // the population commits each step.
        let mut pop = FinitePopulation::new(params(), 10_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let rec = pop.step_detailed(&[true, false, true, false], &mut rng);
        let frac = rec.sit_out_fraction(10_000);
        assert!((frac - 0.5).abs() < 0.05, "sit-out fraction {frac}");
    }

    #[test]
    fn good_option_gains_popularity() {
        let p = Params::new(2, 0.7).unwrap();
        let mut pop = FinitePopulation::new(p, 5_000);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut env = crate::BernoulliRewards::new(vec![0.95, 0.05]).unwrap();
        let mut rewards = vec![false; 2];
        for t in 0..300 {
            crate::RewardModel::sample(&mut env, t, &mut rng, &mut rewards);
            pop.step(&rewards, &mut rng);
        }
        let q = pop.distribution();
        assert!(q[0] > 0.8, "best option share only {}", q[0]);
    }

    #[test]
    fn mu_keeps_floor_positive() {
        // Even when option 1 always fails, exploration keeps its
        // sampling probability at least mu/m.
        let p = Params::with_all(2, 0.7, 0.3, 0.2).unwrap();
        let mut pop = FinitePopulation::new(p, 50_000);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            pop.step(&[true, false], &mut rng);
        }
        let mut s = vec![0.0; 2];
        pop.write_sampling_distribution(&mut s);
        assert!(
            s[1] >= 0.2 / 2.0 - 1e-12,
            "sampling floor violated: {}",
            s[1]
        );
        // And the committed share stays near the theoretical floor
        // mu * alpha-ish, clearly positive.
        assert!(pop.distribution()[1] > 0.0);
    }

    #[test]
    fn all_sit_out_recovers_uniform() {
        // Force the absorbing-looking state by zeroing the counts.
        let p = params();
        let mut pop = FinitePopulation::from_counts(p, 100, vec![0, 0, 0, 0]);
        let q = pop.distribution();
        assert_eq!(q, vec![0.25; 4]);
        let mut rng = SmallRng::seed_from_u64(6);
        let rec = pop.step_detailed(&[true, true, true, true], &mut rng);
        assert_eq!(rec.sampled.iter().sum::<u64>(), 100);
        assert!(rec.total_committed() > 0);
    }

    #[test]
    fn from_counts_partial_commitment() {
        let pop = FinitePopulation::from_counts(params(), 100, vec![10, 0, 0, 0]);
        assert_eq!(pop.distribution(), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceed population size")]
    fn from_counts_rejects_overflow() {
        FinitePopulation::from_counts(params(), 10, vec![20, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "rewards length")]
    fn wrong_rewards_length_panics() {
        let mut pop = FinitePopulation::new(params(), 10);
        let mut rng = SmallRng::seed_from_u64(7);
        pop.step(&[true], &mut rng);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut pop = FinitePopulation::new(params(), 1000);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                pop.step(&[true, false, false, true], &mut rng);
            }
            pop.distribution()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn label_is_descriptive() {
        let pop = FinitePopulation::new(params(), 10);
        assert!(pop.label().contains("finite"));
    }
}
