//! The coupling between the finite- and infinite-population dynamics
//! (Lemma 4.5): both processes are driven by the *same* realized
//! reward sequence, and we track how far the finite distribution
//! `Q^t` drifts from the infinite one `P^t` in multiplicative terms.

use crate::finite::FinitePopulation;
use crate::infinite::InfiniteDynamics;
use crate::params::Params;
use crate::{GroupDynamics, RewardModel};
use rand::RngCore;

/// Multiplicative deviation between two distributions:
/// `max_j max(P_j/Q_j, Q_j/P_j) − 1`, the quantity Lemma 4.5 bounds by
/// `δ_t = 5^t δ''`.
///
/// Entries where exactly one side is zero yield `+inf`; entries where
/// both are zero are skipped (the ratio is vacuous there).
///
/// ```
/// let d = sociolearn_core::ratio_deviation(&[0.5, 0.5], &[0.4, 0.6]);
/// assert!((d - 0.25).abs() < 1e-12); // 0.5/0.4 = 1.25
/// ```
pub fn ratio_deviation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let mut worst: f64 = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if a == 0.0 && b == 0.0 {
            continue;
        }
        if a == 0.0 || b == 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max((a / b).max(b / a) - 1.0);
    }
    worst
}

/// Total-variation distance `½ Σ_j |p_j − q_j|`.
///
/// ```
/// let d = sociolearn_core::tv_distance(&[1.0, 0.0], &[0.0, 1.0]);
/// assert_eq!(d, 1.0);
/// ```
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// A coupled run of the finite and infinite dynamics under shared
/// rewards, recording the per-step deviation trajectory.
///
/// # Example
///
/// ```
/// use sociolearn_core::{BernoulliRewards, CoupledRun, Params};
/// use rand::SeedableRng;
///
/// let params = Params::new(2, 0.6)?;
/// let env = BernoulliRewards::new(vec![0.8, 0.4]).unwrap();
/// let mut run = CoupledRun::new(params, 10_000);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let trace = run.run(env, 5, &mut rng);
/// assert_eq!(trace.deviations.len(), 5);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoupledRun {
    finite: FinitePopulation,
    infinite: InfiniteDynamics,
}

/// Per-step deviation measurements from a [`CoupledRun`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CouplingTrace {
    /// `ratio_deviation(P^t, Q^t)` after each step `t = 1..=T`.
    pub deviations: Vec<f64>,
    /// `tv_distance(P^t, Q^t)` after each step.
    pub tv: Vec<f64>,
}

impl CouplingTrace {
    /// The largest finite-or-infinite deviation observed.
    pub fn max_deviation(&self) -> f64 {
        self.deviations.iter().copied().fold(0.0, f64::max)
    }

    /// First step index (1-based) at which the deviation exceeded
    /// `threshold`, if any.
    pub fn first_exceeding(&self, threshold: f64) -> Option<u64> {
        self.deviations
            .iter()
            .position(|&d| d > threshold)
            .map(|i| i as u64 + 1)
    }
}

impl CoupledRun {
    /// Couples a fresh finite population of size `n` with the infinite
    /// dynamics, both at the uniform start.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Params, n: usize) -> Self {
        CoupledRun {
            finite: FinitePopulation::new(params, n),
            infinite: InfiniteDynamics::new(params),
        }
    }

    /// Restarts the coupling from the finite population's *current*
    /// distribution (the epoch-restart step in the proof of
    /// Theorem 4.4: at each epoch boundary the infinite process is
    /// re-initialized at `Q^t`).
    pub fn resync_infinite(&mut self) {
        let q = self.finite.distribution();
        self.infinite = InfiniteDynamics::from_distribution(*self.finite.params(), q);
    }

    /// Read access to the finite side.
    pub fn finite(&self) -> &FinitePopulation {
        &self.finite
    }

    /// Read access to the infinite side.
    pub fn infinite(&self) -> &InfiniteDynamics {
        &self.infinite
    }

    /// Advances both processes one step under the same realized
    /// rewards and returns the post-step deviation.
    pub fn step<R: RngCore + ?Sized>(&mut self, rewards: &[bool], rng: &mut R) -> f64 {
        self.finite.step_detailed(rewards, rng);
        self.infinite.step_rewards(rewards);
        ratio_deviation(&self.infinite.distribution(), &self.finite.distribution())
    }

    /// Runs `steps` coupled steps against a reward model, returning the
    /// deviation trace.
    pub fn run<M, R>(&mut self, mut env: M, steps: u64, rng: &mut R) -> CouplingTrace
    where
        M: RewardModel,
        R: RngCore,
    {
        let m = self.finite.num_options();
        assert_eq!(
            env.num_options(),
            m,
            "environment has wrong number of options"
        );
        let mut rewards = vec![false; m];
        let mut trace = CouplingTrace::default();
        for t in 1..=steps {
            env.sample(t, rng, &mut rewards);
            let dev = self.step(&rewards, rng);
            trace.deviations.push(dev);
            trace.tv.push(tv_distance(
                &self.infinite.distribution(),
                &self.finite.distribution(),
            ));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::BernoulliRewards;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::new(3, 0.6).unwrap()
    }

    #[test]
    fn deviation_identities() {
        assert_eq!(ratio_deviation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!(ratio_deviation(&[1.0, 0.0], &[0.5, 0.5]).is_infinite());
        assert_eq!(ratio_deviation(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
        // Symmetric in its arguments.
        let a = [0.3, 0.7];
        let b = [0.4, 0.6];
        assert_eq!(ratio_deviation(&a, &b), ratio_deviation(&b, &a));
    }

    #[test]
    fn tv_identities() {
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((tv_distance(&[0.6, 0.4], &[0.4, 0.6]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn large_population_stays_close_short_horizon() {
        // Lemma 4.5: with N = 10^5 the first few steps keep P/Q within
        // a few percent.
        let mut run = CoupledRun::new(params(), 100_000);
        let env = BernoulliRewards::linear(3, 0.9, 0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let trace = run.run(env, 3, &mut rng);
        assert!(
            trace.max_deviation() < 0.2,
            "deviation too large for N=1e5: {}",
            trace.max_deviation()
        );
    }

    #[test]
    fn small_population_drifts_more() {
        let env = BernoulliRewards::linear(3, 0.9, 0.3).unwrap();
        let horizon = 10;
        let reps = 30;
        let mut small_total = 0.0;
        let mut large_total = 0.0;
        for seed in 0..reps {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut small = CoupledRun::new(params(), 100);
            let tr = small.run(env.clone(), horizon, &mut rng);
            small_total += tr
                .deviations
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .sum::<f64>();

            let mut rng = SmallRng::seed_from_u64(seed);
            let mut large = CoupledRun::new(params(), 100_000);
            let tr = large.run(env.clone(), horizon, &mut rng);
            large_total += tr
                .deviations
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .sum::<f64>();
        }
        assert!(
            small_total > large_total,
            "deviation should shrink with N: small {small_total} vs large {large_total}"
        );
    }

    #[test]
    fn resync_zeroes_deviation() {
        let mut run = CoupledRun::new(params(), 500);
        let env = BernoulliRewards::linear(3, 0.9, 0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        run.run(env, 20, &mut rng);
        run.resync_infinite();
        let dev = ratio_deviation(&run.infinite().distribution(), &run.finite().distribution());
        assert!(dev < 1e-12, "resync left deviation {dev}");
    }

    #[test]
    fn first_exceeding_detects_threshold() {
        let trace = CouplingTrace {
            deviations: vec![0.1, 0.2, 0.9, 0.05],
            tv: vec![0.0; 4],
        };
        assert_eq!(trace.first_exceeding(0.5), Some(3));
        assert_eq!(trace.first_exceeding(2.0), None);
        assert!((trace.max_deviation() - 0.9).abs() < 1e-12);
    }
}
