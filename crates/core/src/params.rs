//! Model parameters and the quantitative bounds the paper attaches to
//! them.

use crate::error::{ParamsError, RegimeViolation};

/// The largest `beta` inside the theorem regime, `e/(e+1)`.
pub const BETA_MAX: f64 = std::f64::consts::E / (std::f64::consts::E + 1.0);

/// Parameters of the distributed learning dynamics (Section 2.1 of the
/// paper).
///
/// * `m` — number of options,
/// * `beta` — probability of adopting a considered option whose fresh
///   quality signal was *good*,
/// * `alpha` — probability of adopting on a *bad* signal
///   (`alpha <= beta`; the theorems take `alpha = 1 - beta`),
/// * `mu` — probability an individual samples an option uniformly at
///   random instead of copying a random group member.
///
/// # Example
///
/// ```
/// use sociolearn_core::Params;
///
/// let p = Params::new(10, 0.6)?;       // alpha = 1 - beta, mu = delta^2/6
/// assert_eq!(p.num_options(), 10);
/// assert!(p.in_theorem_regime().is_ok());
/// assert!((p.delta() - (0.6f64 / 0.4).ln()).abs() < 1e-12);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    m: usize,
    beta: f64,
    alpha: f64,
    mu: f64,
}

impl Params {
    /// Creates parameters in the paper's canonical regime:
    /// `alpha = 1 - beta` and `mu = min(delta²/6, 1)` (the largest
    /// exploration rate admitted by the theorems).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or `beta` is not in `[1/2, 1]`
    /// (use [`Params::with_all`] for exotic regimes).
    pub fn new(m: usize, beta: f64) -> Result<Self, ParamsError> {
        if !(0.5..=1.0).contains(&beta) {
            return Err(ParamsError::ProbabilityOutOfRange {
                name: "beta",
                value: beta,
            });
        }
        let delta = if beta < 1.0 {
            (beta / (1.0 - beta)).ln()
        } else {
            f64::INFINITY
        };
        let mu = (delta * delta / 6.0).min(1.0);
        Params::with_all(m, beta, 1.0 - beta, mu)
    }

    /// Creates fully explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0`, any probability is outside
    /// `[0, 1]`, or `alpha > beta`.
    pub fn with_all(m: usize, beta: f64, alpha: f64, mu: f64) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        for (name, value) in [("beta", beta), ("alpha", alpha), ("mu", mu)] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ParamsError::ProbabilityOutOfRange { name, value });
            }
        }
        if alpha > beta {
            return Err(ParamsError::AlphaAboveBeta { alpha, beta });
        }
        Ok(Params { m, beta, alpha, mu })
    }

    /// Returns a copy with a different exploration rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `mu` is not a probability.
    pub fn with_mu(self, mu: f64) -> Result<Self, ParamsError> {
        Params::with_all(self.m, self.beta, self.alpha, mu)
    }

    /// Returns a copy with a different `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `alpha` is not a probability or
    /// exceeds `beta`.
    pub fn with_alpha(self, alpha: f64) -> Result<Self, ParamsError> {
        Params::with_all(self.m, self.beta, alpha, self.mu)
    }

    /// Number of options `m`.
    pub fn num_options(&self) -> usize {
        self.m
    }

    /// Adoption probability on a good signal.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Adoption probability on a bad signal.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Uniform-exploration probability.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Adoption probability given a reward bit.
    pub fn adopt_probability(&self, good: bool) -> f64 {
        if good {
            self.beta
        } else {
            self.alpha
        }
    }

    /// The paper's `delta = ln(beta / (1 - beta))`; `+inf` at `beta = 1`
    /// and negative below `beta = 1/2`.
    pub fn delta(&self) -> f64 {
        if self.beta >= 1.0 {
            f64::INFINITY
        } else {
            (self.beta / (1.0 - self.beta)).ln()
        }
    }

    /// Checks the hypothesis set of Theorems 4.3/4.4 and reports the
    /// first violation, if any.
    ///
    /// # Errors
    ///
    /// Returns the violated assumption as a [`RegimeViolation`].
    pub fn in_theorem_regime(&self) -> Result<(), RegimeViolation> {
        if self.beta <= 0.5 {
            return Err(RegimeViolation::BetaTooSmall { beta: self.beta });
        }
        if self.beta > BETA_MAX + 1e-12 {
            return Err(RegimeViolation::BetaTooLarge { beta: self.beta });
        }
        if (self.alpha - (1.0 - self.beta)).abs() > 1e-9 {
            return Err(RegimeViolation::AlphaNotSymmetric {
                alpha: self.alpha,
                beta: self.beta,
            });
        }
        if self.mu == 0.0 {
            return Err(RegimeViolation::MuZero);
        }
        let d = self.delta();
        if 6.0 * self.mu > d * d + 1e-12 {
            return Err(RegimeViolation::MuTooLarge {
                mu: self.mu,
                max_mu: d * d / 6.0,
            });
        }
        Ok(())
    }

    /// Theorem 4.3's regret bound for the infinite-population dynamics:
    /// `3·delta`.
    pub fn regret_bound_infinite(&self) -> f64 {
        3.0 * self.delta()
    }

    /// Theorem 4.4's regret bound for the finite-population dynamics:
    /// `6·delta`.
    pub fn regret_bound_finite(&self) -> f64 {
        6.0 * self.delta()
    }

    /// Smallest horizon for which Theorem 4.3's bound applies,
    /// `ceil(ln m / delta²)` (at least 1).
    pub fn min_horizon(&self) -> u64 {
        self.min_horizon_from_floor(1.0 / self.m as f64)
    }

    /// Theorem 4.6 horizon for a start distribution with floor `zeta`:
    /// `ceil(ln(1/zeta) / delta²)` (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `zeta` is not in `(0, 1]`.
    pub fn min_horizon_from_floor(&self, zeta: f64) -> u64 {
        assert!(
            zeta > 0.0 && zeta <= 1.0,
            "floor zeta must be in (0,1], got {zeta}"
        );
        let d = self.delta();
        if !d.is_finite() || d <= 0.0 {
            return 1;
        }
        (((1.0 / zeta).ln() / (d * d)).ceil() as u64).max(1)
    }

    /// The popularity floor `zeta = mu (1 - beta) / (4 m)` from the
    /// proof of Theorem 4.4; every option retains at least this
    /// popularity w.h.p. at every step.
    pub fn popularity_floor(&self) -> f64 {
        self.mu * (1.0 - self.beta) / (4.0 * self.m as f64)
    }

    /// The epoch length used by the large-`T` argument:
    /// `ceil(ln(1/zeta) / delta²)` with `zeta` the popularity floor.
    pub fn epoch_length(&self) -> u64 {
        let zeta = self.popularity_floor();
        if zeta <= 0.0 {
            return self.min_horizon();
        }
        self.min_horizon_from_floor(zeta)
    }

    /// Lemma 4.5's per-step coupling granularity
    /// `delta'' = sqrt(60 m ln N / ((1-beta) mu N))`.
    ///
    /// Returns `+inf` when the formula is undefined (`mu = 0`,
    /// `beta = 1`, or `N < 2`).
    pub fn coupling_delta(&self, n: usize) -> f64 {
        if self.mu == 0.0 || self.beta >= 1.0 || n < 2 {
            return f64::INFINITY;
        }
        let nf = n as f64;
        (60.0 * self.m as f64 * nf.ln() / ((1.0 - self.beta) * self.mu * nf)).sqrt()
    }

    /// Lemma 4.5's deviation bound after `t` steps: `5^t · delta''(N)`.
    ///
    /// Saturates at `+inf` quickly — the lemma is only informative for
    /// `t` up to roughly `log N`.
    pub fn coupling_deviation_bound(&self, n: usize, t: u64) -> f64 {
        let d = self.coupling_delta(n);
        if !d.is_finite() {
            return f64::INFINITY;
        }
        5.0f64.powi(t.min(1000) as i32) * d
    }

    /// The `beta` minimizing the tuned regret `ln m/(delta T) + 2 delta`
    /// over the theorem range, for a given horizon `T` (Section 6's
    /// observation that an algorithm designer would optimize `beta`).
    ///
    /// Solves `delta* = sqrt(ln m / (2T))`, clamped into
    /// `(1/2, e/(e+1)]`, and converts back through
    /// `beta = e^delta/(1+e^delta)`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn tuned_beta(m: usize, t: u64) -> f64 {
        assert!(t > 0, "tuned_beta needs a positive horizon");
        let m = m.max(2);
        let delta_star = ((m as f64).ln() / (2.0 * t as f64)).sqrt();
        let delta_star = delta_star.clamp(1e-6, 1.0);
        let e = delta_star.exp();
        (e / (1.0 + e)).min(BETA_MAX)
    }
}

impl std::fmt::Display for Params {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Params(m={}, beta={}, alpha={}, mu={})",
            self.m, self.beta, self.alpha, self.mu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_construction() {
        let p = Params::new(5, 0.6).unwrap();
        assert_eq!(p.num_options(), 5);
        assert!((p.alpha() - 0.4).abs() < 1e-12);
        let d = p.delta();
        assert!((p.mu() - d * d / 6.0).abs() < 1e-12);
        assert!(p.in_theorem_regime().is_ok());
    }

    #[test]
    fn delta_known_value() {
        // beta = e/(e+1) gives delta = 1 exactly.
        let p = Params::new(3, BETA_MAX).unwrap();
        assert!((p.delta() - 1.0).abs() < 1e-12);
        assert!(p.in_theorem_regime().is_ok());
    }

    #[test]
    fn regime_rejections() {
        let p = Params::with_all(3, 0.4, 0.1, 0.01).unwrap();
        assert!(matches!(
            p.in_theorem_regime(),
            Err(RegimeViolation::BetaTooSmall { .. })
        ));

        let p = Params::with_all(3, 0.9, 0.1, 0.01).unwrap();
        assert!(matches!(
            p.in_theorem_regime(),
            Err(RegimeViolation::BetaTooLarge { .. })
        ));

        let p = Params::with_all(3, 0.6, 0.4, 0.5).unwrap();
        assert!(matches!(
            p.in_theorem_regime(),
            Err(RegimeViolation::MuTooLarge { .. })
        ));

        let p = Params::with_all(3, 0.6, 0.4, 0.0).unwrap();
        assert!(matches!(
            p.in_theorem_regime(),
            Err(RegimeViolation::MuZero)
        ));

        let p = Params::with_all(3, 0.6, 0.1, 0.01).unwrap();
        assert!(matches!(
            p.in_theorem_regime(),
            Err(RegimeViolation::AlphaNotSymmetric { .. })
        ));
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Params::with_all(0, 0.6, 0.4, 0.1),
            Err(ParamsError::NoOptions)
        ));
        assert!(Params::with_all(3, 1.5, 0.4, 0.1).is_err());
        assert!(Params::with_all(3, 0.6, -0.1, 0.1).is_err());
        assert!(Params::with_all(3, 0.6, 0.4, 2.0).is_err());
        assert!(matches!(
            Params::with_all(3, 0.3, 0.6, 0.1),
            Err(ParamsError::AlphaAboveBeta { .. })
        ));
        assert!(Params::new(3, 0.3).is_err());
    }

    #[test]
    fn horizon_grows_with_m_and_shrinks_with_beta() {
        let p2 = Params::new(2, 0.6).unwrap();
        let p100 = Params::new(100, 0.6).unwrap();
        assert!(p100.min_horizon() > p2.min_horizon());

        let gentle = Params::new(10, 0.55).unwrap();
        let strong = Params::new(10, 0.7).unwrap();
        assert!(gentle.min_horizon() > strong.min_horizon());
    }

    #[test]
    fn epoch_length_exceeds_min_horizon() {
        let p = Params::new(10, 0.6).unwrap();
        // Epochs start from the floor zeta < 1/m, so they are longer.
        assert!(p.epoch_length() >= p.min_horizon());
        assert!(p.popularity_floor() < 1.0 / 10.0);
        assert!(p.popularity_floor() > 0.0);
    }

    #[test]
    fn coupling_delta_shrinks_with_n() {
        let p = Params::new(5, 0.6).unwrap();
        let d3 = p.coupling_delta(1_000);
        let d6 = p.coupling_delta(1_000_000);
        assert!(d6 < d3);
        assert!(d6 > 0.0);
        // mu = 0 makes it undefined.
        let p0 = p.with_mu(0.0).unwrap();
        assert!(p0.coupling_delta(1_000).is_infinite());
    }

    #[test]
    fn coupling_bound_grows_exponentially() {
        let p = Params::new(5, 0.6).unwrap();
        let b1 = p.coupling_deviation_bound(10_000, 1);
        let b2 = p.coupling_deviation_bound(10_000, 2);
        assert!((b2 / b1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tuned_beta_decreases_with_horizon() {
        let b_short = Params::tuned_beta(10, 10);
        let b_long = Params::tuned_beta(10, 100_000);
        assert!(b_long < b_short);
        assert!(b_long > 0.5);
        assert!(b_short <= BETA_MAX);
    }

    #[test]
    fn beta_one_degenerates_gracefully() {
        let p = Params::with_all(4, 1.0, 0.0, 0.1).unwrap();
        assert!(p.delta().is_infinite());
        assert_eq!(p.min_horizon(), 1);
        assert!(p.coupling_delta(100).is_infinite());
    }

    #[test]
    fn display_mentions_all_fields() {
        let p = Params::new(7, 0.6).unwrap();
        let s = p.to_string();
        assert!(s.contains("m=7"));
        assert!(s.contains("beta=0.6"));
    }
}
