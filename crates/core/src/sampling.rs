//! Sampling primitives used by the dynamics: categorical draws (alias
//! method and CDF inversion), exact binomial, and multinomial via
//! conditional binomials.

use rand::Rng;
use rand_distr::{Binomial, Distribution};

/// Vose's alias method: O(m) construction, O(1) categorical sampling.
///
/// The per-agent form of the dynamics draws one option per agent per
/// step from the popularity distribution, so constant-time sampling is
/// what keeps that form O(N) per step.
///
/// # Example
///
/// ```
/// use sociolearn_core::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// let mut counts = [0u32; 2];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// assert!(counts[1] > counts[0] * 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return None;
        }
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical residue: pin whatever is left to probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Draws one category from an explicit probability vector by CDF
/// inversion (O(m) per draw). Used where the distribution changes
/// every draw so an alias table would not amortize.
///
/// Falls back to the last index on accumulated rounding error; treats
/// the vector as unnormalized weights.
///
/// # Panics
///
/// Panics if `probs` is empty or sums to zero.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> usize {
    assert!(!probs.is_empty(), "sample_categorical: empty distribution");
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "sample_categorical: zero-mass distribution");
    let mut u = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// Draws from `Binomial(n, p)` by delegating to `rand_distr`'s
/// `Binomial`, handling the `p ∈ {0, 1}` edges directly. With the
/// vendored shim this is exact (geometric waiting times) up to
/// `n·min(p, 1-p) ≤ 5000` and a rounded-normal approximation beyond
/// (see `vendor/rand_distr`); swap in the real crate for BTPE-exact
/// draws at every scale.
///
/// # Panics
///
/// Panics if `p` is not a probability.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial p must be in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    Binomial::new(n, p)
        .expect("validated arguments")
        .sample(rng)
}

/// Draws `S ~ Multinomial(n, probs)` into `out` using the conditional
/// binomial decomposition — the joint law, in O(m) binomial draws
/// (exact wherever [`sample_binomial`] is exact).
///
/// `probs` is treated as unnormalized non-negative weights.
///
/// # Panics
///
/// Panics if lengths mismatch, `probs` is empty, has negative entries,
/// or sums to zero.
pub fn sample_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64], out: &mut [u64]) {
    assert_eq!(
        probs.len(),
        out.len(),
        "multinomial: buffer length mismatch"
    );
    assert!(!probs.is_empty(), "multinomial: empty distribution");
    let mut remaining_mass: f64 = probs.iter().sum();
    assert!(
        remaining_mass > 0.0 && probs.iter().all(|&p| p >= 0.0),
        "multinomial: weights must be non-negative with positive sum"
    );
    let mut remaining = n;
    for (i, &p) in probs.iter().enumerate() {
        if remaining == 0 {
            out[i..].fill(0);
            return;
        }
        if i == probs.len() - 1 {
            out[i] = remaining;
            return;
        }
        let cond = (p / remaining_mass).clamp(0.0, 1.0);
        let draw = sample_binomial(rng, remaining, cond);
        out[i] = draw;
        remaining -= draw;
        remaining_mass -= p;
        if remaining_mass <= 0.0 {
            // All remaining weights are zero; nothing else can be drawn.
            out[i + 1..].fill(0);
            // Any leftover count would indicate inconsistent weights;
            // assign it to the last positive-weight category (here).
            out[i] += remaining;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn alias_single_category() {
        let t = AliasTable::new(&[7.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn alias_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "cat {i}: freq={freq}, want {w}");
        }
    }

    #[test]
    fn alias_zero_weight_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn categorical_frequencies() {
        let probs = [0.5, 0.25, 0.25];
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &probs)] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "cat {i}: freq={freq}");
        }
    }

    #[test]
    fn categorical_unnormalized_ok() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..100 {
            let i = sample_categorical(&mut rng, &[0.0, 10.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero-mass")]
    fn categorical_zero_mass_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        sample_categorical(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn binomial_edges() {
        let mut rng = SmallRng::seed_from_u64(17);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn binomial_mean_and_bounds() {
        let mut rng = SmallRng::seed_from_u64(19);
        let mut total = 0u64;
        let reps = 5_000;
        for _ in 0..reps {
            let d = sample_binomial(&mut rng, 100, 0.3);
            assert!(d <= 100);
            total += d;
        }
        let mean = total as f64 / reps as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn multinomial_conserves_total() {
        let mut rng = SmallRng::seed_from_u64(23);
        let probs = [0.2, 0.3, 0.5];
        let mut out = [0u64; 3];
        for _ in 0..200 {
            sample_multinomial(&mut rng, 1000, &probs, &mut out);
            assert_eq!(out.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn multinomial_means() {
        let mut rng = SmallRng::seed_from_u64(29);
        let probs = [0.1, 0.6, 0.3];
        let mut out = [0u64; 3];
        let mut sums = [0f64; 3];
        let reps = 3_000;
        for _ in 0..reps {
            sample_multinomial(&mut rng, 500, &probs, &mut out);
            for (s, &v) in sums.iter_mut().zip(&out) {
                *s += v as f64;
            }
        }
        for (i, &p) in probs.iter().enumerate() {
            let mean = sums[i] / reps as f64;
            let expect = 500.0 * p;
            assert!(
                (mean - expect).abs() < expect * 0.05 + 1.0,
                "cat {i}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_trailing_zero_weights() {
        let mut rng = SmallRng::seed_from_u64(31);
        let probs = [1.0, 0.0, 0.0];
        let mut out = [0u64; 3];
        sample_multinomial(&mut rng, 42, &probs, &mut out);
        assert_eq!(out, [42, 0, 0]);
    }

    #[test]
    fn multinomial_zero_trials() {
        let mut rng = SmallRng::seed_from_u64(37);
        let mut out = [9u64; 2];
        sample_multinomial(&mut rng, 0, &[0.5, 0.5], &mut out);
        assert_eq!(out, [0, 0]);
    }
}
