//! Sampling primitives used by the dynamics: categorical draws (alias
//! method and CDF inversion), exact binomial, and multinomial via
//! conditional binomials.

use rand::Rng;
use rand_distr::{Binomial, Distribution};

/// Vose's alias method: O(m) construction, O(1) categorical sampling.
///
/// The per-agent form of the dynamics draws one option per agent per
/// step from the popularity distribution, so constant-time sampling is
/// what keeps that form O(N) per step.
///
/// # Example
///
/// ```
/// use sociolearn_core::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// let mut counts = [0u32; 2];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// assert!(counts[1] > counts[0] * 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return None;
        }
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical residue: pin whatever is left to probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Draws one category from an explicit probability vector by CDF
/// inversion (O(m) per draw). Used where the distribution changes
/// every draw so an alias table would not amortize.
///
/// Treats the vector as unnormalized weights. When accumulated
/// floating-point error leaves residual mass after the scan (possible
/// because `u` is drawn against the one-shot sum while the scan
/// subtracts term by term), the draw falls back to the last
/// *positive-weight* index — a zero-weight category is never returned.
///
/// # Panics
///
/// Panics if `probs` is empty or sums to zero.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> usize {
    assert!(!probs.is_empty(), "sample_categorical: empty distribution");
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "sample_categorical: zero-mass distribution");
    let mut u = rng.gen::<f64>() * total;
    let mut last_positive = usize::MAX;
    for (i, &p) in probs.iter().enumerate() {
        if p > 0.0 {
            u -= p;
            last_positive = i;
            if u <= 0.0 {
                return i;
            }
        }
    }
    // Unreachable in exact arithmetic (u < total); the asserted
    // positive sum guarantees `last_positive` was set.
    last_positive
}

/// Draws from `Binomial(n, p)` by delegating to `rand_distr`'s
/// `Binomial`, handling the `p ∈ {0, 1}` edges directly. Exact at
/// every `(n, p)`: the vendored shim (like the real crate) uses BINV
/// inverse-transform below mean `n·min(p, 1-p) = 10` and the BTPE
/// rejection sampler beyond, so a draw costs O(1) expected uniforms at
/// any scale — there is no approximation regime (see
/// `vendor/rand_distr`).
///
/// # Panics
///
/// Panics if `p` is not a probability.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial p must be in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    Binomial::new(n, p)
        .expect("validated arguments")
        .sample(rng)
}

/// Draws `S ~ Multinomial(n, probs)` into `out` using the conditional
/// binomial decomposition — the joint law, in O(m) exact binomial
/// draws (O(1) expected uniforms each, see [`sample_binomial`]).
///
/// `probs` is treated as unnormalized non-negative weights. The last
/// positive-weight category is the decomposition's terminal one (its
/// conditional probability is exactly 1), so trials are conserved and
/// a zero-weight category is never drawn — including when accumulated
/// floating-point error exhausts the running mass early, in which case
/// the leftover trials go to the last positive-weight category.
///
/// # Panics
///
/// Panics if lengths mismatch, `probs` is empty, has negative entries,
/// or sums to zero.
pub fn sample_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64], out: &mut [u64]) {
    assert_eq!(
        probs.len(),
        out.len(),
        "multinomial: buffer length mismatch"
    );
    assert!(!probs.is_empty(), "multinomial: empty distribution");
    let mut remaining_mass: f64 = probs.iter().sum();
    assert!(
        remaining_mass > 0.0 && probs.iter().all(|&p| p >= 0.0),
        "multinomial: weights must be non-negative with positive sum"
    );
    let last_positive = probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("positive sum implies a positive weight");
    out[last_positive..].fill(0);
    let mut remaining = n;
    for i in 0..last_positive {
        if remaining == 0 {
            out[i..last_positive].fill(0);
            return;
        }
        if remaining_mass <= 0.0 {
            // Floating-point drift exhausted the running mass before
            // the terminal category: the leftover trials belong to the
            // categories still ahead — hand them to the last
            // positive-weight one, never to a zero-weight category.
            out[i..last_positive].fill(0);
            out[last_positive] = remaining;
            return;
        }
        let cond = (probs[i] / remaining_mass).clamp(0.0, 1.0);
        let draw = sample_binomial(rng, remaining, cond);
        out[i] = draw;
        remaining -= draw;
        remaining_mass -= probs[i];
    }
    out[last_positive] = remaining;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn alias_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn alias_single_category() {
        let t = AliasTable::new(&[7.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn alias_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "cat {i}: freq={freq}, want {w}");
        }
    }

    #[test]
    fn alias_zero_weight_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn categorical_frequencies() {
        let probs = [0.5, 0.25, 0.25];
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &probs)] += 1;
        }
        for (i, &p) in probs.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "cat {i}: freq={freq}");
        }
    }

    #[test]
    fn categorical_unnormalized_ok() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..100 {
            let i = sample_categorical(&mut rng, &[0.0, 10.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero-mass")]
    fn categorical_zero_mass_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        sample_categorical(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn categorical_fallback_skips_zero_weight_tail() {
        // Regression: with the maximal uniform (StepRng pinned at
        // u64::MAX) and weights of mixed magnitude, the term-by-term
        // subtraction scan retains residual mass after every positive
        // weight, so the scan falls through. The fallback must land on
        // the last *positive* weight (index 6), never the zero-weight
        // tail (index 7) the old code returned.
        let probs = [0.1, 0.3, 3.0, 3.0, 1e8, 7.0, 0.7, 0.0];
        let mut rng = rand::rngs::mock::StepRng::new(u64::MAX, 0);
        let idx = sample_categorical(&mut rng, &probs);
        assert!(probs[idx] > 0.0, "zero-weight category {idx} drawn");
        assert_eq!(idx, 6);
    }

    #[test]
    fn categorical_never_draws_zero_weight_tail() {
        // [1.0, 0.0]-shaped tails across ordinary seeds.
        let shapes: [&[f64]; 3] = [&[1.0, 0.0], &[0.4, 0.6, 0.0, 0.0], &[0.0, 1.0, 0.0]];
        let mut rng = SmallRng::seed_from_u64(41);
        for probs in shapes {
            for _ in 0..20_000 {
                let idx = sample_categorical(&mut rng, probs);
                assert!(probs[idx] > 0.0, "zero-weight category {idx} drawn");
            }
        }
    }

    #[test]
    fn binomial_edges() {
        let mut rng = SmallRng::seed_from_u64(17);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn binomial_mean_and_bounds() {
        let mut rng = SmallRng::seed_from_u64(19);
        let mut total = 0u64;
        let reps = 5_000;
        for _ in 0..reps {
            let d = sample_binomial(&mut rng, 100, 0.3);
            assert!(d <= 100);
            total += d;
        }
        let mean = total as f64 / reps as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn multinomial_conserves_total() {
        let mut rng = SmallRng::seed_from_u64(23);
        let probs = [0.2, 0.3, 0.5];
        let mut out = [0u64; 3];
        for _ in 0..200 {
            sample_multinomial(&mut rng, 1000, &probs, &mut out);
            assert_eq!(out.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn multinomial_means() {
        let mut rng = SmallRng::seed_from_u64(29);
        let probs = [0.1, 0.6, 0.3];
        let mut out = [0u64; 3];
        let mut sums = [0f64; 3];
        let reps = 3_000;
        for _ in 0..reps {
            sample_multinomial(&mut rng, 500, &probs, &mut out);
            for (s, &v) in sums.iter_mut().zip(&out) {
                *s += v as f64;
            }
        }
        for (i, &p) in probs.iter().enumerate() {
            let mean = sums[i] / reps as f64;
            let expect = 500.0 * p;
            assert!(
                (mean - expect).abs() < expect * 0.05 + 1.0,
                "cat {i}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_trailing_zero_weights() {
        let mut rng = SmallRng::seed_from_u64(31);
        let probs = [1.0, 0.0, 0.0];
        let mut out = [0u64; 3];
        sample_multinomial(&mut rng, 42, &probs, &mut out);
        assert_eq!(out, [42, 0, 0]);
    }

    #[test]
    fn multinomial_zero_trials() {
        let mut rng = SmallRng::seed_from_u64(37);
        let mut out = [9u64; 2];
        sample_multinomial(&mut rng, 0, &[0.5, 0.5], &mut out);
        assert_eq!(out, [0, 0]);
    }

    #[test]
    fn multinomial_interleaved_zero_weights() {
        let mut rng = SmallRng::seed_from_u64(43);
        let probs = [0.0, 1.0, 0.0, 2.0, 0.0];
        let mut out = [0u64; 5];
        for _ in 0..300 {
            sample_multinomial(&mut rng, 500, &probs, &mut out);
            assert_eq!(out.iter().sum::<u64>(), 500);
            for (i, (&p, &c)) in probs.iter().zip(&out).enumerate() {
                assert!(p > 0.0 || c == 0, "zero-weight category {i} drawn");
            }
        }
    }

    #[test]
    fn multinomial_drifted_mass_conserves_and_respects_zero_weights() {
        // Regression: these magnitude mixes drive the running mass to
        // <= 0 by floating-point drift *before* the last positive
        // weight is reached (the 1e16 entry absorbs the small ones in
        // the one-shot sum but not in the term-by-term subtraction).
        // Leftover trials must land on a positive-weight category and
        // the total must be conserved — the old code dumped them on
        // whatever category the drift happened at, zero-weight or not.
        let cases: [&[f64]; 3] = [
            &[1e16, 0.2, 0.0, 0.7],
            &[0.3, 1e16, 0.3, 1e8, 0.7, 0.0, 0.2],
            &[1e16, 0.7, 1e-9, 0.7, 0.0, 0.3],
        ];
        for probs in cases {
            let mut out = vec![0u64; probs.len()];
            for seed in 0..300 {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_multinomial(&mut rng, 1_000, probs, &mut out);
                assert_eq!(out.iter().sum::<u64>(), 1_000, "trials lost: {out:?}");
                for (i, (&p, &c)) in probs.iter().zip(&out).enumerate() {
                    assert!(p > 0.0 || c == 0, "zero-weight category {i} drawn: {out:?}");
                }
            }
        }
    }
}
