//! Struct-of-arrays scratch buffers and chunked kernels for the
//! sampling hot path.
//!
//! With the exact BTPE binomial costing O(1) uniforms per draw at any
//! scale, the sample→count→normalize loop of the collective dynamics
//! is no longer sampler-bound — what remains is streaming over the
//! per-option arrays. This module keeps those arrays separate
//! (`probs` / `sampled` / `adopt`, one flat buffer each, reused across
//! steps) and provides branch-light, chunked inner loops over them so
//! the compiler can vectorize and the step cost is set by memory
//! bandwidth.

/// Lanes per chunk in the inner loops: wide enough for the compiler to
/// use full vector registers, small enough that the scalar remainder
/// (< 8 iterations) is negligible even at small `m`.
const CHUNK: usize = 8;

/// Reusable per-step scratch for the collective dynamics, in
/// struct-of-arrays layout: one flat buffer per quantity rather than
/// one struct per option.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct StepScratch {
    /// Stage-1 sampling probabilities `(1-µ)Q_j + µ/m`.
    pub probs: Vec<f64>,
    /// Stage-1 multinomial counts `S_j`.
    pub sampled: Vec<u64>,
    /// Stage-2 per-option adoption probabilities `f(R_j)`.
    pub adopt: Vec<f64>,
}

impl StepScratch {
    /// Scratch sized for `m` options.
    pub fn new(m: usize) -> Self {
        StepScratch {
            probs: vec![0.0; m],
            sampled: vec![0; m],
            adopt: vec![0.0; m],
        }
    }
}

/// Writes `out[j] = counts[j] * scale + floor` — the stage-1 mix
/// `(1-µ)·D_j/total + µ/m` with the divisions hoisted — in chunks of
/// [`CHUNK`] lanes with no per-element branches.
pub(crate) fn mix_popularity(counts: &[u64], out: &mut [f64], scale: f64, floor: f64) {
    debug_assert_eq!(counts.len(), out.len());
    let mut c_chunks = counts.chunks_exact(CHUNK);
    let mut o_chunks = out.chunks_exact_mut(CHUNK);
    for (cs, os) in (&mut c_chunks).zip(&mut o_chunks) {
        for (o, &c) in os.iter_mut().zip(cs) {
            *o = c as f64 * scale + floor;
        }
    }
    for (o, &c) in o_chunks
        .into_remainder()
        .iter_mut()
        .zip(c_chunks.remainder())
    {
        *o = c as f64 * scale + floor;
    }
}

/// Writes `out[j] = f(rewards[j])`, i.e. `p_true` where the option was
/// rewarded and `p_false` where it was not, via a branch-light
/// two-entry table lookup in chunks of [`CHUNK`] lanes.
pub(crate) fn write_adopt_probs(rewards: &[bool], p_false: f64, p_true: f64, out: &mut [f64]) {
    debug_assert_eq!(rewards.len(), out.len());
    let table = [p_false, p_true];
    let mut r_chunks = rewards.chunks_exact(CHUNK);
    let mut o_chunks = out.chunks_exact_mut(CHUNK);
    for (rs, os) in (&mut r_chunks).zip(&mut o_chunks) {
        for (o, &r) in os.iter_mut().zip(rs) {
            *o = table[r as usize];
        }
    }
    for (o, &r) in o_chunks
        .into_remainder()
        .iter_mut()
        .zip(r_chunks.remainder())
    {
        *o = table[r as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_scalar_reference_across_lengths() {
        for m in [1usize, 3, 7, 8, 9, 16, 31, 64] {
            let counts: Vec<u64> = (0..m as u64).map(|j| j * j + 1).collect();
            let (scale, floor) = (0.25, 0.025);
            let mut out = vec![0.0; m];
            mix_popularity(&counts, &mut out, scale, floor);
            for (j, (&c, &o)) in counts.iter().zip(&out).enumerate() {
                let want = c as f64 * scale + floor;
                assert_eq!(o, want, "m={m}, j={j}");
            }
        }
    }

    #[test]
    fn adopt_probs_match_reward_pattern() {
        for m in [1usize, 4, 8, 13] {
            let rewards: Vec<bool> = (0..m).map(|j| j % 3 == 0).collect();
            let mut out = vec![0.0; m];
            write_adopt_probs(&rewards, 0.3, 0.7, &mut out);
            for (&r, &o) in rewards.iter().zip(&out) {
                assert_eq!(o, if r { 0.7 } else { 0.3 });
            }
        }
    }

    #[test]
    fn scratch_sizes_all_arrays() {
        let s = StepScratch::new(5);
        assert_eq!((s.probs.len(), s.sampled.len(), s.adopt.len()), (5, 5, 5));
    }
}
