//! The finite-population dynamics in explicit per-agent form.

use crate::dynamics::GroupDynamics;
use crate::params::Params;
use crate::scratch::write_adopt_probs;
use rand::{Rng, RngCore};

/// The same finite-population dynamics as
/// [`FinitePopulation`](crate::FinitePopulation), but simulated agent
/// by agent: each individual independently runs the two-stage
/// sample-then-adopt protocol of Section 2.1.
///
/// This form costs O(N) per step instead of O(m), but it is the form
/// that generalizes — the network-restricted variant
/// (`sociolearn-network`) and the message-passing runtime
/// (`sociolearn-dist`) both build on per-agent state. Integration
/// tests verify it is distributionally identical to the collective
/// form.
///
/// Stage 1 ("observe the choice of a random member of the group at the
/// last time step") samples a companion uniformly among the
/// individuals who *committed* in the previous step, which draws an
/// option exactly ∝ `Q^t_j` — matching the paper's definition of the
/// popularity-proportional branch. If nobody committed, the agent
/// falls back to a uniformly random option.
///
/// # Example
///
/// ```
/// use sociolearn_core::{AgentPopulation, GroupDynamics, Params};
/// use rand::SeedableRng;
///
/// let params = Params::new(3, 0.6)?;
/// let mut pop = AgentPopulation::new(params, 200);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// pop.step(&[true, false, false], &mut rng);
/// assert_eq!(pop.distribution().len(), 3);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AgentPopulation {
    params: Params,
    n: usize,
    /// Option committed to in the latest step; `None` = sat out.
    choices: Vec<Option<u32>>,
    /// Options of the agents who committed in the latest step (the
    /// "observable" pool for stage 1), kept for O(1) companion draws.
    committed_options: Vec<u32>,
    /// Cached per-option committed counts.
    counts: Vec<u64>,
    /// Scratch: last step's pool, recycled as next step's new pool so
    /// stepping never allocates.
    pool_scratch: Vec<u32>,
    /// Scratch: per-option adoption probabilities `f(R_j)`.
    adopt: Vec<f64>,
    steps: u64,
}

impl AgentPopulation {
    /// Creates `n` agents starting from the uniform initialization:
    /// agent `i` is committed to option `i mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(params: Params, n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        let m = params.num_options();
        let choices: Vec<Option<u32>> = (0..n).map(|i| Some((i % m) as u32)).collect();
        Self::from_choices(params, choices)
    }

    /// Creates a population from explicit initial per-agent choices
    /// (`None` = starts sat-out).
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or any option index is out of
    /// range.
    pub fn from_choices(params: Params, choices: Vec<Option<u32>>) -> Self {
        assert!(!choices.is_empty(), "population must be non-empty");
        let m = params.num_options();
        let mut counts = vec![0u64; m];
        let mut committed_options = Vec::with_capacity(choices.len());
        for c in choices.iter().flatten() {
            assert!((*c as usize) < m, "option index {c} out of range");
            counts[*c as usize] += 1;
            committed_options.push(*c);
        }
        AgentPopulation {
            n: choices.len(),
            pool_scratch: Vec::with_capacity(choices.len()),
            adopt: vec![0.0; m],
            params,
            choices,
            committed_options,
            counts,
            steps: 0,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Population size `N`.
    pub fn population_size(&self) -> usize {
        self.n
    }

    /// Per-agent committed options after the latest step.
    pub fn choices(&self) -> &[Option<u32>] {
        &self.choices
    }

    /// Committed counts per option.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Fraction of agents that committed in the latest step.
    pub fn committed_fraction(&self) -> f64 {
        self.committed_options.len() as f64 / self.n as f64
    }
}

impl GroupDynamics for AgentPopulation {
    fn num_options(&self) -> usize {
        self.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        let m = self.params.num_options();
        assert_eq!(
            out.len(),
            m,
            "buffer length must equal the number of options"
        );
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            out.fill(1.0 / m as f64);
            return;
        }
        for (slot, &c) in out.iter_mut().zip(&self.counts) {
            *slot = c as f64 / total as f64;
        }
    }

    fn step(&mut self, rewards: &[bool], rng: &mut dyn RngCore) {
        let m = self.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        let mu = self.params.mu();
        let p_false = self.params.adopt_probability(false);
        let p_true = self.params.adopt_probability(true);
        write_adopt_probs(rewards, p_false, p_true, &mut self.adopt);

        // Swap last step's pool out and recycle the previous scratch
        // buffer as the new pool: the step is allocation-free once the
        // buffers have grown to capacity.
        let pool = std::mem::replace(
            &mut self.committed_options,
            std::mem::take(&mut self.pool_scratch),
        );
        self.committed_options.clear();
        self.counts.fill(0);
        for choice in self.choices.iter_mut() {
            // Stage 1: pick an option to consider.
            let j = if pool.is_empty() || rng.gen_bool(mu) {
                rng.gen_range(0..m) as u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            // Stage 2: observe the signal, adopt or sit out.
            if rng.gen_bool(self.adopt[j as usize]) {
                *choice = Some(j);
                self.counts[j as usize] += 1;
                self.committed_options.push(j);
            } else {
                *choice = None;
            }
        }
        self.pool_scratch = pool;
        self.steps += 1;
    }

    fn label(&self) -> &str {
        "social (per-agent)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::assert_distribution;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::new(3, 0.6).unwrap()
    }

    #[test]
    fn initialization_round_robin() {
        let pop = AgentPopulation::new(params(), 7);
        assert_eq!(pop.counts(), &[3, 2, 2]);
        assert_eq!(pop.committed_fraction(), 1.0);
    }

    #[test]
    fn step_preserves_invariants() {
        let mut pop = AgentPopulation::new(params(), 300);
        let mut rng = SmallRng::seed_from_u64(1);
        for t in 0..100 {
            let rewards: Vec<bool> = (0..3).map(|j| (t + j) % 2 == 0).collect();
            pop.step(&rewards, &mut rng);
            assert_distribution(&pop.distribution(), 1e-12);
            let committed: u64 = pop.counts().iter().sum();
            assert_eq!(
                committed,
                pop.choices().iter().flatten().count() as u64,
                "counts cache out of sync"
            );
            assert!(committed <= 300);
        }
    }

    #[test]
    fn best_option_wins() {
        let p = Params::new(2, 0.7).unwrap();
        let mut pop = AgentPopulation::new(p, 2_000);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut env = crate::BernoulliRewards::new(vec![0.95, 0.05]).unwrap();
        let mut rewards = vec![false; 2];
        for t in 0..300 {
            crate::RewardModel::sample(&mut env, t, &mut rng, &mut rewards);
            pop.step(&rewards, &mut rng);
        }
        assert!(pop.distribution()[0] > 0.8);
    }

    #[test]
    fn from_choices_with_sit_outs() {
        let choices = vec![Some(0), None, Some(2), None];
        let pop = AgentPopulation::from_choices(params(), choices);
        assert_eq!(pop.counts(), &[1, 0, 1]);
        assert_eq!(pop.committed_fraction(), 0.5);
        let q = pop.distribution();
        assert_eq!(q, vec![0.5, 0.0, 0.5]);
    }

    #[test]
    fn empty_pool_falls_back_to_uniform() {
        let choices = vec![None; 50];
        let mut pop = AgentPopulation::from_choices(params(), choices);
        assert_eq!(pop.distribution(), vec![1.0 / 3.0; 3]);
        let mut rng = SmallRng::seed_from_u64(3);
        pop.step(&[true, true, true], &mut rng);
        // With beta = 0.6 and all-good rewards, most agents commit.
        assert!(pop.committed_fraction() > 0.4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_choices_validates_indices() {
        AgentPopulation::from_choices(params(), vec![Some(9)]);
    }

    #[test]
    fn matches_collective_form_in_mean() {
        // First-step mean of the committed counts should agree between
        // the two forms (the laws are identical; here we spot-check
        // the mean at modest replication count).
        let p = Params::with_all(3, 0.7, 0.3, 0.1).unwrap();
        let reps = 400;
        let n = 150;
        let rewards = [true, false, false];

        let mut mean_agent = 0.0;
        let mut mean_coll = 0.0;
        for seed in 0..reps {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut a = AgentPopulation::new(p, n);
            a.step(&rewards, &mut rng);
            mean_agent += a.distribution()[0];

            let mut rng = SmallRng::seed_from_u64(seed + 10_000);
            let mut c = crate::FinitePopulation::new(p, n);
            c.step(&rewards, &mut rng);
            mean_coll += c.distribution()[0];
        }
        mean_agent /= reps as f64;
        mean_coll /= reps as f64;
        assert!(
            (mean_agent - mean_coll).abs() < 0.02,
            "agent {mean_agent} vs collective {mean_coll}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut pop = AgentPopulation::new(params(), 100);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..30 {
                pop.step(&[true, false, true], &mut rng);
            }
            pop.distribution()
        };
        assert_eq!(run(9), run(9));
    }
}
