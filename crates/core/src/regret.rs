//! Regret accounting, matching the paper's definitions exactly.
//!
//! The paper measures
//!
//! ```text
//! Regret_N(T) = η₁ − (1/T) Σ_{t=1..T} Σ_j E[ Q^{t-1}_j R^t_j ]
//! ```
//!
//! — the gap between always playing the best option and the group's
//! average expected per-step reward. The tracker records both the
//! *realized* estimator `Σ_j Q^{t-1}_j R^t_j` and, when qualities are
//! known, the *Rao–Blackwellized* estimator `Σ_j Q^{t-1}_j η_j`
//! (unbiased because `R^t ⊥ Q^{t-1}`, and far lower variance).

/// Accumulates the paper's average regret over a run.
///
/// # Example
///
/// ```
/// use sociolearn_core::RegretTracker;
///
/// let mut tracker = RegretTracker::new(0.9, 0);
/// // The group had 60% of mass on the best option; it was good, the
/// // other was bad.
/// tracker.record(&[0.6, 0.4], &[true, false], Some(&[0.9, 0.5]));
/// assert!((tracker.average_regret_realized() - (0.9 - 0.6)).abs() < 1e-12);
/// assert!((tracker.average_regret() - (0.9 - (0.6 * 0.9 + 0.4 * 0.5))).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegretTracker {
    best_quality: f64,
    best_index: usize,
    steps: u64,
    sum_realized: f64,
    sum_conditional: f64,
    conditional_steps: u64,
    sum_best_share: f64,
}

impl RegretTracker {
    /// Creates a tracker given the best option's expected quality
    /// `η₁` and its index.
    ///
    /// # Panics
    ///
    /// Panics if `best_quality` is not in `[0, 1]`.
    pub fn new(best_quality: f64, best_index: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&best_quality),
            "best quality must be a probability, got {best_quality}"
        );
        RegretTracker {
            best_quality,
            best_index,
            steps: 0,
            sum_realized: 0.0,
            sum_conditional: 0.0,
            conditional_steps: 0,
            sum_best_share: 0.0,
        }
    }

    /// Records one step: the distribution *before* the step (`Q^{t-1}`),
    /// the fresh rewards `R^t`, and the per-option qualities at this
    /// step if known.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree.
    pub fn record(&mut self, dist_before: &[f64], rewards: &[bool], qualities: Option<&[f64]>) {
        assert_eq!(dist_before.len(), rewards.len(), "length mismatch");
        self.steps += 1;
        let realized: f64 = dist_before
            .iter()
            .zip(rewards)
            .map(|(&q, &r)| q * (r as u8 as f64))
            .sum();
        self.sum_realized += realized;
        if let Some(etas) = qualities {
            assert_eq!(etas.len(), dist_before.len(), "length mismatch");
            let cond: f64 = dist_before.iter().zip(etas).map(|(&q, &e)| q * e).sum();
            self.sum_conditional += cond;
            self.conditional_steps += 1;
        }
        self.sum_best_share += dist_before[self.best_index];
    }

    /// Number of recorded steps `T`.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The benchmark quality `η₁`.
    pub fn best_quality(&self) -> f64 {
        self.best_quality
    }

    /// Average regret with the realized-reward estimator. `0.0` before
    /// any step is recorded.
    pub fn average_regret_realized(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.best_quality - self.sum_realized / self.steps as f64
    }

    /// Average regret with the Rao–Blackwellized estimator when
    /// qualities were supplied at every step, falling back to the
    /// realized estimator otherwise.
    pub fn average_regret(&self) -> f64 {
        if self.conditional_steps == self.steps && self.steps > 0 {
            self.best_quality - self.sum_conditional / self.steps as f64
        } else {
            self.average_regret_realized()
        }
    }

    /// Average share of the population on the best option,
    /// `(1/T) Σ_t Q^{t-1}_{best}` (the quantity bounded below in the
    /// second part of Theorem 4.3).
    pub fn average_best_share(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.sum_best_share / self.steps as f64
    }

    /// Merges another tracker (e.g. from a different epoch of the same
    /// run).
    ///
    /// # Panics
    ///
    /// Panics if the benchmarks differ.
    pub fn merge(&mut self, other: &RegretTracker) {
        assert_eq!(
            self.best_quality, other.best_quality,
            "cannot merge trackers with different benchmarks"
        );
        assert_eq!(
            self.best_index, other.best_index,
            "benchmark index mismatch"
        );
        self.steps += other.steps;
        self.sum_realized += other.sum_realized;
        self.sum_conditional += other.sum_conditional;
        self.conditional_steps += other.conditional_steps;
        self.sum_best_share += other.sum_best_share;
    }
}

/// A regret trajectory: average regret as a function of the horizon.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegretCurve {
    /// Horizons at which the average regret was recorded.
    pub horizons: Vec<u64>,
    /// `Regret(T)` for each recorded horizon.
    pub values: Vec<f64>,
}

impl RegretCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `(T, Regret(T))` point.
    pub fn push(&mut self, horizon: u64, value: f64) {
        self.horizons.push(horizon);
        self.values.push(value);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.horizons.len()
    }

    /// Whether the curve is empty.
    pub fn is_empty(&self) -> bool {
        self.horizons.is_empty()
    }

    /// The final recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// `(T as f64, value)` pairs for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.horizons
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (t as f64, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero() {
        let t = RegretTracker::new(0.8, 0);
        assert_eq!(t.average_regret(), 0.0);
        assert_eq!(t.average_regret_realized(), 0.0);
        assert_eq!(t.average_best_share(), 0.0);
    }

    #[test]
    fn perfect_play_zero_regret() {
        let mut t = RegretTracker::new(0.9, 0);
        for _ in 0..10 {
            t.record(&[1.0, 0.0], &[true, false], Some(&[0.9, 0.1]));
        }
        // Realized regret: 0.9 - 1.0 = -0.1 per step (the realized
        // reward overshoots eta when R=1 deterministically here).
        assert!((t.average_regret_realized() - (0.9 - 1.0)).abs() < 1e-12);
        // Conditional regret: exactly zero.
        assert!(t.average_regret().abs() < 1e-12);
        assert_eq!(t.average_best_share(), 1.0);
    }

    #[test]
    fn worst_play_maximal_regret() {
        let mut t = RegretTracker::new(0.9, 0);
        t.record(&[0.0, 1.0], &[true, false], Some(&[0.9, 0.1]));
        assert!((t.average_regret() - 0.8).abs() < 1e-12);
        assert_eq!(t.average_best_share(), 0.0);
    }

    #[test]
    fn falls_back_to_realized_when_qualities_missing() {
        let mut t = RegretTracker::new(0.9, 0);
        t.record(&[0.5, 0.5], &[true, true], Some(&[0.9, 0.1]));
        t.record(&[0.5, 0.5], &[false, false], None);
        // Mixed supply: conditional steps != steps -> realized is used.
        let expected = 0.9 - (1.0 + 0.0) / 2.0;
        assert!((t.average_regret() - expected).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_linearly() {
        let mut a = RegretTracker::new(0.8, 1);
        let mut b = RegretTracker::new(0.8, 1);
        a.record(&[0.2, 0.8], &[false, true], Some(&[0.3, 0.8]));
        b.record(&[0.6, 0.4], &[true, false], Some(&[0.3, 0.8]));
        let mut whole = RegretTracker::new(0.8, 1);
        whole.record(&[0.2, 0.8], &[false, true], Some(&[0.3, 0.8]));
        whole.record(&[0.6, 0.4], &[true, false], Some(&[0.3, 0.8]));
        a.merge(&b);
        assert_eq!(a.steps(), 2);
        assert!((a.average_regret() - whole.average_regret()).abs() < 1e-12);
        assert!((a.average_best_share() - whole.average_best_share()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different benchmarks")]
    fn merge_rejects_mismatched_benchmark() {
        let mut a = RegretTracker::new(0.8, 0);
        let b = RegretTracker::new(0.7, 0);
        a.merge(&b);
    }

    #[test]
    fn curve_accumulates_points() {
        let mut c = RegretCurve::new();
        assert!(c.is_empty());
        c.push(10, 0.5);
        c.push(20, 0.3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.last_value(), Some(0.3));
        assert_eq!(c.points(), vec![(10.0, 0.5), (20.0, 0.3)]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_benchmark() {
        RegretTracker::new(1.5, 0);
    }
}
