//! The infinite-population distributed learning dynamics (Section 4.2)
//! — equivalently, the stochastic multiplicative-weights process the
//! paper couples the finite dynamics against.

use crate::dynamics::GroupDynamics;
use crate::params::Params;
use rand::RngCore;

/// The deterministic-in-sampling, stochastic-in-rewards process of
/// Equation (1):
///
/// ```text
/// W^{t+1}_j = ((1-µ) W^t_j + (µ/m) Σ_k W^t_k) · β^{R_j} (1-β)^{1-R_j}
/// ```
///
/// maintained directly on the normalized distribution
/// `P^t_j = W^t_j / Σ_k W^t_k` (the raw weights shrink geometrically
/// and underflow within a few hundred steps; the normalized form is
/// exact and stable). The log-potential `ln Φ^t = ln Σ_j W^t_j` is
/// tracked separately for the potential-function analyses.
///
/// # Example
///
/// ```
/// use sociolearn_core::{GroupDynamics, InfiniteDynamics, Params};
/// use rand::SeedableRng;
///
/// let params = Params::new(2, 0.6)?;
/// let mut dyn_ = InfiniteDynamics::new(params);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// dyn_.step(&[true, false], &mut rng);
/// let p = dyn_.distribution();
/// assert!(p[0] > p[1]); // the rewarded option gains mass
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InfiniteDynamics {
    params: Params,
    probs: Vec<f64>,
    log_potential: f64,
    steps: u64,
}

impl InfiniteDynamics {
    /// Starts from the uniform distribution `P^0_j = 1/m` with
    /// `W^0_j = 1` (so `Φ^0 = m`).
    pub fn new(params: Params) -> Self {
        let m = params.num_options();
        InfiniteDynamics {
            params,
            probs: vec![1.0 / m as f64; m],
            log_potential: (m as f64).ln(),
            steps: 0,
        }
    }

    /// Starts from an explicit distribution (for the nonuniform-start
    /// Theorem 4.6 and the epoch-restart machinery).
    ///
    /// The vector is normalized; the potential starts at `ln m` by the
    /// convention `W^0_j = m·P^0_j`.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `m`, has negative or
    /// non-finite entries, or sums to zero.
    pub fn from_distribution(params: Params, probs: Vec<f64>) -> Self {
        assert_eq!(
            probs.len(),
            params.num_options(),
            "distribution length must equal the number of options"
        );
        let total: f64 = probs.iter().sum();
        assert!(
            total > 0.0 && probs.iter().all(|&p| p >= 0.0 && p.is_finite()),
            "distribution must be non-negative with positive mass"
        );
        let m = params.num_options();
        let probs = probs.iter().map(|&p| p / total).collect();
        InfiniteDynamics {
            params,
            probs,
            log_potential: (m as f64).ln(),
            steps: 0,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Natural log of the potential `Φ^t = Σ_j W^t_j`.
    pub fn log_potential(&self) -> f64 {
        self.log_potential
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances one step given the reward bits (no randomness is
    /// consumed — the infinite-population sampling stage is its own
    /// expectation; all stochasticity lives in `rewards`).
    pub fn step_rewards(&mut self, rewards: &[bool]) {
        let m = self.params.num_options();
        assert_eq!(
            rewards.len(),
            m,
            "rewards length must equal the number of options"
        );
        let mu = self.params.mu();
        let mut z = 0.0;
        for (j, p) in self.probs.iter_mut().enumerate() {
            let mixed = (1.0 - mu) * *p + mu / m as f64;
            let factor = self.params.adopt_probability(rewards[j]);
            *p = mixed * factor;
            z += *p;
        }
        // z = Φ^{t+1}/Φ^t by construction.
        debug_assert!(z > 0.0, "potential ratio must stay positive");
        for p in self.probs.iter_mut() {
            *p /= z;
        }
        self.log_potential += z.ln();
        self.steps += 1;
    }
}

impl GroupDynamics for InfiniteDynamics {
    fn num_options(&self) -> usize {
        self.params.num_options()
    }

    fn write_distribution(&self, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.probs.len(),
            "buffer length must equal the number of options"
        );
        out.copy_from_slice(&self.probs);
    }

    fn step(&mut self, rewards: &[bool], _rng: &mut dyn RngCore) {
        self.step_rewards(rewards);
    }

    fn label(&self) -> &str {
        "social (infinite)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::assert_distribution;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::new(3, 0.6).unwrap()
    }

    #[test]
    fn starts_uniform() {
        let d = InfiniteDynamics::new(params());
        assert_eq!(d.distribution(), vec![1.0 / 3.0; 3]);
        assert!((d.log_potential() - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rewarded_option_grows() {
        let mut d = InfiniteDynamics::new(params());
        d.step_rewards(&[true, false, false]);
        let p = d.distribution();
        assert!(p[0] > p[1]);
        assert_eq!(p[1], p[2]);
        assert_distribution(&p, 1e-12);
    }

    #[test]
    fn repeated_reward_concentrates() {
        let mut d = InfiniteDynamics::new(params());
        for _ in 0..200 {
            d.step_rewards(&[true, false, false]);
        }
        let p = d.distribution();
        // mu-mixing prevents full concentration but option 0 dominates.
        assert!(p[0] > 0.9, "p0 = {}", p[0]);
        assert!(p[1] > 0.0, "mu must keep the floor positive");
    }

    #[test]
    fn floor_respects_mu_over_m() {
        let p = Params::with_all(4, 0.7, 0.3, 0.2).unwrap();
        let mut d = InfiniteDynamics::new(p);
        for _ in 0..500 {
            d.step_rewards(&[true, false, false, false]);
        }
        let dist = d.distribution();
        // Proof of Thm 4.4: every option keeps at least mu(1-beta)/(4m)
        // in the long run (in the infinite dynamics this is exact up to
        // the normalization: mixed mass >= mu/m, then thinned by >= alpha
        // relative to a numerator bounded by beta).
        let floor = p.popularity_floor();
        for (j, &q) in dist.iter().enumerate() {
            assert!(q >= floor, "option {j} below floor: {q} < {floor}");
        }
    }

    #[test]
    fn log_potential_decreases_with_bad_rewards() {
        let mut d = InfiniteDynamics::new(params());
        let lp0 = d.log_potential();
        d.step_rewards(&[false, false, false]);
        // All-bad rewards multiply every weight by alpha < 1.
        assert!(d.log_potential() < lp0);
    }

    #[test]
    fn potential_tracks_product_of_ratios() {
        // Recompute the potential by brute force with raw weights for a
        // short horizon and compare.
        let p = params();
        let mut d = InfiniteDynamics::new(p);
        let mut w = [1.0f64; 3];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut env = crate::BernoulliRewards::new(vec![0.8, 0.5, 0.2]).unwrap();
        let mut rewards = vec![false; 3];
        for t in 0..50 {
            crate::RewardModel::sample(&mut env, t, &mut rng, &mut rewards);
            // Raw update.
            let total: f64 = w.iter().sum();
            for (j, wj) in w.iter_mut().enumerate() {
                let mixed = (1.0 - p.mu()) * *wj + p.mu() / 3.0 * total;
                *wj = mixed * p.adopt_probability(rewards[j]);
            }
            d.step_rewards(&rewards);
        }
        let phi: f64 = w.iter().sum();
        assert!(
            (d.log_potential() - phi.ln()).abs() < 1e-9,
            "log potential drifted: {} vs {}",
            d.log_potential(),
            phi.ln()
        );
    }

    #[test]
    fn from_distribution_normalizes() {
        let d = InfiniteDynamics::from_distribution(params(), vec![2.0, 1.0, 1.0]);
        assert_eq!(d.distribution(), vec![0.5, 0.25, 0.25]);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn from_distribution_rejects_zero_mass() {
        InfiniteDynamics::from_distribution(params(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn no_randomness_consumed() {
        let mut d1 = InfiniteDynamics::new(params());
        let mut d2 = InfiniteDynamics::new(params());
        let mut rng = SmallRng::seed_from_u64(0);
        use crate::GroupDynamics as _;
        d1.step(&[true, false, true], &mut rng);
        d2.step_rewards(&[true, false, true]);
        assert_eq!(d1.distribution(), d2.distribution());
    }

    #[test]
    fn long_run_numerically_stable() {
        let mut d = InfiniteDynamics::new(params());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut env = crate::BernoulliRewards::new(vec![0.7, 0.5, 0.3]).unwrap();
        let mut rewards = vec![false; 3];
        for t in 0..100_000 {
            crate::RewardModel::sample(&mut env, t, &mut rng, &mut rewards);
            d.step_rewards(&rewards);
        }
        assert_distribution(&d.distribution(), 1e-9);
        assert!(d.log_potential().is_finite());
    }
}
