//! # sociolearn-core
//!
//! The distributed social-learning dynamics of Celis, Krafft &
//! Vishnoi, *"A Distributed Learning Dynamics in Social Groups"*
//! (PODC 2017, arXiv:1705.03414), implemented as a reusable library.
//!
//! `N` individuals repeatedly choose among `m` options with hidden
//! Bernoulli qualities. Each step, every individual (1) **samples** an
//! option — with probability `µ` uniformly at random, otherwise by
//! copying a uniformly random group member's previous choice — and
//! (2) **adopts** it with probability `β` if its fresh quality signal
//! is good and `α` otherwise (else sits out this step). Despite being
//! memoryless, the *group* attains near-optimal average regret: at
//! most `3δ` for the infinite-population process and `6δ` for finite
//! populations, `δ = ln(β/(1−β))`.
//!
//! ## What lives here
//!
//! * [`Params`] — model parameters plus every quantitative bound the
//!   paper attaches to them (horizons, floors, coupling granularity).
//! * [`FinitePopulation`] — the finite-`N` dynamics in its exact
//!   collective-statistic form (O(m) per step).
//! * [`AgentPopulation`] — the same process agent-by-agent (O(N) per
//!   step), the form the network and message-passing variants extend.
//! * [`InfiniteDynamics`] / [`StochasticMwu`] — the infinite-population
//!   limit, in normalized and raw-weights form; Section 2.2's identity
//!   between them is enforced by tests.
//! * [`RegretTracker`] / [`EpochRegret`] — the paper's regret
//!   functional, whole-run and per-epoch.
//! * [`CoupledRun`] — the shared-rewards coupling of Lemma 4.5.
//! * [`RewardModel`] / [`BernoulliRewards`] — the environment
//!   interface (richer environments live in `sociolearn-env`).
//! * Sampling primitives ([`AliasTable`], exact binomial/multinomial).
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sociolearn_core::{
//!     BernoulliRewards, FinitePopulation, GroupDynamics, Params, RegretTracker, RewardModel,
//! };
//!
//! let params = Params::new(5, 0.6)?;
//! let mut env = BernoulliRewards::one_good(5, 0.9)?;
//! let mut group = FinitePopulation::new(params, 10_000);
//! let mut tracker = RegretTracker::new(0.9, 0);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//!
//! let mut rewards = vec![false; 5];
//! let qualities = env.qualities();
//! for t in 1..=params.min_horizon() {
//!     let before = group.distribution();
//!     env.sample(t, &mut rng, &mut rewards);
//!     group.step(&rewards, &mut rng);
//!     tracker.record(&before, &rewards, qualities.as_deref());
//! }
//! // Theorem 4.4: average regret at most 6δ (w.h.p. for large N).
//! assert!(tracker.average_regret() < params.regret_bound_finite());
//! # Ok::<(), sociolearn_core::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agents;
mod coupling;
mod dynamics;
mod epoch;
mod error;
mod finite;
mod heterogeneous;
mod infinite;
mod mwu;
mod params;
mod regret;
mod reward;
mod sampling;
mod scratch;
mod snapshot;

pub use agents::AgentPopulation;
pub use coupling::{ratio_deviation, tv_distance, CoupledRun, CouplingTrace};
pub use dynamics::{assert_distribution, GroupDynamics};
pub use epoch::{EpochRegret, EpochSchedule};
pub use error::{ParamsError, RegimeViolation};
pub use finite::{FinitePopulation, StepRecord};
pub use heterogeneous::{AdoptProfile, HeterogeneousPopulation};
pub use infinite::InfiniteDynamics;
pub use mwu::StochasticMwu;
pub use params::{Params, BETA_MAX};
pub use regret::{RegretCurve, RegretTracker};
pub use reward::{BernoulliRewards, RewardModel};
pub use sampling::{sample_binomial, sample_categorical, sample_multinomial, AliasTable};
pub use snapshot::History;
