//! The common interface every population-level learning process in
//! this workspace implements.

use rand::RngCore;

/// A discrete-time stochastic process over a probability distribution
/// on `m` options.
///
/// Implementors include the finite-population dynamics (both the
/// collective-statistic and per-agent forms), the infinite-population
/// dynamics / stochastic MWU, the network-restricted variant, and all
/// baseline algorithms — which is what lets the experiment harness
/// measure regret for any of them through one code path.
///
/// The contract mirrors the paper's timing: `distribution()` exposes
/// the option shares *after* the most recent step (the paper's `Q^t`),
/// and a subsequent `step(R^{t+1})` consumes the fresh signal vector.
pub trait GroupDynamics {
    /// Number of options `m`.
    fn num_options(&self) -> usize;

    /// Writes the current option distribution into `out`.
    ///
    /// The entries are non-negative and sum to 1 (implementations must
    /// normalize; the finite dynamics normalizes over *committed*
    /// individuals, per the paper's definition of `Q_j`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != self.num_options()`.
    fn write_distribution(&self, out: &mut [f64]);

    /// Advances one time step given the fresh reward signals.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `rewards.len() != self.num_options()`.
    fn step(&mut self, rewards: &[bool], rng: &mut dyn RngCore);

    /// Convenience: the current distribution as a fresh vector.
    fn distribution(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_options()];
        self.write_distribution(&mut out);
        out
    }

    /// A short human-readable name for reports and legends.
    fn label(&self) -> &str {
        "dynamics"
    }
}

/// Asserts the basic distribution invariants (non-negative, sums to 1
/// within `tol`). Used by tests and debug assertions across the
/// workspace.
///
/// # Panics
///
/// Panics with a descriptive message if an invariant fails.
pub fn assert_distribution(dist: &[f64], tol: f64) {
    assert!(!dist.is_empty(), "empty distribution");
    let mut total = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        assert!(p >= -tol, "negative probability at {i}: {p}");
        assert!(p.is_finite(), "non-finite probability at {i}: {p}");
        total += p;
    }
    assert!(
        (total - 1.0).abs() <= tol * dist.len() as f64 + tol,
        "distribution sums to {total}, not 1"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl GroupDynamics for Fixed {
        fn num_options(&self) -> usize {
            self.0.len()
        }
        fn write_distribution(&self, out: &mut [f64]) {
            out.copy_from_slice(&self.0);
        }
        fn step(&mut self, _rewards: &[bool], _rng: &mut dyn RngCore) {}
    }

    #[test]
    fn default_distribution_allocates() {
        let d = Fixed(vec![0.25; 4]);
        assert_eq!(d.distribution(), vec![0.25; 4]);
        assert_eq!(d.label(), "dynamics");
    }

    #[test]
    fn trait_object_safe() {
        let mut d: Box<dyn GroupDynamics> = Box::new(Fixed(vec![0.5, 0.5]));
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        d.step(&[true, false], &mut rng);
        assert_eq!(d.num_options(), 2);
    }

    #[test]
    fn invariant_checker_accepts_valid() {
        assert_distribution(&[0.3, 0.7], 1e-12);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn invariant_checker_rejects_unnormalized() {
        assert_distribution(&[0.3, 0.3], 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn invariant_checker_rejects_negative() {
        assert_distribution(&[-0.1, 1.1], 1e-12);
    }
}
