//! Trajectory recording: downsampled snapshots of the option
//! distribution over a run.

/// Records the option distribution every `stride` steps (plus step 0),
/// tracking the minimum popularity along the way — the quantity the
/// popularity-floor experiments monitor.
///
/// # Example
///
/// ```
/// use sociolearn_core::History;
///
/// let mut h = History::new(2);
/// h.record(0, &[0.5, 0.5]);
/// h.record(1, &[0.6, 0.4]); // skipped (stride 2)
/// h.record(2, &[0.7, 0.3]);
/// assert_eq!(h.times(), &[0, 2]);
/// assert_eq!(h.series(1), vec![0.5, 0.3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct History {
    stride: u64,
    times: Vec<u64>,
    dists: Vec<Vec<f64>>,
    min_popularity: f64,
    min_popularity_step: u64,
}

impl History {
    /// Creates a recorder keeping every `stride`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        History {
            stride,
            times: Vec::new(),
            dists: Vec::new(),
            min_popularity: f64::INFINITY,
            min_popularity_step: 0,
        }
    }

    /// Offers a snapshot at step `t`; it is stored only if `t` is a
    /// multiple of the stride, but the running minimum popularity is
    /// updated regardless.
    pub fn record(&mut self, t: u64, dist: &[f64]) {
        let min = dist.iter().copied().fold(f64::INFINITY, f64::min);
        if min < self.min_popularity {
            self.min_popularity = min;
            self.min_popularity_step = t;
        }
        if t.is_multiple_of(self.stride) {
            self.times.push(t);
            self.dists.push(dist.to_vec());
        }
    }

    /// The recorded step indices.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The stored distribution snapshots, aligned with [`times`].
    ///
    /// [`times`]: History::times
    pub fn snapshots(&self) -> &[Vec<f64>] {
        &self.dists
    }

    /// The trajectory of option `j` across stored snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range for any snapshot.
    pub fn series(&self, j: usize) -> Vec<f64> {
        self.dists.iter().map(|d| d[j]).collect()
    }

    /// The smallest popularity seen at *any* offered step (not just
    /// stored ones), with the step it occurred at.
    pub fn min_popularity(&self) -> (f64, u64) {
        (self.min_popularity, self.min_popularity_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_filters_storage() {
        let mut h = History::new(3);
        for t in 0..10 {
            h.record(t, &[1.0 - t as f64 * 0.05, t as f64 * 0.05]);
        }
        assert_eq!(h.times(), &[0, 3, 6, 9]);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn min_tracks_all_steps() {
        let mut h = History::new(100);
        h.record(0, &[0.5, 0.5]);
        h.record(7, &[0.99, 0.01]); // not stored, but min must see it
        h.record(100, &[0.6, 0.4]);
        let (min, at) = h.min_popularity();
        assert_eq!(min, 0.01);
        assert_eq!(at, 7);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn series_extraction() {
        let mut h = History::new(1);
        h.record(0, &[0.2, 0.8]);
        h.record(1, &[0.3, 0.7]);
        assert_eq!(h.series(0), vec![0.2, 0.3]);
        assert_eq!(h.series(1), vec![0.8, 0.7]);
        assert_eq!(h.snapshots().len(), 2);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        History::new(0);
    }
}
