//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing invalid model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// Fewer than one option.
    NoOptions,
    /// A probability parameter was outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which parameter was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `alpha > beta`, violating the model's requirement that a good
    /// signal never makes adoption less likely.
    AlphaAboveBeta {
        /// Supplied `alpha`.
        alpha: f64,
        /// Supplied `beta`.
        beta: f64,
    },
    /// A quality vector entry was outside `[0, 1]` or empty.
    BadQuality {
        /// Index of the offending entry, if any.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::NoOptions => write!(f, "model needs at least one option"),
            ParamsError::ProbabilityOutOfRange { name, value } => {
                write!(
                    f,
                    "parameter {name} = {value} is not a probability in [0, 1]"
                )
            }
            ParamsError::AlphaAboveBeta { alpha, beta } => {
                write!(f, "alpha = {alpha} exceeds beta = {beta}")
            }
            ParamsError::BadQuality { index, value } => {
                write!(f, "quality eta[{index}] = {value} is not in [0, 1]")
            }
        }
    }
}

impl Error for ParamsError {}

/// A reason the parameters fall outside the regime assumed by the
/// paper's theorems (Theorems 4.3 / 4.4).
///
/// Parameters outside the regime are still *simulable* — several
/// experiments deliberately leave the regime (ablations, µ = 0
/// lock-in) — but the regret bounds are then not guaranteed.
#[derive(Debug, Clone, PartialEq)]
pub enum RegimeViolation {
    /// `beta <= 1/2`: the adoption signal is uninformative or inverted.
    BetaTooSmall {
        /// Supplied `beta`.
        beta: f64,
    },
    /// `beta > e/(e+1)`: `delta > 1`, outside the theorem range.
    BetaTooLarge {
        /// Supplied `beta`.
        beta: f64,
    },
    /// `6·mu > delta^2`: exploration overwhelms the regret budget.
    MuTooLarge {
        /// Supplied `mu`.
        mu: f64,
        /// `delta^2 / 6`, the largest admissible `mu`.
        max_mu: f64,
    },
    /// `mu == 0`: the dynamics can lock in on a suboptimal option.
    MuZero,
    /// `alpha != 1 - beta`: the theorem statements assume the
    /// symmetric parameterization (the general case only changes
    /// constants, per Section 2.2 of the paper).
    AlphaNotSymmetric {
        /// Supplied `alpha`.
        alpha: f64,
        /// Supplied `beta`.
        beta: f64,
    },
}

impl fmt::Display for RegimeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegimeViolation::BetaTooSmall { beta } => {
                write!(f, "beta = {beta} must exceed 1/2 for an informative signal")
            }
            RegimeViolation::BetaTooLarge { beta } => {
                write!(
                    f,
                    "beta = {beta} exceeds e/(e+1) ~ 0.731, outside the theorem range"
                )
            }
            RegimeViolation::MuTooLarge { mu, max_mu } => {
                write!(f, "mu = {mu} exceeds delta^2/6 = {max_mu}")
            }
            RegimeViolation::MuZero => write!(f, "mu = 0 permits lock-in on a bad option"),
            RegimeViolation::AlphaNotSymmetric { alpha, beta } => {
                write!(f, "alpha = {alpha} != 1 - beta = {}", 1.0 - beta)
            }
        }
    }
}

impl Error for RegimeViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<Box<dyn Error>> = vec![
            Box::new(ParamsError::NoOptions),
            Box::new(ParamsError::ProbabilityOutOfRange {
                name: "mu",
                value: 2.0,
            }),
            Box::new(ParamsError::AlphaAboveBeta {
                alpha: 0.9,
                beta: 0.3,
            }),
            Box::new(ParamsError::BadQuality {
                index: 2,
                value: -0.5,
            }),
            Box::new(RegimeViolation::BetaTooSmall { beta: 0.4 }),
            Box::new(RegimeViolation::BetaTooLarge { beta: 0.99 }),
            Box::new(RegimeViolation::MuTooLarge {
                mu: 0.5,
                max_mu: 0.01,
            }),
            Box::new(RegimeViolation::MuZero),
            Box::new(RegimeViolation::AlphaNotSymmetric {
                alpha: 0.2,
                beta: 0.6,
            }),
        ];
        for e in cases {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.is_ascii() || text.contains('~'));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParamsError>();
        assert_send_sync::<RegimeViolation>();
    }
}
