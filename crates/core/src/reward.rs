//! Reward processes: the stochastic quality signals `R_j^t`.

use crate::error::ParamsError;
use rand::RngCore;

/// A source of per-option quality signals.
///
/// At each time step `t` the environment draws one boolean signal per
/// option — `true` means "the option was good this step". The base
/// model uses independent Bernoulli signals ([`BernoulliRewards`]);
/// the `sociolearn-env` crate provides correlated, drifting,
/// thresholded-continuous and recorded variants.
///
/// Implementations are object safe so heterogeneous environments can
/// be swapped at runtime.
pub trait RewardModel {
    /// Number of options `m`.
    fn num_options(&self) -> usize;

    /// Draws the signal vector for step `t` into `out`.
    ///
    /// `t` is 1-based (the first signals the dynamics observes are
    /// `R^1`), matching the paper's indexing. Implementations may be
    /// stateful (drift, traces) but must fill all `m` slots.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != self.num_options()`.
    fn sample(&mut self, t: u64, rng: &mut dyn RngCore, out: &mut [bool]);

    /// Current expected quality per option (`eta_j` at time `t`), if
    /// the environment knows it. Used for Rao–Blackwellized regret
    /// estimates; return `None` for trace/adversarial environments.
    fn qualities(&self) -> Option<Vec<f64>> {
        None
    }

    /// The quality of the best option, if qualities are known.
    fn best_quality(&self) -> Option<f64> {
        self.qualities()
            .map(|q| q.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Index of the best option, if qualities are known. Ties resolve
    /// to the lowest index.
    fn best_index(&self) -> Option<usize> {
        let q = self.qualities()?;
        let mut best = 0;
        for (i, &v) in q.iter().enumerate() {
            if v > q[best] {
                best = i;
            }
        }
        Some(best)
    }
}

/// Independent Bernoulli qualities — the paper's base environment:
/// option `j` is good at each step with fixed probability `eta_j`.
///
/// # Example
///
/// ```
/// use sociolearn_core::{BernoulliRewards, RewardModel};
/// use rand::SeedableRng;
///
/// let mut env = BernoulliRewards::new(vec![0.9, 0.5, 0.1])?;
/// assert_eq!(env.best_index(), Some(0));
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut out = vec![false; 3];
/// env.sample(1, &mut rng, &mut out);
/// # Ok::<(), sociolearn_core::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BernoulliRewards {
    etas: Vec<f64>,
}

impl BernoulliRewards {
    /// Creates the environment from a vector of qualities.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::BadQuality`] if the vector is empty or
    /// any entry is outside `[0, 1]`.
    pub fn new(etas: Vec<f64>) -> Result<Self, ParamsError> {
        if etas.is_empty() {
            return Err(ParamsError::BadQuality {
                index: 0,
                value: f64::NAN,
            });
        }
        for (index, &value) in etas.iter().enumerate() {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ParamsError::BadQuality { index, value });
            }
        }
        Ok(BernoulliRewards { etas })
    }

    /// The "one good option" environment validated against investor
    /// data in the paper's first example (Section 2.1):
    /// `eta_1 = eta_good > 1/2 = eta_2 = ... = eta_m`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or `eta_good` is invalid.
    pub fn one_good(m: usize, eta_good: f64) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        let mut etas = vec![0.5; m];
        etas[0] = eta_good;
        BernoulliRewards::new(etas)
    }

    /// Qualities linearly interpolated from `top` (option 0) down to
    /// `bottom` (option m−1).
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `m == 0` or either endpoint is
    /// invalid.
    pub fn linear(m: usize, top: f64, bottom: f64) -> Result<Self, ParamsError> {
        if m == 0 {
            return Err(ParamsError::NoOptions);
        }
        if m == 1 {
            return BernoulliRewards::new(vec![top]);
        }
        let etas = (0..m)
            .map(|j| top + (bottom - top) * j as f64 / (m - 1) as f64)
            .collect();
        BernoulliRewards::new(etas)
    }

    /// Read-only view of the quality vector.
    pub fn etas(&self) -> &[f64] {
        &self.etas
    }

    /// The quality gap `eta_(1) - eta_(2)` between the two best
    /// options (0 for a single option).
    pub fn gap(&self) -> f64 {
        if self.etas.len() < 2 {
            return 0.0;
        }
        let mut best = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &v in &self.etas {
            if v > best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        best - second
    }
}

impl RewardModel for BernoulliRewards {
    fn num_options(&self) -> usize {
        self.etas.len()
    }

    fn sample(&mut self, _t: u64, rng: &mut dyn RngCore, out: &mut [bool]) {
        assert_eq!(out.len(), self.etas.len(), "reward buffer has wrong length");
        for (slot, &eta) in out.iter_mut().zip(&self.etas) {
            *slot = rand::Rng::gen_bool(&mut &mut *rng, eta);
        }
    }

    fn qualities(&self) -> Option<Vec<f64>> {
        Some(self.etas.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(BernoulliRewards::new(vec![]).is_err());
        assert!(BernoulliRewards::new(vec![0.5, 1.2]).is_err());
        assert!(BernoulliRewards::new(vec![0.5, -0.1]).is_err());
        assert!(BernoulliRewards::new(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn one_good_shape() {
        let env = BernoulliRewards::one_good(4, 0.8).unwrap();
        assert_eq!(env.etas(), &[0.8, 0.5, 0.5, 0.5]);
        assert_eq!(env.best_index(), Some(0));
        assert!((env.gap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn linear_shape() {
        let env = BernoulliRewards::linear(3, 0.9, 0.3).unwrap();
        for (got, want) in env.etas().iter().zip(&[0.9, 0.6, 0.3]) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert_eq!(env.best_quality(), Some(0.9));
    }

    #[test]
    fn linear_single_option() {
        let env = BernoulliRewards::linear(1, 0.7, 0.1).unwrap();
        assert_eq!(env.etas(), &[0.7]);
        assert_eq!(env.gap(), 0.0);
    }

    #[test]
    fn deterministic_extremes() {
        let mut env = BernoulliRewards::new(vec![1.0, 0.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = vec![false; 2];
        for t in 0..50 {
            env.sample(t, &mut rng, &mut out);
            assert!(out[0]);
            assert!(!out[1]);
        }
    }

    #[test]
    fn empirical_frequency_matches_eta() {
        let mut env = BernoulliRewards::new(vec![0.3]).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut out = vec![false; 1];
        let mut hits = 0u32;
        let trials = 20_000;
        for t in 0..trials {
            env.sample(t, &mut rng, &mut out);
            hits += out[0] as u32;
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn best_index_breaks_ties_low() {
        let env = BernoulliRewards::new(vec![0.5, 0.7, 0.7]).unwrap();
        assert_eq!(env.best_index(), Some(1));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_buffer_length_panics() {
        let mut env = BernoulliRewards::new(vec![0.5, 0.5]).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = vec![false; 3];
        env.sample(0, &mut rng, &mut out);
    }

    #[test]
    fn trait_object_usable() {
        let mut env: Box<dyn RewardModel> = Box::new(BernoulliRewards::one_good(3, 0.9).unwrap());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = vec![false; 3];
        env.sample(1, &mut rng, &mut out);
        assert_eq!(env.num_options(), 3);
        assert_eq!(env.best_quality(), Some(0.9));
    }
}
