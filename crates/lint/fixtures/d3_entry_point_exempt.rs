//@ path: examples/fixture.rs
// Entry points own the root seed: a literal here IS the seed-tree
// root, so D3 does not apply (D2 still does — no clock reads here).
fn main() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2017);
    let tree = SeedTree::new(20170508);
    let _ = (rng.gen::<u64>(), tree.child(0));
}
