//@ path: crates/network/src/fixture.rs
// D2 negative: virtual clocks and Instant *values* (not ::now) are
// fine; `Duration` math reads no clock.
use std::time::Duration;

pub struct VirtualClock {
    now: u64,
}

pub fn advance(clock: &mut VirtualClock, ticks: u64) -> Duration {
    clock.now += ticks;
    Duration::from_millis(clock.now)
}
