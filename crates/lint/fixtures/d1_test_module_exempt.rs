//@ path: crates/sim/src/fixture.rs
// D1/D2 negative: `#[cfg(test)]` regions are exempt, live code is not.
pub fn live(x: u64) -> u64 {
    x.wrapping_mul(3)
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn uniqueness() {
        let set: HashSet<u64> = (0..10).map(super::live).collect();
        assert_eq!(set.len(), 10);
        let _elapsed = std::time::Instant::now().elapsed();
    }
}
