//@ path: crates/core/src/fixture.rs
// D4 positive: undocumented unsafe, and a SAFETY comment that is not
// adjacent does not count.
pub fn naughty(ptr: *const u8) -> u8 {
    unsafe { *ptr } //~ D4
}

// SAFETY: this comment is stale — two lines of code sit between it
// and the block it pretends to document.
pub fn stale(ptr: *const u8) -> u8 {
    let offset = 1;
    unsafe { *ptr.add(offset) } //~ D4
}
