//@ path: crates/dist/src/fixture.rs
// D5 negative: checked narrowing, and widening casts, are fine.
pub fn disciplined(n: usize, small: u32) -> u64 {
    let a = index_u32(n);
    let b: u32 = n.try_into().expect("fits");
    let wide = small as u64;
    let idx = small as usize;
    let frac = n as f64;
    wide + u64::from(a + b) + idx as u64 + frac as u64
}
