//@ path: crates/graph/src/fixture.rs
// Region bounds: the cfg(test) exemption ends at the module's closing
// brace; code after it is live again.
pub fn live_before() {}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn inside() {
        let _: HashSet<u8> = HashSet::new();
        let _ = std::time::SystemTime::now();
    }
}

pub fn live_after() {
    let _bad = std::collections::HashSet::<u8>::new(); //~ D1
}
