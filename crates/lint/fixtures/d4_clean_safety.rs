//@ path: crates/core/src/fixture.rs
// D4 negative: a SAFETY comment immediately above (or on) the unsafe
// line documents the obligation.
pub fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for reads.
    unsafe { *ptr }
}

pub fn trailing(ptr: *const u8) -> u8 {
    unsafe { *ptr } // SAFETY: caller guarantees `ptr` is valid for reads.
}
