//@ path: crates/core/src/fixture.rs
// D1 negative: ordered containers are the deterministic equivalents.
use std::collections::{BTreeMap, BTreeSet};

pub fn popularity(choices: &[u32]) -> BTreeMap<u32, u64> {
    let mut counts = BTreeMap::new();
    let mut dedup = BTreeSet::new();
    for &c in choices {
        if dedup.insert(c) {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    counts
}
