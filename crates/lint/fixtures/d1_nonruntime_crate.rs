//@ path: crates/stats/src/fixture.rs
// D1 is scoped to the runtime crates; stats may hash (its outputs are
// aggregates, not schedules). D2/D3 still apply here.
use std::collections::HashMap;

pub fn mode(xs: &[u32]) -> Option<u32> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().max_by_key(|&(x, c)| (c, x)).map(|(x, _)| x)
}
