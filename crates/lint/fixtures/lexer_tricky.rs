//@ path: crates/env/src/fixture.rs
// The lexer gauntlet: every rule pattern below sits inside a string,
// raw string, char sequence, comment, or doc text — none may fire.
// One genuine finding closes the file to prove scanning survived.

//! Doc text naming HashMap, Instant::now(), thread_rng() is inert.

/* Block comment: use std::collections::HashSet; unsafe { }
   /* nested: SystemTime::now(), seed_from_u64(42) */
   still inside the outer comment: n as u32 */

pub fn gauntlet() -> usize {
    let plain = "HashMap::new() and Instant::now() and thread_rng()";
    let raw = r#"SystemTime inside raw: "quoted" from_entropy()"#;
    let hashes = r##"raw with "# inside: HashSet unsafe OsRng"##;
    let bytes = b"seed_from_u64(7) as u32";
    let ch = '"';
    let escaped = '\'';
    let lifetime: &'static str = "as u16";
    // line comment: SeedTree::new(5) unsafe { *p } SystemTime
    plain.len() + raw.len() + hashes.len() + bytes.len() + lifetime.len()
        + (ch as usize) + (escaped as usize)
}

pub fn genuine() {
    let t = std::time::Instant::now(); //~ D2
}
