//@ path: crates/sim/src/fixture.rs
// D3 negative: seeds that flow in from the caller or out of the seed
// tree are the discipline.
pub fn disciplined(seed: u64) {
    let tree = SeedTree::new(seed);
    let a = rand::rngs::SmallRng::seed_from_u64(tree.child(0));
    let b = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let c = SplitMix64::new(tree.subtree(1).root());
}
