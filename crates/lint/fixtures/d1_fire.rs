//@ path: crates/core/src/fixture.rs
// D1 positive: hash containers in a runtime crate's shipped source.
use std::collections::HashMap; //~ D1
use std::collections::HashSet; //~ D1

pub fn popularity(choices: &[u32]) -> HashMap<u32, u64> { //~ D1
    let mut dedup = HashSet::new(); //~ D1
    for &c in choices {
        dedup.insert(c);
    }
    HashMap::new() //~ D1
}
