//@ path: crates/dist/tests/fixture.rs
// Path-level exemption: files under tests/ may use hash containers,
// wall clocks, literal seeds, and bare casts freely.
use std::collections::HashMap;

#[test]
fn harness() {
    let mut m: HashMap<u32, u64> = HashMap::new();
    m.insert(1, 2);
    let t = std::time::Instant::now();
    let n: usize = 5;
    let _small = n as u32;
    let _ = t.elapsed();
}
