//@ path: crates/network/src/fixture.rs
// D2 positive: every wall-clock / OS-entropy source fires, including
// behind full paths.
pub fn naughty() {
    let t = std::time::Instant::now(); //~ D2
    let s = std::time::SystemTime::now(); //~ D2
    let mut r = rand::thread_rng(); //~ D2
    let e = rand::rngs::SmallRng::from_entropy(); //~ D2
    let o = rand::rngs::OsRng; //~ D2
}
