//@ path: crates/dist/src/fixture.rs
// D5 positive: bare narrowing casts in dist index math, including the
// crate's NodeState alias for u32.
pub fn naughty(n: usize, wide: u64) -> u32 {
    let a = n as u32; //~ D5
    let b = wide as u32; //~ D5
    let c = n as u16; //~ D5
    let d = (n % 7) as NodeState; //~ D5
    a + b + c as u32 + d //~ D5
}
