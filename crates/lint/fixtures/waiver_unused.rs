//@ path: crates/core/src/fixture.rs
// W2: a well-formed waiver that suppresses nothing must be removed.
// detlint: allow(D1) — left over after the HashMap below was converted //~ W2
use std::collections::BTreeMap;

pub fn fine() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
