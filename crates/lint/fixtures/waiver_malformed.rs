//@ path: crates/core/src/fixture.rs
// W1: waivers must name known rules and carry a reason; a reasonless
// or unknown-rule waiver does not suppress.
// detlint: allow(D1) //~ W1
use std::collections::HashMap; //~ D1

// detlint: allow(D7) — no such rule //~ W1
pub fn f() -> HashMap<u32, u32> { //~ D1
    HashMap::new() //~ D1
}
