//@ path: crates/sim/src/fixture.rs
// D3 positive: literal-seeded RNG construction in library code, in
// all its spellings.
pub fn naughty() {
    let a = rand::rngs::SmallRng::seed_from_u64(42); //~ D3
    let b = rand::rngs::SmallRng::from_seed([7u8; 32]); //~ D3
    let c = SplitMix64::new(0xDEAD_BEEF); //~ D3
    let d = SeedTree::new(123); //~ D3
}
