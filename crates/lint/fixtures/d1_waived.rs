//@ path: crates/graph/src/fixture.rs
// D1 waivers: a standalone waiver covers the next code line, a
// trailing waiver covers its own line. Both carry reasons.

// detlint: allow(D1) — probe set is drained through sorted(), order never escapes
use std::collections::HashSet;

pub fn probe(xs: &[u32]) -> usize {
    let seen: HashSet<u32> = xs.iter().copied().collect(); // detlint: allow(D1) — only len() is observed
    seen.len()
}
