//@ path: crates/bench/benches/fixture.rs
// Path-level exemption: the bench crate is the one place wall-clock
// timing is the point.
pub fn measure(f: impl Fn()) -> std::time::Duration {
    let start = std::time::Instant::now();
    f();
    start.elapsed()
}
