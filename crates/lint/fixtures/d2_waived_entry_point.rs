//@ path: crates/experiments/src/main.rs
// D2 waiver at a program entry point: the stopwatch is display-only.
fn main() {
    // detlint: allow(D2) — wall-clock stopwatch for the progress line; nothing simulated depends on it
    let started = std::time::Instant::now();
    println!("took {:?}", started.elapsed());
}
