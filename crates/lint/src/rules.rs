//! The determinism rules D1–D5 plus the waiver-hygiene rules W1/W2,
//! as token-pattern checks over [`crate::lexer::Lexed`] streams.
//!
//! Each rule is named, documented, and scoped (see
//! [`crate::scan::FileCtx`] for the path-level scoping and
//! [`test_regions`] for the in-file `#[cfg(test)]` scoping). A rule
//! hit can be silenced with an inline waiver comment
//!
//! ```text
//! // detlint: allow(D1) — <non-empty reason>
//! ```
//!
//! placed on the offending line or alone on the line above it.
//! Waivers must carry a reason (W1 otherwise) and must actually
//! suppress something (W2 otherwise), so every exception in the tree
//! stays visible and grep-able.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in runtime-crate non-test code:
    /// iteration order is nondeterministic and can reach RNG draws,
    /// metrics, or message schedules.
    D1,
    /// No wall clock or OS entropy (`Instant::now`, `SystemTime`,
    /// `thread_rng`, `from_entropy`, `OsRng`) outside the bench crate
    /// and tests.
    D2,
    /// Seed discipline: RNG construction in library code must flow
    /// through the SplitMix64 seed tree (`sociolearn_sim::SeedTree`),
    /// never an ad-hoc literal seed.
    D3,
    /// Every `unsafe` must carry a `// SAFETY:` comment on the same
    /// or the immediately preceding line.
    D4,
    /// No bare narrowing `as` casts in `crates/dist` node-id /
    /// shard-index arithmetic: use the checked helpers in
    /// `sociolearn_dist`'s `cast` module (or `try_into`).
    D5,
    /// Waiver hygiene: a `detlint: allow(...)` comment that is
    /// malformed or missing its reason.
    W1,
    /// Waiver hygiene: a well-formed waiver that suppresses nothing.
    W2,
}

impl Rule {
    /// The machine-readable rule code (`D1`, ..., `W2`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::W1 => "W1",
            Rule::W2 => "W2",
        }
    }

    /// Parses a rule code as written in waivers and fixtures.
    pub fn from_code(s: &str) -> Option<Rule> {
        Some(match s {
            "D1" => Rule::D1,
            "D2" => Rule::D2,
            "D3" => Rule::D3,
            "D4" => Rule::D4,
            "D5" => Rule::D5,
            "W1" => Rule::W1,
            "W2" => Rule::W2,
            _ => return None,
        })
    }

    /// One-line description, for `detlint --list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => {
                "no HashMap/HashSet in runtime crates (core, dist, network, graph, env, sim): \
                 hash iteration order is nondeterministic; use BTreeMap/BTreeSet or sorted keys"
            }
            Rule::D2 => {
                "no wall clock or OS entropy (Instant::now, SystemTime, thread_rng, \
                 from_entropy, OsRng) outside crates/bench and tests"
            }
            Rule::D3 => {
                "seed discipline: library RNGs must derive from a caller-supplied seed via the \
                 SplitMix64 seed tree; no literal-seeded RNG construction outside tests, \
                 benches, and program entry points"
            }
            Rule::D4 => "every `unsafe` needs a `// SAFETY:` comment on the preceding line",
            Rule::D5 => {
                "no bare narrowing `as` casts (u8/u16/u32/i8/i16/i32/NodeState targets) in \
                 crates/dist node-id and shard-index arithmetic; use the crate's checked cast \
                 helpers or try_into"
            }
            Rule::W1 => "a `detlint: allow(...)` waiver must name known rules and carry a reason",
            Rule::W2 => "a waiver that suppresses no finding must be removed",
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 7] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::W1,
        Rule::W2,
    ];
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl Finding {
    /// The machine-readable `file:line rule message` form consumed by
    /// CI and editors.
    pub fn render(&self) -> String {
        format!(
            "{}:{} {} {}",
            self.path,
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// Inclusive 1-based line ranges of in-file test code: items behind
/// `#[cfg(test)]` / `#[cfg(any(test, ...))]` / `#[test]` attributes,
/// found by walking the token stream and brace-matching the item that
/// each such attribute decorates.
pub fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].text == "#" && matches(toks, i + 1, "[")) {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let (attr_toks, after) = attribute_span(toks, i + 1);
        if !is_test_attribute(&attr_toks) {
            i = after;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = after;
        while j < toks.len() && toks[j].text == "#" && matches(toks, j + 1, "[") {
            j = attribute_span(toks, j + 1).1;
        }
        // The item ends at the matching `}` of its first block, or at
        // the first `;` before any block opens.
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

fn matches(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

fn kind_at(toks: &[Tok], i: usize) -> Option<TokKind> {
    toks.get(i).map(|t| t.kind)
}

/// Returns the tokens inside `[...]` starting at the `[` at `open`,
/// plus the index just past the closing `]`.
fn attribute_span(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut inner = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (inner, j + 1);
                }
            }
            _ => inner.push(toks[j].text.clone()),
        }
        j += 1;
    }
    (inner, j)
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`,
/// `#[cfg_attr(test, ...)]` — anything that makes the decorated item
/// test-only (or a test harness entry).
fn is_test_attribute(attr: &[String]) -> bool {
    let has = |s: &str| attr.iter().any(|t| t == s);
    (has("cfg") || has("cfg_attr")) && has("test") || attr.len() == 1 && attr[0] == "test"
}

/// An inline waiver comment, parsed from trivia.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rules: Vec<Rule>,
    /// Line the waiver comment starts on.
    pub line: u32,
    /// The line whose findings this waiver suppresses: its own line
    /// when the comment trails code, otherwise the next code line.
    pub covers: u32,
    pub has_reason: bool,
    /// Unknown rule code, if any (makes the waiver malformed).
    pub bad_code: Option<String>,
}

/// Parses every waiver out of the comment trivia. A waiver must be a
/// plain comment whose content *starts* with `detlint:` — doc
/// comments (`///`, `//!`) and prose that merely quotes the syntax
/// are never waivers. `next_code_line(l)` must return the first line
/// `>= l` holding a code token, so a comment alone on its line can
/// cover the next code line.
pub fn parse_waivers(
    comments: &[Comment],
    mut next_code_line: impl FnMut(u32) -> Option<u32>,
) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        let content = if let Some(r) = c.text.strip_prefix("//") {
            if r.starts_with('/') || r.starts_with('!') {
                continue; // doc comment: API prose, never a waiver
            }
            r
        } else if let Some(r) = c.text.strip_prefix("/*") {
            r
        } else {
            c.text.as_str()
        };
        let Some(rest) = content.trim_start().strip_prefix("detlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            // `detlint:` mentioned without `allow(...)`: treat as
            // malformed so typos fail loudly instead of silently not
            // waiving.
            out.push(Waiver {
                rules: Vec::new(),
                line: c.line,
                covers: c.line,
                has_reason: false,
                bad_code: Some(rest.split_whitespace().next().unwrap_or("").to_string()),
            });
            continue;
        };
        let args = args.trim_start();
        let (inside, tail) = match args.strip_prefix('(').and_then(|a| a.split_once(')')) {
            Some(pair) => pair,
            None => {
                out.push(Waiver {
                    rules: Vec::new(),
                    line: c.line,
                    covers: c.line,
                    has_reason: false,
                    bad_code: Some(args.split_whitespace().next().unwrap_or("").to_string()),
                });
                continue;
            }
        };
        let mut rules = Vec::new();
        let mut bad_code = None;
        for code in inside.split(',') {
            let code = code.trim();
            if code.is_empty() {
                continue;
            }
            match Rule::from_code(code) {
                Some(r) => rules.push(r),
                None => bad_code = Some(code.to_string()),
            }
        }
        if rules.is_empty() && bad_code.is_none() {
            bad_code = Some("<empty>".to_string());
        }
        // The reason is whatever follows the `)`, minus separator
        // punctuation. An em-dash, hyphen, or colon is conventional.
        let reason = tail
            .trim_start()
            .trim_start_matches(['—', '-', ':', '–'])
            .trim();
        let covers = if next_code_line(c.line).is_some_and(|l| l == c.line) {
            c.line
        } else {
            next_code_line(c.end_line + 1).unwrap_or(c.end_line)
        };
        out.push(Waiver {
            rules,
            line: c.line,
            covers,
            has_reason: !reason.is_empty(),
            bad_code,
        });
    }
    out
}

/// Which of D1–D5 are active for the file being scanned (path-level
/// scoping decided by [`crate::scan::FileCtx`]).
#[derive(Debug, Clone, Copy)]
pub struct ActiveRules {
    pub d1: bool,
    pub d2: bool,
    pub d3: bool,
    pub d4: bool,
    pub d5: bool,
}

/// D5's narrowing targets. `NodeState` is `crates/dist`'s `u32` alias
/// for a node's packed protocol state, so `as NodeState` is the same
/// truncation hazard spelled differently.
const NARROWING_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "NodeState"];

/// D2's single-identifier entropy/clock markers.
const D2_IDENTS: [&str; 4] = ["SystemTime", "thread_rng", "from_entropy", "OsRng"];

/// Runs the active rules over one lexed file, before waiver
/// application. `path` is only stamped into the findings.
pub fn check(path: &str, lexed: &Lexed, active: ActiveRules, tests: &[(u32, u32)]) -> Vec<Finding> {
    let toks = &lexed.toks;
    let in_tests = |line: u32| tests.iter().any(|&(a, b)| (a..=b).contains(&line));
    let mut out = Vec::new();
    let mut push = |line: u32, rule: Rule, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let exempt = in_tests(t.line);
        match t.text.as_str() {
            "HashMap" | "HashSet" if active.d1 && !exempt => push(
                t.line,
                Rule::D1,
                format!(
                    "`{}` in runtime code: hash iteration order is nondeterministic; use \
                     `BTree{}` or sorted iteration",
                    t.text,
                    &t.text[4..]
                ),
            ),
            "Instant"
                if active.d2
                    && !exempt
                    && matches(toks, i + 1, "::")
                    && matches(toks, i + 2, "now") =>
            {
                push(
                    t.line,
                    Rule::D2,
                    "`Instant::now()` reads the wall clock; runtime code must use virtual time"
                        .to_string(),
                )
            }
            name if active.d2 && !exempt && D2_IDENTS.contains(&name) => push(
                t.line,
                Rule::D2,
                format!("`{name}` draws on the OS clock/entropy; derive from the run seed instead"),
            ),
            "seed_from_u64"
                if active.d3
                    && !exempt
                    && matches(toks, i + 1, "(")
                    && kind_at(toks, i + 2) == Some(TokKind::Int) =>
            {
                push(
                    t.line,
                    Rule::D3,
                    "literal-seeded RNG in library code; derive the seed through \
                     `sociolearn_sim::SeedTree`"
                        .to_string(),
                )
            }
            "from_seed"
                if active.d3
                    && !exempt
                    && matches(toks, i + 1, "(")
                    && matches(toks, i + 2, "[") =>
            {
                push(
                    t.line,
                    Rule::D3,
                    "RNG built from an inline seed array; derive the seed through \
                     `sociolearn_sim::SeedTree`"
                        .to_string(),
                )
            }
            "SplitMix64" | "SeedTree"
                if active.d3
                    && !exempt
                    && matches(toks, i + 1, "::")
                    && matches(toks, i + 2, "new")
                    && matches(toks, i + 3, "(")
                    && kind_at(toks, i + 4) == Some(TokKind::Int) =>
            {
                push(
                    t.line,
                    Rule::D3,
                    format!(
                        "`{}::new` with a literal root seed in library code; the root seed must \
                         come from the caller",
                        t.text
                    ),
                )
            }
            "unsafe" if active.d4 => {
                let documented = lexed.comments.iter().any(|c| {
                    c.text.contains("SAFETY:") && (c.end_line + 1 == t.line || c.line == t.line)
                });
                if !documented {
                    push(
                        t.line,
                        Rule::D4,
                        "`unsafe` without a `// SAFETY:` comment on the preceding line".to_string(),
                    )
                }
            }
            "as" if active.d5
                && !exempt
                && kind_at(toks, i + 1) == Some(TokKind::Ident)
                && NARROWING_TARGETS.contains(&toks[i + 1].text.as_str()) =>
            {
                push(
                    t.line,
                    Rule::D5,
                    format!(
                        "bare `as {}` can silently truncate a node/shard index; use the crate's \
                         checked cast helpers or `try_into`",
                        toks[i + 1].text
                    ),
                )
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const ALL_ON: ActiveRules = ActiveRules {
        d1: true,
        d2: true,
        d3: true,
        d4: true,
        d5: true,
    };

    fn rules_of(src: &str) -> Vec<Rule> {
        let lexed = lex(src);
        let regions = test_regions(&lexed);
        check("f.rs", &lexed, ALL_ON, &regions)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn each_rule_fires_once() {
        assert_eq!(rules_of("use std::collections::HashMap;"), vec![Rule::D1]);
        assert_eq!(rules_of("let t = Instant::now();"), vec![Rule::D2]);
        assert_eq!(rules_of("let mut r = thread_rng();"), vec![Rule::D2]);
        assert_eq!(
            rules_of("let r = SmallRng::seed_from_u64(42);"),
            vec![Rule::D3]
        );
        assert_eq!(rules_of("unsafe { x() }"), vec![Rule::D4]);
        assert_eq!(rules_of("let v = n as u32;"), vec![Rule::D5]);
    }

    #[test]
    fn negative_space_stays_quiet() {
        assert!(rules_of("use std::collections::BTreeMap;").is_empty());
        assert!(rules_of("let dt = start.elapsed(); let i = Instant::from(x);").is_empty());
        assert!(rules_of("let r = SmallRng::seed_from_u64(tree.child(3));").is_empty());
        assert!(rules_of("// SAFETY: sound because reasons\nunsafe { x() }").is_empty());
        assert!(rules_of("let v = n as u64; let w = n as usize; let f = n as f64;").is_empty());
        assert!(rules_of("use foo::HashMapLike;").is_empty());
    }

    #[test]
    fn cfg_test_region_exempts_most_rules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    fn t() { let _ = Instant::now(); }\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn test_attribute_on_single_fn() {
        let src = "#[test]\nfn t() { let r = SmallRng::seed_from_u64(7); }\nfn live() { let r = SmallRng::seed_from_u64(7); }\n";
        assert_eq!(rules_of(src), vec![Rule::D3]);
    }

    #[test]
    fn safety_comment_must_be_adjacent() {
        let src = "// SAFETY: stale, far away\n\nfn gap() {}\nunsafe { x() }";
        assert_eq!(rules_of(src), vec![Rule::D4]);
    }

    #[test]
    fn waiver_parsing() {
        let lexed = lex("// detlint: allow(D1, D5) — keys drained in sorted order\nlet x = 1;");
        let toks = lexed.toks.clone();
        let ws = parse_waivers(&lexed.comments, |from| {
            toks.iter().map(|t| t.line).find(|&l| l >= from)
        });
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec![Rule::D1, Rule::D5]);
        assert!(ws[0].has_reason);
        assert_eq!(ws[0].covers, 2);
        assert!(ws[0].bad_code.is_none());
    }

    #[test]
    fn waiver_without_reason_or_with_bad_rule_is_malformed() {
        let lexed = lex("// detlint: allow(D1)\n// detlint: allow(D9) — what\nlet x = 1;");
        let ws = parse_waivers(&lexed.comments, |_| Some(3));
        assert!(!ws[0].has_reason);
        assert_eq!(ws[1].bad_code.as_deref(), Some("D9"));
    }
}
