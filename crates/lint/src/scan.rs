//! Path-level rule scoping, waiver application, and the workspace
//! walk.
//!
//! The scanned tree is `src/`, `crates/`, `tests/`, and `examples/`
//! under the workspace root. `vendor/` (offline shims standing in for
//! external crates), `target/`, and this crate's own deliberately
//! firing `fixtures/` are excluded.

use crate::lexer::lex;
use crate::rules::{self, ActiveRules, Finding, Rule};
use std::path::{Path, PathBuf};

/// The crates whose non-test sources are on the deterministic runtime
/// path: anything here that iterates a hash map or reads a clock can
/// reach RNG draws, metrics, or message schedules.
pub const RUNTIME_CRATES: [&str; 6] = ["core", "dist", "network", "graph", "env", "sim"];

/// Where a file sits in the workspace, derived purely from its
/// relative path. Decides which rules are active before any in-file
/// `#[cfg(test)]` scoping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCtx {
    /// `crates/<name>/...` → `Some(name)`; root `src`/`tests`/
    /// `examples` → `None`.
    pub crate_name: Option<String>,
    /// Under a `tests/` or `benches/` directory.
    pub test_path: bool,
    /// Under `examples/`.
    pub example: bool,
    /// A binary entry point: `src/main.rs` or under `src/bin/`.
    pub entry_point: bool,
    /// Library source: under some `src/` and not an entry point.
    pub lib_src: bool,
}

impl FileCtx {
    /// Classifies a workspace-relative, `/`-separated path.
    pub fn classify(rel: &str) -> FileCtx {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            Some(parts[1].to_string())
        } else {
            None
        };
        let test_path = parts.iter().any(|p| *p == "tests" || *p == "benches");
        let example = parts.contains(&"examples");
        let in_src = parts.contains(&"src");
        let entry_point = in_src
            && (parts.last() == Some(&"main.rs") || parts.windows(2).any(|w| w == ["src", "bin"]));
        FileCtx {
            crate_name,
            test_path,
            example,
            entry_point,
            lib_src: in_src && !entry_point,
        }
    }

    fn is_bench_crate(&self) -> bool {
        self.crate_name.as_deref() == Some("bench")
    }

    /// The path-level rule activation for this file. In-file
    /// `#[cfg(test)]` regions are subtracted later, by the checker.
    pub fn active_rules(&self) -> ActiveRules {
        let non_test = !self.test_path;
        ActiveRules {
            // D1: runtime crates' shipped sources only.
            d1: non_test
                && self
                    .crate_name
                    .as_deref()
                    .is_some_and(|c| RUNTIME_CRATES.contains(&c))
                && (self.lib_src || self.entry_point),
            // D2: everywhere but the bench crate and tests — entry
            // points and examples included, so their legitimate
            // stopwatches carry visible waivers.
            d2: non_test && !self.is_bench_crate(),
            // D3: library sources only. Entry points (bins, examples)
            // own the root seed, so a literal there IS the seed tree
            // root; benches pin seeds for stable measurement.
            d3: non_test && !self.is_bench_crate() && self.lib_src && !self.example,
            // D4: everywhere, tests included — SAFETY discipline has
            // no test exemption.
            d4: true,
            // D5: dist's shipped sources only.
            d5: non_test
                && self.crate_name.as_deref() == Some("dist")
                && (self.lib_src || self.entry_point),
        }
    }
}

/// Lints one file's source text as if it lived at `rel_path`. This is
/// the whole pipeline — lex, scope, check, apply waivers, waiver
/// hygiene — and is what both the workspace walk and the fixture
/// tests call.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let ctx = FileCtx::classify(rel_path);
    let active = ctx.active_rules();
    let lexed = lex(src);
    let regions = rules::test_regions(&lexed);
    let raw = rules::check(rel_path, &lexed, active, &regions);

    let tok_lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
    let waivers = rules::parse_waivers(&lexed.comments, |from| {
        tok_lines.iter().copied().find(|&l| l >= from)
    });

    let mut used = vec![false; waivers.len()];
    let mut out = Vec::new();
    for f in raw {
        let mut waived = false;
        for (i, w) in waivers.iter().enumerate() {
            if w.has_reason
                && w.bad_code.is_none()
                && w.covers == f.line
                && w.rules.contains(&f.rule)
            {
                used[i] = true;
                waived = true;
            }
        }
        if !waived {
            out.push(f);
        }
    }
    out.extend(waiver_hygiene(rel_path, &waivers, &used));
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// W1/W2 findings for the parsed waivers: malformed or reasonless
/// waivers (W1), and well-formed waivers that suppressed nothing (W2).
fn waiver_hygiene(path: &str, waivers: &[rules::Waiver], used: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (w, &was_used) in waivers.iter().zip(used) {
        if let Some(bad) = &w.bad_code {
            out.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: Rule::W1,
                message: format!(
                    "malformed waiver: `{bad}` is not a known rule or allow(...) form"
                ),
            });
            continue;
        }
        if !w.has_reason {
            out.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: Rule::W1,
                message: "waiver is missing its reason: write `// detlint: allow(Dx) — <why>`"
                    .to_string(),
            });
            continue;
        }
        if !was_used {
            out.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: Rule::W2,
                message: format!(
                    "unused waiver for {}: it suppresses nothing on line {}; remove it",
                    w.rules
                        .iter()
                        .map(|r| r.code())
                        .collect::<Vec<_>>()
                        .join(","),
                    w.covers
                ),
            });
        }
    }
    out
}

/// The result of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Scans every `.rs` file under `root`'s `src/`, `crates/`, `tests/`,
/// and `examples/` trees (excluding `vendor/`, `target/`, and
/// `crates/lint/fixtures/`), in sorted order so output and exit codes
/// are as deterministic as the code they gate.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = ScanReport::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.starts_with("crates/lint/fixtures/") {
            continue;
        }
        let src = std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        report.findings.extend(check_source(&rel, &src));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let c = FileCtx::classify("crates/dist/src/calendar.rs");
        assert_eq!(c.crate_name.as_deref(), Some("dist"));
        assert!(c.lib_src && !c.test_path && !c.example && !c.entry_point);
        let t = FileCtx::classify("crates/dist/tests/faults.rs");
        assert!(t.test_path);
        let e = FileCtx::classify("examples/quickstart.rs");
        assert!(e.example && e.crate_name.is_none());
        let m = FileCtx::classify("crates/experiments/src/main.rs");
        assert!(m.entry_point && !m.lib_src);
        let b = FileCtx::classify("crates/bench/benches/samplers.rs");
        assert!(b.test_path && b.crate_name.as_deref() == Some("bench"));
    }

    #[test]
    fn scoping_matrix() {
        let dist = FileCtx::classify("crates/dist/src/lib.rs").active_rules();
        assert!(dist.d1 && dist.d2 && dist.d3 && dist.d4 && dist.d5);
        let stats = FileCtx::classify("crates/stats/src/ks.rs").active_rules();
        assert!(!stats.d1 && stats.d2 && stats.d3 && stats.d4 && !stats.d5);
        let example = FileCtx::classify("examples/quickstart.rs").active_rules();
        assert!(!example.d1 && example.d2 && !example.d3 && example.d4);
        let bench = FileCtx::classify("crates/bench/benches/samplers.rs").active_rules();
        assert!(!bench.d1 && !bench.d2 && !bench.d3 && bench.d4);
        let test = FileCtx::classify("tests/equivalence.rs").active_rules();
        assert!(!test.d1 && !test.d2 && !test.d3 && test.d4);
        let main = FileCtx::classify("crates/experiments/src/main.rs").active_rules();
        assert!(main.d2 && !main.d3);
    }

    #[test]
    fn waiver_suppresses_and_is_counted_used() {
        let src = "// detlint: allow(D1) — dedup set, drained in sorted order\nuse std::collections::HashSet;\n";
        let findings = check_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "use std::collections::HashSet; // detlint: allow(D1) — bounded probe set\n";
        assert!(check_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unused_waiver_fires_w2() {
        let src = "// detlint: allow(D1) — nothing here\nlet x = 1;\n";
        let findings = check_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::W2);
    }

    #[test]
    fn reasonless_waiver_fires_w1_and_does_not_suppress() {
        let src = "// detlint: allow(D1)\nuse std::collections::HashSet;\n";
        let rules: Vec<Rule> = check_source("crates/core/src/x.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules, vec![Rule::W1, Rule::D1]);
    }

    #[test]
    fn wrong_rule_waiver_does_not_suppress() {
        let src = "// detlint: allow(D2) — misdirected\nuse std::collections::HashSet;\n";
        let rules: Vec<Rule> = check_source("crates/core/src/x.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        // The D1 finding survives and the D2 waiver is unused.
        assert!(rules.contains(&Rule::D1) && rules.contains(&Rule::W2));
    }
}
