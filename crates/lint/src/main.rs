//! The `detlint` binary: scans the workspace and reports determinism
//! findings in `file:line rule message` form.
//!
//! ```text
//! detlint [--root DIR] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error — CI runs
//! `cargo run --release -p sociolearn-lint` from the workspace root
//! and fails the build on any unwaived finding.

#![forbid(unsafe_code)]

use sociolearn_lint::{scan_workspace, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{}  {}", rule.code(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("detlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("detlint: unknown argument {other:?}");
                eprintln!("usage: detlint [--root DIR] [--list-rules]");
                return ExitCode::from(2);
            }
        }
    }

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        eprintln!(
            "detlint: no .rs files under {} — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    if report.findings.is_empty() {
        eprintln!("detlint: clean ({} files scanned)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "detlint: {} finding(s) across {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
