//! `detlint` — the workspace determinism-and-soundness lint pass.
//!
//! Every claim this reproduction makes — seed-pinned trajectories,
//! byte-identical metrics across shard counts, KS law-equivalence of
//! the execution models — rests on a determinism discipline that
//! proptests can only check *after the fact*. This crate enforces the
//! discipline *statically*: a hand-rolled [`lexer`] (std-only — this
//! environment has no registry access) feeds a token-pattern rule
//! engine ([`rules`]) that scans the workspace sources ([`scan`]) for
//! the named invariants:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D1 | no `HashMap`/`HashSet` in runtime-crate non-test code |
//! | D2 | no wall clock / OS entropy outside `crates/bench` and tests |
//! | D3 | library RNG seeds must flow through the SplitMix64 seed tree |
//! | D4 | every `unsafe` carries a `// SAFETY:` comment |
//! | D5 | no bare narrowing `as` casts in `crates/dist` index math |
//! | W1 | waivers must be well-formed and carry a reason |
//! | W2 | waivers must actually suppress something |
//!
//! Legitimate exceptions are waived inline and stay grep-able:
//!
//! ```text
//! // detlint: allow(D2) — wall-clock stopwatch for the progress line only
//! ```
//!
//! Output is machine-readable (`file:line rule message`), one finding
//! per line; the `detlint` binary exits 0 when clean, 1 on findings,
//! 2 on usage or I/O errors — see `src/main.rs` for the CI entry
//! point, and `tests/` for the fixture-driven golden suite plus the
//! live-workspace self-test.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::{Finding, Rule};
pub use scan::{check_source, scan_workspace, FileCtx, ScanReport, RUNTIME_CRATES};
