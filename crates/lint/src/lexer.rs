//! A minimal hand-rolled Rust lexer.
//!
//! Just enough of the language to tell *code* apart from *trivia*:
//! line/block comments (nested), string literals (plain, byte, C, and
//! raw with any number of `#`s), char literals vs. lifetimes, raw
//! identifiers, and numeric literals. The rule engine in
//! [`crate::rules`] pattern-matches on the token stream, so text that
//! merely *mentions* a rule pattern inside a comment or a string must
//! never produce a token — that property is what the tricky-lexer
//! fixtures pin down.
//!
//! This is deliberately not a full Rust lexer: it has no keyword
//! table (keywords come out as [`TokKind::Ident`] and rules match on
//! text) and it does not validate literals — it only needs to find
//! where they *end*.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `unsafe`, ...).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e-3`).
    Float,
    /// Any string literal (`"..."`, `r#"..."#`, `b"..."`, `c"..."`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'static`, `'a`).
    Lifetime,
    /// Punctuation. `::` is a single token; everything else is one
    /// character.
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (trivia), kept separately from the token stream so the
/// waiver and `SAFETY:` checks can see it.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
}

/// The result of lexing one file: code tokens plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end of input (the scanned workspace is
/// `cargo check`-clean, so this only matters for robustness).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if self.raw_string_ahead() {
                self.raw_string();
            } else if c == 'b' && self.peek(1) == Some('\'') {
                // Byte char: skip the `b`, lex the rest as a char.
                self.bump();
                self.char_or_lifetime();
            } else if (c == 'b' || c == 'c') && self.peek(1) == Some('"') {
                self.bump();
                self.plain_string();
            } else if c == '"' {
                self.plain_string();
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c == 'r'
                && self.peek(1) == Some('#')
                && self.peek(2).is_some_and(is_ident_start)
            {
                // Raw identifier `r#ident`: keep the prefix in the
                // text so `r#as` can never match a rule looking for
                // the keyword `as`.
                let line = self.line;
                let mut text = String::from("r#");
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    text.push(self.bump().unwrap());
                }
                self.push(TokKind::Ident, text, line);
            } else if is_ident_start(c) {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                let line = self.line;
                self.bump();
                if c == ':' && self.peek(0) == Some(':') {
                    self.bump();
                    self.push(TokKind::Punct, "::".to_string(), line);
                } else {
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// `r"..."`, `r#"..."#`, `br##"..."##`, `cr"..."` — a raw-string
    /// opener at the cursor?
    fn raw_string_ahead(&self) -> bool {
        let mut j = match self.peek(0) {
            Some('r') => 1,
            Some('b') | Some('c') if self.peek(1) == Some('r') => 2,
            _ => return false,
        };
        while self.peek(j) == Some('#') {
            j += 1;
        }
        self.peek(j) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap());
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        loop {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                text.push(self.bump().unwrap());
                text.push(self.bump().unwrap());
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(self.bump().unwrap());
                text.push(self.bump().unwrap());
                if depth == 0 {
                    break;
                }
            } else if let Some(c) = self.bump() {
                text.push(c);
            } else {
                break; // unterminated: runs to EOF
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: self.line,
        });
    }

    /// A `"..."` string with escapes (the optional `b`/`c` prefix has
    /// already been consumed). Multi-line strings advance the line
    /// counter via `bump`.
    fn plain_string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // whatever is escaped, incl. `\"` and `\\`
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// A raw string: count the `#`s in the opener, then scan for the
    /// matching `"##...#` closer. No escapes inside.
    fn raw_string(&mut self) {
        let line = self.line;
        while self.peek(0) == Some('b') || self.peek(0) == Some('c') || self.peek(0) == Some('r') {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: loop {
            match self.bump() {
                Some('"') => {
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                None => break,
                Some(_) => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): after the
    /// quote, an identifier not followed by a closing quote is a
    /// lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume up to the closing quote.
                self.bump();
                loop {
                    match self.bump() {
                        Some('\'') | None => break,
                        Some(_) => {}
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if is_ident_start(c) => {
                let mut text = String::new();
                while self.peek(0).is_some_and(is_ident_continue) {
                    text.push(self.bump().unwrap());
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokKind::Char, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            _ => {
                // Plain one-char literal like `'('` or `'1'`.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            text.push(self.bump().unwrap());
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numeric literal. Only two things matter to the rules: the
    /// token is classified `Int` vs `Float`, and `0..m` must not eat
    /// the range dots.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut kind = TokKind::Int;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'))
        {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                text.push(self.bump().unwrap());
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(self.bump().unwrap());
            }
            // Fraction — only when a digit follows the dot, so ranges
            // (`0..m`) and method calls (`1.max(2)`) stay separate.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                kind = TokKind::Float;
                text.push(self.bump().unwrap());
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    text.push(self.bump().unwrap());
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let signed = matches!(self.peek(1), Some('+') | Some('-'));
                let digit_at = if signed { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    kind = TokKind::Float;
                    text.push(self.bump().unwrap());
                    if signed {
                        text.push(self.bump().unwrap());
                    }
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        text.push(self.bump().unwrap());
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, ...).
        let mut suffix = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            suffix.push(self.bump().unwrap());
        }
        if suffix.starts_with('f') {
            kind = TokKind::Float;
        }
        text.push_str(&suffix);
        self.push(kind, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r####"
            // HashMap in a line comment
            /* Instant::now() in /* a nested */ block comment */
            fn f() {
                let a = "HashMap::new() thread_rng()";
                let b = r#"SystemTime "quoted" inside raw"#;
                let c = b"from_entropy";
            }
        "####;
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("let c: char = 'a'; let s: &'static str = \"x\"; let q = '\\'';");
        let kinds: Vec<TokKind> = lexed.toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Char));
        assert!(kinds.contains(&TokKind::Lifetime));
        let lt: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lt, vec!["static"]);
    }

    #[test]
    fn raw_string_with_hashes_swallows_quotes() {
        let lexed = lex(r###"let x = r##"a "quote" and "# inside"## ; let y = 1;"###);
        let ids = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .count();
        assert_eq!(ids, 4); // let x let y
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        let lexed = lex("for i in 0..n { x[i as usize] += 1.5e3; }");
        let ints: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ints, vec!["0"]);
        let floats: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, vec!["1.5e3"]);
    }

    #[test]
    fn raw_ident_keeps_prefix() {
        let ids = idents("let r#as = 3;");
        assert_eq!(ids, vec!["let", "r#as"]);
    }

    #[test]
    fn double_colon_is_one_token() {
        let lexed = lex("std::time::Instant::now()");
        let puncts: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "::", "::", "(", ")"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_trivia() {
        let src = "/* one\ntwo\nthree */\nfn f() {}\n\"a\nb\"\nlet x = 1;";
        let lexed = lex(src);
        let f = lexed.toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 4);
        let x = lexed.toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 7);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
    }
}
