//! The self-test the tentpole hangs on: `detlint` over the *live*
//! workspace must exit clean. Every hit in the tree is either fixed
//! or carries a reasoned inline waiver; any regression — a new hash
//! map on the runtime path, a clock read, an ad-hoc seed, an
//! undocumented `unsafe`, a bare narrowing cast in dist — fails this
//! test (and the CI `detlint` job) before any proptest runs.

use std::path::PathBuf;

#[test]
fn live_workspace_is_detlint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = sociolearn_lint::scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned ({}) — did the workspace move?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "detlint found {} unwaived finding(s) in the live workspace:\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
