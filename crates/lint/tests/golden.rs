//! Fixture-driven golden tests for every detlint rule.
//!
//! Each `fixtures/*.rs` file is self-describing:
//!
//! - line 1 is `//@ path: <pretend workspace path>` — the path the
//!   source is linted *as*, which decides rule scoping;
//! - every line expected to produce findings carries a trailing
//!   `//~ CODE [CODE ...]` marker, stripped from the source before
//!   linting so the marker itself can never interfere (in particular
//!   with waiver reasons).
//!
//! The harness asserts the exact (line, rule) multiset per fixture,
//! that all seven rules are exercised somewhere, and that the clean
//! fixtures really are clean.

use sociolearn_lint::check_source;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Parses one fixture: (pretend path, marker-stripped source,
/// expected sorted (line, code) pairs).
fn parse_fixture(raw: &str, name: &str) -> (String, String, Vec<(u32, String)>) {
    let first = raw.lines().next().unwrap_or("");
    let pretend = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{name}: line 1 must be `//@ path: <pretend path>`"))
        .trim()
        .to_string();
    let mut expected = Vec::new();
    let mut cleaned = String::new();
    for (i, line) in raw.lines().enumerate() {
        let lineno = (i + 1) as u32;
        match line.find("//~") {
            Some(at) => {
                for code in line[at + 3..].split_whitespace() {
                    expected.push((lineno, code.to_string()));
                }
                cleaned.push_str(line[..at].trim_end());
            }
            None => cleaned.push_str(line),
        }
        cleaned.push('\n');
    }
    expected.sort();
    (pretend, cleaned, expected)
}

#[test]
fn fixtures_match_their_markers() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 18,
        "expected the full fixture set, found {}",
        paths.len()
    );

    let mut codes_fired: BTreeSet<String> = BTreeSet::new();
    let mut clean_fixtures = 0usize;
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let raw = std::fs::read_to_string(path).expect("read fixture");
        let (pretend, cleaned, expected) = parse_fixture(&raw, &name);
        let mut got: Vec<(u32, String)> = check_source(&pretend, &cleaned)
            .into_iter()
            .map(|f| (f.line, f.rule.code().to_string()))
            .collect();
        got.sort();
        assert_eq!(
            got, expected,
            "{name} (linted as {pretend}): findings disagree with //~ markers\n\
             got:      {got:?}\nexpected: {expected:?}"
        );
        if expected.is_empty() {
            clean_fixtures += 1;
        }
        codes_fired.extend(expected.into_iter().map(|(_, c)| c));
    }
    for code in ["D1", "D2", "D3", "D4", "D5", "W1", "W2"] {
        assert!(
            codes_fired.contains(code),
            "no fixture exercises {code} firing"
        );
    }
    assert!(
        clean_fixtures >= 6,
        "expected at least six non-firing fixtures, found {clean_fixtures}"
    );
}

#[test]
fn fixture_headers_span_the_scoping_matrix() {
    // The exemption story is only tested if fixtures actually claim
    // the exempting locations.
    let mut pretends = BTreeSet::new();
    for entry in std::fs::read_dir(fixture_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let raw = std::fs::read_to_string(&path).expect("read fixture");
            let (pretend, _, _) = parse_fixture(&raw, &path.file_name().unwrap().to_string_lossy());
            pretends.insert(pretend);
        }
    }
    for needed in [
        "crates/dist/src/fixture.rs",      // D5 home turf
        "crates/dist/tests/fixture.rs",    // tests-path exemption
        "crates/bench/benches/fixture.rs", // bench-crate exemption
        "crates/experiments/src/main.rs",  // entry-point D3 exemption
        "examples/fixture.rs",             // example exemption
        "crates/stats/src/fixture.rs",     // non-runtime-crate D1 exemption
    ] {
        assert!(
            pretends.contains(needed),
            "no fixture lints as {needed}; scoping for it is untested"
        );
    }
}
