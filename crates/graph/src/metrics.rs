//! Structural graph metrics reported alongside the network
//! experiments (so "regret vs. topology" tables can be read against
//! degree, clustering, and path-length columns).

use crate::csr::Graph;
use rand::Rng;

/// Degree summary of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes the degree summary.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_nodes();
    let mut min = usize::MAX;
    let mut max = 0;
    let mut total = 0usize;
    for v in 0..n {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        total += d;
    }
    DegreeStats {
        min,
        max,
        mean: total as f64 / n as f64,
    }
}

/// Global clustering coefficient: the average, over nodes of degree
/// ≥ 2, of the fraction of neighbor pairs that are themselves joined.
/// Returns 0 if no node has degree ≥ 2.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in 0..g.num_nodes() {
        let nbrs = g.neighbors(v);
        if nbrs.len() < 2 {
            continue;
        }
        let mut closed = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a as usize, b as usize) {
                    closed += 1;
                }
            }
        }
        let pairs = nbrs.len() * (nbrs.len() - 1) / 2;
        total += closed as f64 / pairs as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Estimated average shortest-path length over reachable pairs, by BFS
/// from `samples` random sources (all sources if `samples >= n`).
/// Returns `f64::INFINITY` if no pairs are reachable.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn average_path_length<R: Rng + ?Sized>(g: &Graph, samples: usize, rng: &mut R) -> f64 {
    assert!(samples > 0, "need at least one sample source");
    let n = g.num_nodes();
    let sources: Vec<usize> = if samples >= n {
        (0..n).collect()
    } else {
        (0..samples).map(|_| rng.gen_range(0..n)).collect()
    };
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &s in &sources {
        for (v, &d) in g.bfs_distances(s).iter().enumerate() {
            if v != s && d != usize::MAX {
                total += d;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        f64::INFINITY
    } else {
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn degree_stats_on_star() {
        let g = topology::star(5);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_complete_is_one() {
        let g = topology::complete(6);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_star_is_zero() {
        let g = topology::star(6);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn clustering_ring_k2_known() {
        // Ring with k=2: each node's 4 neighbors have 3 closed pairs of
        // 6 -> coefficient 0.5 for n large enough.
        let g = topology::ring(20, 2);
        assert!((clustering_coefficient(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn path_length_complete_is_one() {
        let g = topology::complete(8);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((average_path_length(&g, 100, &mut rng) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_length_ring_exceeds_complete() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ring = topology::ring(30, 1);
        let complete = topology::complete(30);
        let lr = average_path_length(&ring, 30, &mut rng);
        let lc = average_path_length(&complete, 30, &mut rng);
        assert!(lr > 3.0 * lc, "ring {lr} vs complete {lc}");
    }

    #[test]
    fn path_length_disconnected_counts_reachable_only() {
        let g = crate::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let apl = average_path_length(&g, 10, &mut rng);
        assert_eq!(apl, 1.0);
    }
}
