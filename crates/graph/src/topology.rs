//! Generators for the standard topology families used by the network
//! experiments.

use crate::csr::Graph;
use rand::Rng;

/// Complete graph on `n` nodes. With neighbor-restricted sampling this
/// reproduces the paper's base (well-mixed) dynamics exactly, which is
/// the control condition in experiment E11.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "need at least one node");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// Ring lattice: each node connects to its `k` nearest neighbors on
/// each side (so degree `2k`, clamped for tiny `n`).
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn ring(n: usize, k: usize) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(k > 0, "need at least one neighbor per side");
    let mut edges = Vec::new();
    for a in 0..n {
        for d in 1..=k.min(n / 2) {
            edges.push((a, (a + d) % n));
        }
    }
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// 2-D torus grid: `rows × cols` nodes, each joined to its four
/// wrap-around neighbors.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "dimensions must be positive");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((idx(r, c), idx(r, (c + 1) % cols)));
            edges.push((idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("validated inputs")
}

/// Erdős–Rényi `G(n, p)`: each pair joined independently with
/// probability `p`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not a probability.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// Watts–Strogatz small world: ring lattice with degree `2k`, each
/// edge rewired (one endpoint replaced by a uniform non-self node)
/// with probability `p_rewire`.
///
/// # Panics
///
/// Panics if `n < 3`, `k == 0`, or `p_rewire` is not a probability.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, p_rewire: f64, rng: &mut R) -> Graph {
    assert!(n >= 3, "need at least three nodes");
    assert!(k > 0, "need at least one neighbor per side");
    assert!(
        (0.0..=1.0).contains(&p_rewire),
        "p_rewire must be a probability"
    );
    let mut edges = Vec::new();
    for a in 0..n {
        for d in 1..=k.min(n / 2) {
            let b = (a + d) % n;
            if rng.gen_bool(p_rewire) {
                // Rewire: replace b by a random node != a.
                let mut nb = rng.gen_range(0..n);
                while nb == a {
                    nb = rng.gen_range(0..n);
                }
                edges.push((a, nb));
            } else {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// Barabási–Albert preferential attachment: start from a `seed`-clique,
/// then each new node attaches to `k` existing nodes chosen with
/// probability proportional to their degree.
///
/// # Panics
///
/// Panics if `n == 0`, `k == 0`, or `k > n`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(k > 0 && k <= n, "attachment count must be in 1..=n");
    let seed = (k + 1).min(n);
    let mut edges = Vec::new();
    // Degree-proportional sampling via the "repeated endpoints" urn.
    let mut urn: Vec<usize> = Vec::new();
    for a in 0..seed {
        for b in (a + 1)..seed {
            edges.push((a, b));
            urn.push(a);
            urn.push(b);
        }
    }
    for v in seed..n {
        let mut targets = Vec::with_capacity(k);
        let mut guard = 0;
        while targets.len() < k && guard < 100 * k {
            let candidate = urn[rng.gen_range(0..urn.len())];
            if candidate != v && !targets.contains(&candidate) {
                targets.push(candidate);
            }
            guard += 1;
        }
        // Fallback for pathological urns: attach to lowest ids.
        let mut fill = 0;
        while targets.len() < k {
            if fill != v && !targets.contains(&fill) {
                targets.push(fill);
            }
            fill += 1;
        }
        for &t in &targets {
            edges.push((v, t));
            urn.push(v);
            urn.push(t);
        }
    }
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// Star: node 0 joined to every other node.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least two nodes");
    let edges: Vec<(usize, usize)> = (1..n).map(|b| (0, b)).collect();
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// Two cliques of `n/2` nodes joined by `bridges` edges — the classic
/// slow-mixing topology for studying information bottlenecks.
///
/// # Panics
///
/// Panics if `n < 4` or `bridges == 0`.
pub fn two_cliques(n: usize, bridges: usize) -> Graph {
    assert!(n >= 4, "need at least four nodes");
    assert!(bridges > 0, "need at least one bridge");
    let half = n / 2;
    let mut edges = Vec::new();
    for a in 0..half {
        for b in (a + 1)..half {
            edges.push((a, b));
        }
    }
    for a in half..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    for i in 0..bridges.min(half) {
        edges.push((i, half + i));
    }
    Graph::from_edges(n, &edges).expect("validated inputs")
}

/// Random `d`-regular-ish graph by stub matching with retry; falls back
/// to a ring of degree `d` (rounded down to even) if matching fails
/// repeatedly (rare for `d ≪ n`).
///
/// # Panics
///
/// Panics if `n == 0`, `d == 0`, `d >= n`, or `n·d` is odd.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(d > 0 && d < n, "degree must be in 1..n");
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    'attempt: for _ in 0..50 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut edges = Vec::with_capacity(n * d / 2);
        // BTreeSet, not HashSet (D1): `random_regular` is on the
        // seeded runtime path, and a deterministic container keeps
        // even its incidental behavior platform-independent.
        let mut seen = std::collections::BTreeSet::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue 'attempt;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue 'attempt;
            }
            edges.push(key);
        }
        return Graph::from_edges(n, &edges).expect("validated inputs");
    }
    ring(n, (d / 2).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_degrees() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        for v in 0..6 {
            assert_eq!(g.degree(v), 5);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn ring_degrees_and_connectivity() {
        let g = ring(10, 2);
        for v in 0..10 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
        // k >= n/2 collapses to (near-)complete without panicking.
        let g = ring(5, 10);
        assert!(g.is_connected());
    }

    #[test]
    fn torus_degrees() {
        let g = torus(4, 5);
        assert_eq!(g.num_nodes(), 20);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn torus_degenerate_dimensions() {
        // 1×n torus collapses duplicate wrap edges; still connected.
        let g = torus(1, 5);
        assert!(g.is_connected());
        let g = torus(2, 2);
        assert!(g.is_connected());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = erdos_renyi(100, 0.1, &mut rng);
        let expected = 4950.0 * 0.1;
        assert!(
            (g.num_edges() as f64 - expected).abs() < expected * 0.25,
            "edges {} vs expected {expected}",
            g.num_edges()
        );
    }

    #[test]
    fn watts_strogatz_zero_rewire_is_ring() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ws = watts_strogatz(12, 2, 0.0, &mut rng);
        let r = ring(12, 2);
        assert_eq!(ws, r);
    }

    #[test]
    fn watts_strogatz_rewired_still_reasonable() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = watts_strogatz(50, 3, 0.3, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        // Edge count can only shrink via dedup collisions.
        assert!(g.num_edges() <= 150);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn barabasi_albert_hub_structure() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = barabasi_albert(200, 2, &mut rng);
        assert!(g.is_connected());
        let max_deg = (0..200).map(|v| g.degree(v)).max().unwrap();
        let min_deg = (0..200).map(|v| g.degree(v)).min().unwrap();
        assert!(max_deg >= 10, "expected a hub, max degree {max_deg}");
        assert!(min_deg >= 2);
    }

    #[test]
    fn star_structure() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn two_cliques_bridge() {
        let g = two_cliques(10, 1);
        assert!(g.is_connected());
        // Within-clique distance 1, across 3 via the single bridge
        // (non-bridge nodes must route through it).
        let d = g.bfs_distances(1);
        assert_eq!(d[2], 1);
        assert!(d[6] >= 2);
    }

    #[test]
    fn random_regular_degrees() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = random_regular(30, 4, &mut rng);
        for v in 0..30 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_odd_product_rejected() {
        let mut rng = SmallRng::seed_from_u64(7);
        random_regular(5, 3, &mut rng);
    }
}
