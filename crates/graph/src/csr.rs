//! Compressed-sparse-row undirected graphs.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph must have at least one node.
    Empty,
    /// An edge endpoint was out of range.
    BadEndpoint {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph must have at least one node"),
            GraphError::BadEndpoint { node, num_nodes } => {
                write!(f, "edge endpoint {node} out of range for {num_nodes} nodes")
            }
        }
    }
}

impl Error for GraphError {}

/// An undirected graph in CSR form: neighbor lists packed into one
/// array with per-node offsets. Self-loops and duplicate edges are
/// removed during construction.
///
/// # Example
///
/// ```
/// use sociolearn_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.num_edges(), 3);
/// # Ok::<(), sociolearn_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an undirected edge list over `n` nodes.
    /// Self-loops and duplicates are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0` or an endpoint is out of
    /// range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(GraphError::BadEndpoint {
                    node: a,
                    num_nodes: n,
                });
            }
            if b >= n {
                return Err(GraphError::BadEndpoint {
                    node: b,
                    num_nodes: n,
                });
            }
            if a == b {
                continue;
            }
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Ok(Graph { offsets, neighbors })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).len()
    }

    /// Sorted neighbor list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        assert!(v < self.num_nodes(), "node {v} out of range");
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether an edge `{a, b}` exists.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        assert!(b < self.num_nodes(), "node {b} out of range");
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Whether the graph is connected (single node counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        let mut visited = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    visited += 1;
                    queue.push_back(w);
                }
            }
        }
        visited == n
    }

    /// BFS distances from `source` (`usize::MAX` for unreachable
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        assert!(source < self.num_nodes(), "node {source} out of range");
        let mut dist = vec![usize::MAX; self.num_nodes()];
        let mut queue = VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                let w = w as usize;
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Iterates all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes()).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .map(move |&b| (a, b as usize))
                .filter(|&(a, b)| a < b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_basics() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert!(g.is_connected());
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        let d = g.bfs_distances(0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.bfs_distances(2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn errors() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::Empty));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::BadEndpoint { node: 5, .. })
        ));
        let e = GraphError::BadEndpoint {
            node: 5,
            num_nodes: 2,
        };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn single_node_connected() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 0);
    }
}
