//! # sociolearn-graph
//!
//! Graph substrate for the network-restricted social-learning
//! experiments (the paper's first future-work direction: "extend our
//! results to the social network setting where individuals can only
//! sample from their neighbors").
//!
//! Provides a compact CSR [`Graph`], generators for the standard
//! topology families ([`topology`]), and the structural metrics the
//! network experiments report ([`metrics`]).
//!
//! # Example
//!
//! ```
//! use sociolearn_graph::{topology, Graph};
//!
//! let g = topology::ring(10, 2);
//! assert_eq!(g.num_nodes(), 10);
//! assert_eq!(g.degree(0), 4);
//! assert!(g.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
pub mod metrics;
pub mod topology;

pub use csr::{Graph, GraphError};
