//! Property-based tests of the graph substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_graph::{metrics, topology, Graph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn from_edges_degree_sum_is_twice_edges(
        n in 1usize..40,
        raw_edges in proptest::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = Graph::from_edges(n, &edges).expect("endpoints are in range");
        let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Adjacency is symmetric.
        for (a, b) in g.edges() {
            prop_assert!(g.has_edge(a, b));
            prop_assert!(g.has_edge(b, a));
            prop_assert_ne!(a, b, "self-loop survived construction");
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step(
        n in 2usize..30,
        raw_edges in proptest::collection::vec((0usize..30, 0usize..30), 1..80),
        source in 0usize..30,
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let g = Graph::from_edges(n, &edges).expect("valid");
        let source = source % n;
        let dist = g.bfs_distances(source);
        prop_assert_eq!(dist[source], 0);
        // Adjacent nodes differ by at most 1 in BFS distance.
        for (a, b) in g.edges() {
            match (dist[a], dist[b]) {
                (usize::MAX, usize::MAX) => {}
                (da, db) => {
                    prop_assert!(da != usize::MAX && db != usize::MAX,
                        "edge between reached and unreached node");
                    prop_assert!(da.abs_diff(db) <= 1);
                }
            }
        }
    }

    #[test]
    fn ring_is_vertex_transitive(n in 3usize..60, k in 1usize..5) {
        let g = topology::ring(n, k);
        let d0 = g.degree(0);
        for v in 1..n {
            prop_assert_eq!(g.degree(v), d0);
        }
        prop_assert!(g.is_connected());
    }

    #[test]
    fn torus_always_4_regular_when_big_enough(r in 3usize..12, c in 3usize..12) {
        let g = topology::torus(r, c);
        for v in 0..r * c {
            prop_assert_eq!(g.degree(v), 4);
        }
        prop_assert!(g.is_connected());
        // Width-3 wrap-around rows/columns are triangles; from 4 up the
        // torus is triangle-free.
        if r >= 4 && c >= 4 {
            prop_assert_eq!(metrics::clustering_coefficient(&g), 0.0);
        }
    }

    #[test]
    fn watts_strogatz_connected_enough(n in 10usize..80, p in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = topology::watts_strogatz(n, 2, p, &mut rng);
        prop_assert_eq!(g.num_nodes(), n);
        // Rewiring can only remove parallel duplicates.
        prop_assert!(g.num_edges() <= 2 * n);
        let stats = metrics::degree_stats(&g);
        prop_assert!(stats.mean <= 4.0 + 1e-9);
    }

    #[test]
    fn barabasi_albert_connected(n in 5usize..120, k in 1usize..4, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = topology::barabasi_albert(n, k, &mut rng);
        prop_assert!(g.is_connected());
        let stats = metrics::degree_stats(&g);
        prop_assert!(stats.min >= k.min(n - 1));
    }

    #[test]
    fn random_regular_is_regular(seed in any::<u64>(), half_d in 1usize..4) {
        let n = 24;
        let d = 2 * half_d;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = topology::random_regular(n, d, &mut rng);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), d);
        }
    }

    #[test]
    fn average_path_length_at_least_one(n in 2usize..40, p in 0.2f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = topology::erdos_renyi(n, p, &mut rng);
        let apl = metrics::average_path_length(&g, n, &mut rng);
        if apl.is_finite() {
            prop_assert!(apl >= 1.0);
        }
    }
}
