//! Plotting and report-output substrate for the `sociolearn` workspace.
//!
//! The Rust plotting ecosystem is thin and pulls heavy native
//! dependencies, so the reproduction suite renders its figures with
//! this self-contained crate instead:
//!
//! * [`AsciiChart`] — multi-series line charts for terminal output,
//! * [`SvgPlot`] — standalone SVG figures (axes, ticks, legends),
//! * [`CsvWriter`] — raw data series for external tooling,
//! * [`MarkdownTable`] — the tables embedded in `EXPERIMENTS.md`,
//! * [`telemetry`] — live-fleet dashboards: [`SampleRing`] windows in
//!   a [`SeriesRegistry`], rendered incrementally by [`LiveTerm`]
//!   (ANSI in-place redraw) and [`LiveSvg`] (self-contained SVG
//!   snapshot).
//!
//! # Example
//!
//! ```
//! use sociolearn_plot::{AsciiChart, MarkdownTable};
//!
//! let ys: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
//! let chart = AsciiChart::new(60, 10).with_caption("sin(t)").render(&ys);
//! assert!(chart.contains("sin(t)"));
//!
//! let mut t = MarkdownTable::new(&["beta", "regret"]);
//! t.add_row(&["0.6".into(), "0.12".into()]);
//! assert!(t.render().contains("| beta | regret |"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod csv;
mod format;
mod svg;
mod table;
pub mod telemetry;

pub use ascii::{ascii_histogram, AsciiChart};
pub use csv::CsvWriter;
pub use format::{fmt_sci, fmt_sig};
pub use svg::{Series, SvgPlot};
pub use table::MarkdownTable;
pub use telemetry::{LiveSvg, LiveTerm, SampleRing, SeriesId, SeriesKind, SeriesRegistry};
