//! Fixed-capacity sample window backing every live-telemetry series.

use std::collections::VecDeque;

/// A fixed-capacity ring of `f64` samples.
///
/// Pushing beyond capacity evicts the oldest sample, so the ring
/// always holds the most recent window — the shape a live dashboard
/// charts. The ring also remembers how many samples were ever pushed,
/// so renderers can label the window's absolute tick range.
///
/// # Example
///
/// ```
/// use sociolearn_plot::SampleRing;
///
/// let mut ring = SampleRing::new(3);
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     ring.push(v);
/// }
/// // Capacity 3: the oldest sample (1.0) was evicted.
/// assert_eq!(ring.to_vec(), vec![2.0, 3.0, 4.0]);
/// assert_eq!(ring.pushed(), 4);
/// assert_eq!(ring.latest(), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRing {
    buf: VecDeque<f64>,
    cap: usize,
    pushed: u64,
    /// Cached smallest finite sample in the window. Invariant: always
    /// exactly `min` over the current buffer — updated on push,
    /// recomputed when the sample that set it is evicted — so the
    /// per-frame axis queries stay O(1) instead of rescanning the
    /// window.
    lo: Option<f64>,
    /// Cached largest finite sample in the window (same invariant).
    hi: Option<f64>,
}

impl SampleRing {
    /// Creates an empty ring holding at most `cap` samples (clamped to
    /// at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SampleRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            pushed: 0,
            lo: None,
            hi: None,
        }
    }

    /// Appends a sample, evicting the oldest one if the ring is full.
    pub fn push(&mut self, v: f64) {
        if self.buf.len() == self.cap {
            let evicted = self.buf.pop_front();
            // If the evicted sample was (one copy of) a cached
            // extremum, the cache may now be stale — rescan the
            // survivors. Anything else leaves the extrema untouched.
            if let Some(e) = evicted.filter(|e| e.is_finite()) {
                if Some(e) == self.lo || Some(e) == self.hi {
                    self.lo = self.finite_fold(f64::INFINITY, f64::min);
                    self.hi = self.finite_fold(f64::NEG_INFINITY, f64::max);
                }
            }
        }
        self.buf.push_back(v);
        if v.is_finite() {
            self.lo = Some(self.lo.map_or(v, |lo| lo.min(v)));
            self.hi = Some(self.hi.map_or(v, |hi| hi.max(v)));
        }
        self.pushed += 1;
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of samples the window retains.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of samples ever pushed (evicted ones included).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Iterates the window oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Copies the window, oldest-first, into a fresh `Vec` (the shape
    /// [`AsciiChart`](crate::AsciiChart) and the SVG renderer consume).
    pub fn to_vec(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }

    /// Smallest finite sample in the window, if any — O(1) from the
    /// eviction-maintained cache.
    pub fn min(&self) -> Option<f64> {
        self.lo
    }

    /// Largest finite sample in the window, if any — O(1) from the
    /// eviction-maintained cache.
    pub fn max(&self) -> Option<f64> {
        self.hi
    }

    fn finite_fold(&self, init: f64, f: fn(f64, f64) -> f64) -> Option<f64> {
        let mut acc = init;
        let mut seen = false;
        for v in self.buf.iter().copied().filter(|v| v.is_finite()) {
            acc = f(acc, v);
            seen = true;
        }
        seen.then_some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_keeps_the_newest_window() {
        let mut ring = SampleRing::new(4);
        for v in 0..10 {
            ring.push(v as f64);
        }
        assert_eq!(ring.to_vec(), vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = SampleRing::new(8);
        ring.push(1.5);
        ring.push(2.5);
        assert_eq!(ring.to_vec(), vec![1.5, 2.5]);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.latest(), Some(2.5));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = SampleRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1.0);
        ring.push(2.0);
        assert_eq!(ring.to_vec(), vec![2.0]);
    }

    #[test]
    fn min_max_skip_non_finite() {
        let mut ring = SampleRing::new(5);
        ring.push(f64::NAN);
        ring.push(3.0);
        ring.push(-1.0);
        ring.push(f64::INFINITY);
        assert_eq!(ring.min(), Some(-1.0));
        assert_eq!(ring.max(), Some(3.0));
    }

    #[test]
    fn empty_ring_has_no_extrema() {
        let ring = SampleRing::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.min(), None);
        assert_eq!(ring.max(), None);
        assert_eq!(ring.latest(), None);
    }

    #[test]
    fn extrema_shrink_back_after_a_spike_is_evicted() {
        // Regression: the cached extrema must be recomputed when the
        // sample that set them falls out of the window, or a single
        // spike would pin a live chart's axes forever.
        let mut ring = SampleRing::new(3);
        ring.push(1.0);
        ring.push(100.0);
        ring.push(2.0);
        assert_eq!(ring.max(), Some(100.0));
        ring.push(3.0); // evicts 1.0 — min rescans
        assert_eq!(ring.min(), Some(2.0));
        assert_eq!(ring.max(), Some(100.0));
        ring.push(4.0); // evicts the 100.0 spike — max rescans
        assert_eq!(ring.max(), Some(4.0));
        assert_eq!(ring.min(), Some(2.0));
    }

    #[test]
    fn cached_extrema_match_a_rescan_under_churny_pushes() {
        let mut ring = SampleRing::new(5);
        let samples = [
            3.0,
            f64::NAN,
            -7.0,
            -7.0,
            f64::INFINITY,
            12.0,
            0.5,
            -2.0,
            12.0,
            1.0,
            f64::NEG_INFINITY,
            8.0,
        ];
        for v in samples {
            ring.push(v);
            let finite: Vec<f64> = ring.iter().filter(|v| v.is_finite()).collect();
            let expect_min = finite.iter().copied().reduce(f64::min);
            let expect_max = finite.iter().copied().reduce(f64::max);
            assert_eq!(ring.min(), expect_min, "min drifted after pushing {v}");
            assert_eq!(ring.max(), expect_max, "max drifted after pushing {v}");
        }
    }
}
