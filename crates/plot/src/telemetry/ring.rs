//! Fixed-capacity sample window backing every live-telemetry series.

use std::collections::VecDeque;

/// A fixed-capacity ring of `f64` samples.
///
/// Pushing beyond capacity evicts the oldest sample, so the ring
/// always holds the most recent window — the shape a live dashboard
/// charts. The ring also remembers how many samples were ever pushed,
/// so renderers can label the window's absolute tick range.
///
/// # Example
///
/// ```
/// use sociolearn_plot::SampleRing;
///
/// let mut ring = SampleRing::new(3);
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     ring.push(v);
/// }
/// // Capacity 3: the oldest sample (1.0) was evicted.
/// assert_eq!(ring.to_vec(), vec![2.0, 3.0, 4.0]);
/// assert_eq!(ring.pushed(), 4);
/// assert_eq!(ring.latest(), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRing {
    buf: VecDeque<f64>,
    cap: usize,
    pushed: u64,
}

impl SampleRing {
    /// Creates an empty ring holding at most `cap` samples (clamped to
    /// at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SampleRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest one if the ring is full.
    pub fn push(&mut self, v: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(v);
        self.pushed += 1;
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of samples the window retains.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of samples ever pushed (evicted ones included).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Iterates the window oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Copies the window, oldest-first, into a fresh `Vec` (the shape
    /// [`AsciiChart`](crate::AsciiChart) and the SVG renderer consume).
    pub fn to_vec(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }

    /// Smallest finite sample in the window, if any.
    pub fn min(&self) -> Option<f64> {
        self.finite_fold(f64::INFINITY, f64::min)
    }

    /// Largest finite sample in the window, if any.
    pub fn max(&self) -> Option<f64> {
        self.finite_fold(f64::NEG_INFINITY, f64::max)
    }

    fn finite_fold(&self, init: f64, f: fn(f64, f64) -> f64) -> Option<f64> {
        let mut acc = init;
        let mut seen = false;
        for v in self.buf.iter().copied().filter(|v| v.is_finite()) {
            acc = f(acc, v);
            seen = true;
        }
        seen.then_some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_keeps_the_newest_window() {
        let mut ring = SampleRing::new(4);
        for v in 0..10 {
            ring.push(v as f64);
        }
        assert_eq!(ring.to_vec(), vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = SampleRing::new(8);
        ring.push(1.5);
        ring.push(2.5);
        assert_eq!(ring.to_vec(), vec![1.5, 2.5]);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.latest(), Some(2.5));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = SampleRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1.0);
        ring.push(2.0);
        assert_eq!(ring.to_vec(), vec![2.0]);
    }

    #[test]
    fn min_max_skip_non_finite() {
        let mut ring = SampleRing::new(5);
        ring.push(f64::NAN);
        ring.push(3.0);
        ring.push(-1.0);
        ring.push(f64::INFINITY);
        assert_eq!(ring.min(), Some(-1.0));
        assert_eq!(ring.max(), Some(3.0));
    }

    #[test]
    fn empty_ring_has_no_extrema() {
        let ring = SampleRing::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.min(), None);
        assert_eq!(ring.max(), None);
        assert_eq!(ring.latest(), None);
    }
}
