//! ANSI terminal dashboard renderer.

use super::SeriesRegistry;
use crate::{fmt_sig, AsciiChart};

/// Moves the cursor home and clears to end of screen, so a reprinted
/// dashboard overwrites the previous frame in place.
const ANSI_REDRAW: &str = "\x1b[H\x1b[J";

/// Incremental terminal dashboard: one [`AsciiChart`] panel per
/// registered series, redrawn in place with ANSI escapes.
///
/// [`render`](LiveTerm::render) is a pure function of the registry —
/// identical samples yield a byte-identical frame — and
/// [`frame`](LiveTerm::frame) merely prefixes the cursor-home/clear
/// escape so successive prints overwrite each other instead of
/// scrolling.
///
/// # Example
///
/// ```
/// use sociolearn_plot::{LiveTerm, SeriesRegistry};
///
/// let mut reg = SeriesRegistry::new(60);
/// let alive = reg.gauge("alive", "nodes");
/// for t in 0..30 {
///     reg.push(alive, 100.0 - f64::from(t));
/// }
/// let term = LiveTerm::new();
/// let out = term.render(&reg);
/// assert!(out.contains("alive"));
/// assert!(out.contains("nodes"));
/// // Same registry, same bytes.
/// assert_eq!(out, term.render(&reg));
/// // The in-place frame is the same text behind a redraw escape.
/// assert_eq!(term.frame(&reg), format!("\u{1b}[H\u{1b}[J{out}"));
/// ```
#[derive(Debug, Clone)]
pub struct LiveTerm {
    width: usize,
    height: usize,
}

impl Default for LiveTerm {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveTerm {
    /// Creates a renderer with the default 64×5 panel size.
    pub fn new() -> Self {
        LiveTerm {
            width: 64,
            height: 5,
        }
    }

    /// Sets the chart panel size in characters (clamped to at least
    /// 10×3, like [`AsciiChart`]).
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(10);
        self.height = height.max(3);
        self
    }

    /// Renders one dashboard frame: a header line followed by a
    /// labelled chart panel per series, in registration order.
    pub fn render(&self, reg: &SeriesRegistry) -> String {
        let mut out = String::with_capacity(reg.len() * (self.height + 2) * (self.width + 12));
        out.push_str(&format!(
            "fleet telemetry · tick {} · {} series · window {}\n",
            reg.ticks(),
            reg.len(),
            reg.window()
        ));
        for s in reg.iter() {
            let stats = match (s.ring().latest(), s.ring().min(), s.ring().max()) {
                (Some(last), Some(lo), Some(hi)) => format!(
                    "last {} · min {} · max {}",
                    fmt_sig(last, 3),
                    fmt_sig(lo, 3),
                    fmt_sig(hi, 3)
                ),
                _ => "no samples".to_string(),
            };
            let unit = if s.unit().is_empty() {
                String::new()
            } else {
                format!(" ({})", s.unit())
            };
            out.push_str(&format!(
                "\n{}{} [{}] · {}\n",
                s.name(),
                unit,
                s.kind().label(),
                stats
            ));
            out.push_str(&AsciiChart::new(self.width, self.height).render(&s.ring().to_vec()));
        }
        out
    }

    /// [`render`](LiveTerm::render) prefixed with the ANSI
    /// cursor-home + clear-screen escape, so printing successive
    /// frames redraws the dashboard in place.
    pub fn frame(&self, reg: &SeriesRegistry) -> String {
        format!("{ANSI_REDRAW}{}", self.render(reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> SeriesRegistry {
        let mut reg = SeriesRegistry::new(32);
        let a = reg.gauge("alive", "nodes");
        let d = reg.counter("drops", "events/tick");
        for t in 0..40 {
            reg.push(a, 100.0 - t as f64);
            reg.push(d, (t % 3) as f64);
        }
        reg
    }

    #[test]
    fn renders_every_series_with_metadata() {
        let out = LiveTerm::new().render(&sample_registry());
        for needle in ["alive", "nodes", "drops", "events/tick", "gauge", "counter"] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
        assert!(out.starts_with("fleet telemetry · tick 40 · 2 series"));
    }

    #[test]
    fn byte_identical_across_renders() {
        let reg = sample_registry();
        let term = LiveTerm::new().with_size(48, 4);
        assert_eq!(term.render(&reg), term.render(&reg));
    }

    #[test]
    fn frame_prefixes_redraw_escape() {
        let reg = sample_registry();
        let term = LiveTerm::new();
        let frame = term.frame(&reg);
        assert!(frame.starts_with("\x1b[H\x1b[J"));
        assert!(frame.ends_with(&term.render(&reg)));
    }

    #[test]
    fn empty_registry_still_renders_header() {
        let reg = SeriesRegistry::new(8);
        let out = LiveTerm::new().render(&reg);
        assert!(out.contains("0 series"));
    }

    #[test]
    fn empty_series_shows_placeholder() {
        let mut reg = SeriesRegistry::new(8);
        reg.gauge("quiet", "");
        let out = LiveTerm::new().render(&reg);
        assert!(out.contains("no samples"));
        assert!(out.contains("(no data)"));
    }
}
