//! Live fleet telemetry: sample rings, a series registry, and two
//! incremental dashboard renderers.
//!
//! The experiment pipeline renders *finished* runs; this module
//! renders *running* ones. A [`SeriesRegistry`] holds one fixed-width
//! [`SampleRing`] per named gauge or counter, and two renderers turn
//! the registry into a dashboard frame:
//!
//! * [`LiveTerm`] — an ANSI terminal dashboard (in-place redraw,
//!   built on [`AsciiChart`](crate::AsciiChart)),
//! * [`LiveSvg`] — a self-contained small-multiples SVG snapshot.
//!
//! Both renderers are pure functions of the registry contents: the
//! same samples always produce byte-identical output, so dashboard
//! frames are as deterministic (and doctestable) as the simulations
//! that feed them.

mod live_svg;
mod live_term;
mod ring;

pub use live_svg::LiveSvg;
pub use live_term::LiveTerm;
pub use ring::SampleRing;

/// Whether a series reports an instantaneous level or a per-window
/// event count.
///
/// The distinction is metadata for renderers and docs — both kinds
/// are stored identically. Gauges (alive nodes, epoch skew) are
/// meaningful at any instant; counters (fallbacks, queue drops) are
/// per-window deltas that sum over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// An instantaneous level, e.g. alive-node count.
    Gauge,
    /// A per-window event count, e.g. queue drops this tick.
    Counter,
}

impl SeriesKind {
    /// Short lowercase label: `"gauge"` or `"counter"`.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }
}

/// Handle to a series inside a [`SeriesRegistry`], returned at
/// registration and used to push samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// One named series: metadata plus its sample window.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySeries {
    name: String,
    unit: String,
    kind: SeriesKind,
    ring: SampleRing,
}

impl TelemetrySeries {
    /// The series name, e.g. `"alive"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit the samples are measured in, e.g. `"nodes"`.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Gauge or counter.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// The sample window.
    pub fn ring(&self) -> &SampleRing {
        &self.ring
    }
}

/// A registry of named telemetry series sharing one window width.
///
/// Registration is idempotent on the name: registering `"alive"`
/// twice returns the same [`SeriesId`], so drivers can re-declare
/// their series every tick without bookkeeping. Series render in
/// registration order.
///
/// # Example
///
/// ```
/// use sociolearn_plot::{SeriesKind, SeriesRegistry};
///
/// let mut reg = SeriesRegistry::new(120);
/// let alive = reg.gauge("alive", "nodes");
/// let drops = reg.counter("queue_drops", "events/tick");
/// reg.push(alive, 100.0);
/// reg.push(drops, 0.0);
/// assert_eq!(reg.len(), 2);
/// assert_eq!(reg.get(alive).ring().latest(), Some(100.0));
/// assert_eq!(reg.get(drops).kind(), SeriesKind::Counter);
/// // Re-registering the same name returns the same handle.
/// assert_eq!(reg.gauge("alive", "nodes"), alive);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRegistry {
    window: usize,
    series: Vec<TelemetrySeries>,
}

impl SeriesRegistry {
    /// Creates an empty registry whose series each retain `window`
    /// samples (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        SeriesRegistry {
            window: window.max(1),
            series: Vec::new(),
        }
    }

    /// Registers (or looks up) a gauge series.
    pub fn gauge(&mut self, name: &str, unit: &str) -> SeriesId {
        self.register(name, unit, SeriesKind::Gauge)
    }

    /// Registers (or looks up) a counter series.
    pub fn counter(&mut self, name: &str, unit: &str) -> SeriesId {
        self.register(name, unit, SeriesKind::Counter)
    }

    fn register(&mut self, name: &str, unit: &str, kind: SeriesKind) -> SeriesId {
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            return SeriesId(i);
        }
        self.series.push(TelemetrySeries {
            name: name.to_string(),
            unit: unit.to_string(),
            kind,
            ring: SampleRing::new(self.window),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Appends a sample to the identified series.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    pub fn push(&mut self, id: SeriesId, v: f64) {
        self.series[id.0].ring.push(v);
    }

    /// The identified series.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    pub fn get(&self, id: SeriesId) -> &TelemetrySeries {
        &self.series[id.0]
    }

    /// Iterates the series in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetrySeries> {
        self.series.iter()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series have been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The shared window width every ring was created with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The largest `pushed()` count across all series — the dashboard
    /// tick counter.
    pub fn ticks(&self) -> u64 {
        self.series
            .iter()
            .map(|s| s.ring.pushed())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let mut reg = SeriesRegistry::new(16);
        let a = reg.gauge("a", "x");
        let b = reg.counter("b", "y");
        assert_eq!(reg.gauge("a", "x"), a);
        // A kind mismatch on re-registration still returns the
        // original series — the first declaration wins.
        assert_eq!(reg.counter("a", "x"), a);
        assert_eq!(reg.get(a).kind(), SeriesKind::Gauge);
        let names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(reg.get(b).unit(), "y");
    }

    #[test]
    fn push_lands_in_the_right_ring() {
        let mut reg = SeriesRegistry::new(2);
        let a = reg.gauge("a", "");
        let b = reg.gauge("b", "");
        reg.push(a, 1.0);
        reg.push(a, 2.0);
        reg.push(a, 3.0);
        reg.push(b, 9.0);
        assert_eq!(reg.get(a).ring().to_vec(), vec![2.0, 3.0]);
        assert_eq!(reg.get(b).ring().to_vec(), vec![9.0]);
        assert_eq!(reg.ticks(), 3);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(SeriesKind::Gauge.label(), "gauge");
        assert_eq!(SeriesKind::Counter.label(), "counter");
    }
}
