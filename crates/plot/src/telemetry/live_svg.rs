//! Self-contained SVG dashboard snapshot renderer.

use super::SeriesRegistry;
use crate::fmt_sig;
use crate::svg::escape;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Per-panel stroke colors, cycled in registration order.
const COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// Panel geometry: each series gets one fixed-size sparkline panel,
/// laid out in a column grid.
const PANEL_W: f64 = 340.0;
const PANEL_H: f64 = 110.0;
const PANEL_PAD: f64 = 12.0;
const PLOT_TOP: f64 = 34.0;
const PLOT_BOTTOM: f64 = 16.0;
const HEADER_H: f64 = 40.0;

/// Small-multiples SVG snapshot of a [`SeriesRegistry`]: one
/// sparkline panel per series, with name, unit, latest value and the
/// window's min/max.
///
/// The output is a pure function of the registry — a run that pushed
/// identical samples writes a byte-identical file — and is fully
/// self-contained (inline styles, no external references), following
/// the same discipline as [`SvgPlot`](crate::SvgPlot).
///
/// # Example
///
/// ```
/// use sociolearn_plot::{LiveSvg, SeriesRegistry};
///
/// let mut reg = SeriesRegistry::new(60);
/// let skew = reg.gauge("epoch skew", "epochs");
/// for t in 0..50 {
///     reg.push(skew, f64::from(t % 7));
/// }
/// let svg = LiveSvg::new("demo fleet").render(&reg);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("epoch skew"));
/// assert_eq!(svg, LiveSvg::new("demo fleet").render(&reg));
/// ```
#[derive(Debug, Clone)]
pub struct LiveSvg {
    title: String,
    columns: usize,
}

impl LiveSvg {
    /// Creates a renderer titled `title`, with the default two-column
    /// panel grid.
    pub fn new(title: &str) -> Self {
        LiveSvg {
            title: title.to_string(),
            columns: 2,
        }
    }

    /// Sets the number of panel columns (clamped to at least 1).
    pub fn with_columns(mut self, columns: usize) -> Self {
        self.columns = columns.max(1);
        self
    }

    /// Renders the registry into a self-contained SVG string.
    pub fn render(&self, reg: &SeriesRegistry) -> String {
        let cols = self.columns.min(reg.len().max(1));
        let rows = reg.len().div_ceil(cols).max(1);
        let width = PANEL_PAD + cols as f64 * (PANEL_W + PANEL_PAD);
        let height = HEADER_H + rows as f64 * (PANEL_H + PANEL_PAD) + PANEL_PAD;

        let mut out = String::with_capacity(2048 + reg.len() * 1024);
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
        );
        out.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = write!(
            out,
            r##"<text x="{PANEL_PAD}" y="24" font-family="monospace" font-size="16" fill="#222">{} — tick {} · {} series · window {}</text>"##,
            escape(&self.title),
            reg.ticks(),
            reg.len(),
            reg.window()
        );
        for (i, s) in reg.iter().enumerate() {
            let x0 = PANEL_PAD + (i % cols) as f64 * (PANEL_W + PANEL_PAD);
            let y0 = HEADER_H + (i / cols) as f64 * (PANEL_H + PANEL_PAD);
            self.panel(&mut out, x0, y0, s, COLORS[i % COLORS.len()]);
        }
        out.push_str("</svg>\n");
        out
    }

    /// One series panel: frame, title line, min/max labels, sparkline.
    fn panel(&self, out: &mut String, x0: f64, y0: f64, s: &super::TelemetrySeries, color: &str) {
        let _ = write!(
            out,
            r##"<rect x="{x0}" y="{y0}" width="{PANEL_W}" height="{PANEL_H}" fill="#fafafa" stroke="#ccc"/>"##
        );
        let unit = if s.unit().is_empty() {
            String::new()
        } else {
            format!(" ({})", s.unit())
        };
        let last = s.ring().latest().map_or("—".to_string(), |v| fmt_sig(v, 4));
        let _ = write!(
            out,
            r##"<text x="{}" y="{}" font-family="monospace" font-size="12" fill="#222">{}{} [{}] = {}</text>"##,
            x0 + 8.0,
            y0 + 16.0,
            escape(s.name()),
            escape(&unit),
            s.kind().label(),
            escape(&last)
        );
        let ys = s.ring().to_vec();
        let (Some(lo), Some(hi)) = (s.ring().min(), s.ring().max()) else {
            let _ = write!(
                out,
                r##"<text x="{}" y="{}" font-family="monospace" font-size="11" fill="#999">no samples</text>"##,
                x0 + 8.0,
                y0 + PANEL_H / 2.0
            );
            return;
        };
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        let _ = write!(
            out,
            r##"<text x="{}" y="{}" font-family="monospace" font-size="10" fill="#777">{} … {}</text>"##,
            x0 + 8.0,
            y0 + PANEL_H - 5.0,
            escape(&fmt_sig(lo, 3)),
            escape(&fmt_sig(hi, 3))
        );
        // The sparkline, in the band between the title and the
        // min/max footer. Single samples render as a dot.
        let plot_w = PANEL_W - 16.0;
        let plot_h = PANEL_H - PLOT_TOP - PLOT_BOTTOM;
        let point = |i: usize, v: f64| {
            let x = if ys.len() <= 1 {
                x0 + 8.0
            } else {
                x0 + 8.0 + i as f64 / (ys.len() - 1) as f64 * plot_w
            };
            let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let y = y0 + PLOT_TOP + (1.0 - frac) * plot_h;
            (x, y)
        };
        if ys.len() == 1 {
            let (x, y) = point(0, ys[0]);
            let _ = write!(
                out,
                r#"<circle cx="{x:.2}" cy="{y:.2}" r="2.5" fill="{color}"/>"#
            );
            return;
        }
        out.push_str(r#"<polyline fill="none" stroke=""#);
        out.push_str(color);
        out.push_str(r#"" stroke-width="1.5" points=""#);
        for (i, &v) in ys.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let (x, y) = point(i, v);
            let _ = write!(out, "{x:.2},{y:.2} ");
        }
        out.push_str(r#""/>"#);
    }

    /// Renders and writes the snapshot to `path`.
    pub fn save(&self, path: &Path, reg: &SeriesRegistry) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render(reg).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> SeriesRegistry {
        let mut reg = SeriesRegistry::new(50);
        let a = reg.gauge("alive", "nodes");
        let b = reg.counter("fallbacks", "events/tick");
        let c = reg.gauge("commit fraction", "");
        for t in 0..80u32 {
            reg.push(a, 1000.0 - f64::from(t % 13));
            reg.push(b, f64::from(t % 5));
            reg.push(c, f64::from(t) / 80.0);
        }
        reg
    }

    #[test]
    fn snapshot_is_self_contained_and_deterministic() {
        let reg = sample_registry();
        let svg = LiveSvg::new("fleet").render(&reg);
        assert!(svg.starts_with("<svg xmlns="));
        assert!(svg.ends_with("</svg>\n"));
        assert!(!svg.contains("href"), "must not reference external assets");
        assert_eq!(svg, LiveSvg::new("fleet").render(&reg));
    }

    #[test]
    fn every_series_gets_a_panel() {
        let svg = LiveSvg::new("fleet").render(&sample_registry());
        for needle in ["alive", "fallbacks", "commit fraction", "polyline"] {
            assert!(svg.contains(needle), "missing {needle:?}");
        }
        assert_eq!(svg.matches("<polyline").count(), 3);
    }

    #[test]
    fn title_and_metadata_are_escaped() {
        let mut reg = SeriesRegistry::new(4);
        reg.gauge("a<b", "x&y");
        let svg = LiveSvg::new("t<&>t").render(&reg);
        assert!(svg.contains("t&lt;&amp;&gt;t"));
        assert!(svg.contains("a&lt;b"));
        assert!(svg.contains("x&amp;y"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn empty_and_single_sample_panels_render() {
        let mut reg = SeriesRegistry::new(8);
        let a = reg.gauge("one", "");
        reg.gauge("none", "");
        reg.push(a, 5.0);
        let svg = LiveSvg::new("edge").render(&reg);
        assert!(svg.contains("<circle"), "single sample renders as dot");
        assert!(svg.contains("no samples"));
    }

    #[test]
    fn column_layout_clamps() {
        let reg = sample_registry();
        let one = LiveSvg::new("x").with_columns(0).render(&reg);
        let many = LiveSvg::new("x").with_columns(9).render(&reg);
        assert!(one.starts_with("<svg"));
        assert!(many.starts_with("<svg"));
    }
}
