//! Minimal standalone SVG figures.

use crate::fmt_sig;
use std::io;
use std::path::Path;

const COLORS: [&str; 8] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
];

/// A named data series for an [`SvgPlot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Draw markers at each point in addition to the polyline.
    pub markers: bool,
}

impl Series {
    /// Creates a line series from `(x, y)` pairs.
    pub fn line<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            markers: false,
        }
    }

    /// Creates a line series with circular markers at each point.
    pub fn with_markers<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            markers: true,
        }
    }

    /// Convenience: a series from a y-vector with x = 0, 1, 2, ...
    pub fn from_ys<S: Into<String>>(label: S, ys: &[f64]) -> Self {
        Series::line(
            label,
            ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        )
    }
}

/// Axis scale for an [`SvgPlot`] axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Linear axis (default).
    #[default]
    Linear,
    /// Base-10 logarithmic axis; non-positive values are dropped.
    Log,
}

/// Builder for a self-contained SVG line/scatter figure.
///
/// # Example
///
/// ```
/// use sociolearn_plot::{Series, SvgPlot};
///
/// let svg = SvgPlot::new("demo")
///     .x_label("t")
///     .y_label("regret")
///     .add(Series::from_ys("run", &[3.0, 2.0, 1.5, 1.2]))
///     .render();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("regret"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: u32,
    height: u32,
    series: Vec<Series>,
    x_scale: Scale,
    y_scale: Scale,
    hlines: Vec<(f64, String)>,
}

impl SvgPlot {
    /// Creates an empty 720×480 plot with the given title.
    pub fn new<S: Into<String>>(title: S) -> Self {
        SvgPlot {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720,
            height: 480,
            series: Vec::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            hlines: Vec::new(),
        }
    }

    /// Sets the x-axis label.
    pub fn x_label<S: Into<String>>(mut self, s: S) -> Self {
        self.x_label = s.into();
        self
    }

    /// Sets the y-axis label.
    pub fn y_label<S: Into<String>>(mut self, s: S) -> Self {
        self.y_label = s.into();
        self
    }

    /// Switches the x axis to log scale.
    pub fn log_x(mut self) -> Self {
        self.x_scale = Scale::Log;
        self
    }

    /// Switches the y axis to log scale.
    pub fn log_y(mut self) -> Self {
        self.y_scale = Scale::Log;
        self
    }

    /// Adds a horizontal reference line (e.g. a theorem bound) with a label.
    pub fn hline<S: Into<String>>(mut self, y: f64, label: S) -> Self {
        self.hlines.push((y, label.into()));
        self
    }

    /// Adds a data series.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    fn transform(scale: Scale, v: f64) -> Option<f64> {
        match scale {
            Scale::Linear => v.is_finite().then_some(v),
            Scale::Log => (v > 0.0 && v.is_finite()).then(|| v.log10()),
        }
    }

    /// Renders the figure to an SVG string.
    pub fn render(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 55.0);
        let pw = w - ml - mr;
        let ph = h - mt - mb;

        // Collect transformed points per series.
        let tseries: Vec<Vec<(f64, f64)>> = self
            .series
            .iter()
            .map(|s| {
                s.points
                    .iter()
                    .filter_map(|&(x, y)| {
                        Some((
                            Self::transform(self.x_scale, x)?,
                            Self::transform(self.y_scale, y)?,
                        ))
                    })
                    .collect()
            })
            .collect();
        let hline_ys: Vec<f64> = self
            .hlines
            .iter()
            .filter_map(|&(y, _)| Self::transform(self.y_scale, y))
            .collect();

        let mut xlo = f64::INFINITY;
        let mut xhi = f64::NEG_INFINITY;
        let mut ylo = f64::INFINITY;
        let mut yhi = f64::NEG_INFINITY;
        for pts in &tseries {
            for &(x, y) in pts {
                xlo = xlo.min(x);
                xhi = xhi.max(x);
                ylo = ylo.min(y);
                yhi = yhi.max(y);
            }
        }
        for &y in &hline_ys {
            ylo = ylo.min(y);
            yhi = yhi.max(y);
        }
        if !xlo.is_finite() {
            xlo = 0.0;
            xhi = 1.0;
        }
        if !ylo.is_finite() {
            ylo = 0.0;
            yhi = 1.0;
        }
        if xlo == xhi {
            xlo -= 0.5;
            xhi += 0.5;
        }
        if ylo == yhi {
            ylo -= 0.5;
            yhi += 0.5;
        }
        // A little breathing room on y.
        let pad = (yhi - ylo) * 0.05;
        ylo -= pad;
        yhi += pad;

        let px = |x: f64| ml + (x - xlo) / (xhi - xlo) * pw;
        let py = |y: f64| mt + (1.0 - (y - ylo) / (yhi - ylo)) * ph;

        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\" font-family=\"sans-serif\" font-size=\"12\">\n",
            self.width, self.height, self.width, self.height
        ));
        out.push_str(&format!(
            "<rect width=\"{}\" height=\"{}\" fill=\"white\"/>\n",
            self.width, self.height
        ));
        // Title.
        out.push_str(&format!(
            "<text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"15\" font-weight=\"bold\">{}</text>\n",
            w / 2.0,
            escape(&self.title)
        ));
        // Axes.
        out.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>\n",
            mt + ph,
            ml + pw,
            mt + ph
        ));
        out.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{}\" stroke=\"black\"/>\n",
            mt + ph
        ));
        // Ticks: 6 per axis.
        for i in 0..=5 {
            let fx = i as f64 / 5.0;
            let xv = xlo + fx * (xhi - xlo);
            let x = ml + fx * pw;
            let tick_label = match self.x_scale {
                Scale::Linear => fmt_sig(xv, 3),
                Scale::Log => format!("1e{}", fmt_sig(xv, 2)),
            };
            out.push_str(&format!(
                "<line x1=\"{x}\" y1=\"{}\" x2=\"{x}\" y2=\"{}\" stroke=\"black\"/>\n",
                mt + ph,
                mt + ph + 5.0
            ));
            out.push_str(&format!(
                "<text x=\"{x}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
                mt + ph + 18.0,
                tick_label
            ));

            let yv = ylo + fx * (yhi - ylo);
            let y = mt + (1.0 - fx) * ph;
            let tick_label = match self.y_scale {
                Scale::Linear => fmt_sig(yv, 3),
                Scale::Log => format!("1e{}", fmt_sig(yv, 2)),
            };
            out.push_str(&format!(
                "<line x1=\"{}\" y1=\"{y}\" x2=\"{ml}\" y2=\"{y}\" stroke=\"black\"/>\n",
                ml - 5.0
            ));
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>\n",
                ml - 8.0,
                y + 4.0,
                tick_label
            ));
        }
        // Axis labels.
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            ml + pw / 2.0,
            h - 12.0,
            escape(&self.x_label)
        ));
        out.push_str(&format!(
            "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>\n",
            mt + ph / 2.0,
            mt + ph / 2.0,
            escape(&self.y_label)
        ));
        // Reference lines.
        for (i, (yraw, label)) in self.hlines.iter().enumerate() {
            if let Some(ty) = Self::transform(self.y_scale, *yraw) {
                if ty >= ylo && ty <= yhi {
                    let y = py(ty);
                    out.push_str(&format!(
                        "<line x1=\"{ml}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#888\" stroke-dasharray=\"6,4\"/>\n",
                        ml + pw
                    ));
                    out.push_str(&format!(
                        "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" fill=\"#555\">{}</text>\n",
                        ml + pw - 4.0,
                        y - 4.0 - 14.0 * i as f64,
                        escape(label)
                    ));
                }
            }
        }
        // Series.
        for (si, pts) in tseries.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            if pts.len() > 1 {
                let path: Vec<String> = pts
                    .iter()
                    .map(|&(x, y)| format!("{:.2},{:.2}", px(x), py(y)))
                    .collect();
                out.push_str(&format!(
                    "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\" points=\"{}\"/>\n",
                    path.join(" ")
                ));
            }
            if self.series[si].markers || pts.len() == 1 {
                for &(x, y) in pts {
                    out.push_str(&format!(
                        "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"3\" fill=\"{color}\"/>\n",
                        px(x),
                        py(y)
                    ));
                }
            }
        }
        // Legend.
        for (si, s) in self.series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            let y = mt + 10.0 + 16.0 * si as f64;
            out.push_str(&format!(
                "<line x1=\"{}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"{color}\" stroke-width=\"3\"/>\n",
                ml + 8.0,
                ml + 28.0
            ));
            out.push_str(&format!(
                "<text x=\"{}\" y=\"{}\">{}</text>\n",
                ml + 33.0,
                y + 4.0,
                escape(&s.label)
            ));
        }
        out.push_str("</svg>\n");
        out
    }

    /// Renders and writes the figure to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from writing the file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

pub(crate) fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_series_and_labels() {
        let svg = SvgPlot::new("T")
            .x_label("xx")
            .y_label("yy")
            .add(Series::from_ys("alpha", &[1.0, 2.0, 3.0]))
            .render();
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("alpha"));
        assert!(svg.contains("xx"));
        assert!(svg.contains("yy"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn empty_plot_still_valid() {
        let svg = SvgPlot::new("empty").render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let svg = SvgPlot::new("log")
            .log_y()
            .add(Series::from_ys("s", &[0.0, -1.0, 10.0, 100.0]))
            .render();
        // Only two positive points survive -> polyline with 2 points.
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn hline_rendered_with_label() {
        let svg = SvgPlot::new("h")
            .hline(2.0, "bound 3δ")
            .add(Series::from_ys("s", &[1.0, 3.0]))
            .render();
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("bound 3δ"));
    }

    #[test]
    fn markers_render_circles() {
        let svg = SvgPlot::new("m")
            .add(Series::with_markers("s", vec![(0.0, 1.0), (1.0, 2.0)]))
            .render();
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn title_escaped() {
        let svg = SvgPlot::new("a<b&c").render();
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("sociolearn_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.svg");
        SvgPlot::new("f")
            .add(Series::from_ys("s", &[1.0, 2.0]))
            .save(&path)
            .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_file(path).unwrap();
    }
}
