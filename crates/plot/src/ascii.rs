//! Terminal line charts and histograms.

use crate::fmt_sig;

/// A multi-series ASCII line chart.
///
/// Renders one or more `f64` series into a fixed-size character grid
/// with a y-axis scale, suitable for experiment logs and examples.
/// Series are drawn with distinct glyphs in order: `*`, `o`, `+`, `x`,
/// `#`, `@`.
///
/// # Example
///
/// ```
/// use sociolearn_plot::AsciiChart;
///
/// let ys: Vec<f64> = (0..40).map(|i| i as f64).collect();
/// let out = AsciiChart::new(40, 8).render(&ys);
/// assert!(out.lines().count() >= 8);
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    caption: Option<String>,
    labels: Vec<String>,
    y_min: Option<f64>,
    y_max: Option<f64>,
}

const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl AsciiChart {
    /// Creates a chart with the given plot-area width and height in
    /// characters (clamped to at least 10×3).
    pub fn new(width: usize, height: usize) -> Self {
        AsciiChart {
            width: width.max(10),
            height: height.max(3),
            caption: None,
            labels: Vec::new(),
            y_min: None,
            y_max: None,
        }
    }

    /// Adds a caption line above the chart.
    pub fn with_caption(mut self, caption: &str) -> Self {
        self.caption = Some(caption.to_string());
        self
    }

    /// Adds per-series legend labels (used by [`render_multi`]).
    ///
    /// [`render_multi`]: AsciiChart::render_multi
    pub fn with_labels<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.labels = labels.into_iter().map(Into::into).collect();
        self
    }

    /// Fixes the y-axis range instead of auto-scaling to the data.
    pub fn with_y_range(mut self, lo: f64, hi: f64) -> Self {
        self.y_min = Some(lo);
        self.y_max = Some(hi);
        self
    }

    /// Renders a single series.
    pub fn render(&self, ys: &[f64]) -> String {
        self.render_multi(&[ys])
    }

    /// Renders several series onto the same axes.
    ///
    /// Empty input (or all-empty series) renders a placeholder message.
    pub fn render_multi(&self, series: &[&[f64]]) -> String {
        let finite: Vec<f64> = series
            .iter()
            .flat_map(|s| s.iter())
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            return "(no data)\n".to_string();
        }
        let mut lo = self
            .y_min
            .unwrap_or_else(|| finite.iter().copied().fold(f64::INFINITY, f64::min));
        let mut hi = self
            .y_max
            .unwrap_or_else(|| finite.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        if lo == hi {
            lo -= 0.5;
            hi += 0.5;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        let max_len = series.iter().map(|s| s.len()).max().unwrap_or(0);
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (i, &v) in s.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let x = if max_len <= 1 {
                    0
                } else {
                    i * (self.width - 1) / (max_len - 1).max(1)
                };
                let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                let y = ((1.0 - frac) * (self.height - 1) as f64).round() as usize;
                grid[y][x.min(self.width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        if let Some(c) = &self.caption {
            out.push_str(c);
            out.push('\n');
        }
        for (row_idx, row) in grid.iter().enumerate() {
            let label = if row_idx == 0 {
                fmt_sig(hi, 3)
            } else if row_idx == self.height - 1 {
                fmt_sig(lo, 3)
            } else {
                String::new()
            };
            out.push_str(&format!("{label:>9} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(self.width)));
        if !self.labels.is_empty() {
            let legend: Vec<String> = self
                .labels
                .iter()
                .enumerate()
                .map(|(i, l)| format!("{} {}", GLYPHS[i % GLYPHS.len()], l))
                .collect();
            out.push_str(&format!("{:>10}{}\n", "", legend.join("   ")));
        }
        out
    }
}

/// Renders a horizontal bar histogram from `(label, count)` pairs.
///
/// ```
/// let out = sociolearn_plot::ascii_histogram(&[("a".into(), 10.0), ("b".into(), 5.0)], 20);
/// assert!(out.contains("a"));
/// assert!(out.lines().count() == 2);
/// ```
pub fn ascii_histogram(bars: &[(String, f64)], max_width: usize) -> String {
    let max_width = max_width.max(1);
    let peak = bars
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in bars {
        let n = ((v.abs() / peak) * max_width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_w$} | {} {}\n",
            "█".repeat(n),
            fmt_sig(*v, 3)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series() {
        let ys: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let out = AsciiChart::new(30, 6).render(&ys);
        // Top row should contain the max label, bottom the min.
        assert!(out.contains("29"));
        assert!(out.contains('*'));
    }

    #[test]
    fn empty_series_placeholder() {
        let out = AsciiChart::new(30, 6).render(&[]);
        assert_eq!(out, "(no data)\n");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let out = AsciiChart::new(20, 5).render(&[2.0; 10]);
        assert!(out.contains('*'));
    }

    #[test]
    fn multi_series_distinct_glyphs() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 19.0 - i as f64).collect();
        let out = AsciiChart::new(20, 8)
            .with_labels(["up", "down"])
            .render_multi(&[&a, &b]);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("up"));
        assert!(out.contains("down"));
    }

    #[test]
    fn fixed_y_range_clamps() {
        let out = AsciiChart::new(20, 5)
            .with_y_range(0.0, 1.0)
            .render(&[5.0, -5.0]);
        assert!(out.contains('1'));
        assert!(out.contains('0'));
    }

    #[test]
    fn nan_values_skipped() {
        let out = AsciiChart::new(20, 5).render(&[1.0, f64::NAN, 3.0]);
        assert!(out.contains('*'));
    }

    #[test]
    fn histogram_scales_to_peak() {
        let out = ascii_histogram(&[("x".into(), 2.0), ("y".into(), 1.0)], 10);
        let lines: Vec<&str> = out.lines().collect();
        let bar = |s: &str| s.chars().filter(|&c| c == '█').count();
        assert_eq!(bar(lines[0]), 10);
        assert_eq!(bar(lines[1]), 5);
    }

    #[test]
    fn caption_is_first_line() {
        let out = AsciiChart::new(20, 4)
            .with_caption("hello")
            .render(&[1.0, 2.0]);
        assert!(out.starts_with("hello\n"));
    }
}
