//! Dependency-free CSV output.

use std::io::{self, Write};
use std::path::Path;

/// A small CSV writer with RFC-4180-style quoting.
///
/// # Example
///
/// ```
/// use sociolearn_plot::CsvWriter;
///
/// let mut w = CsvWriter::new(vec!["t".into(), "regret".into()]);
/// w.row(&["0".into(), "0.5".into()]);
/// w.row_values(&[1.0, 0.25]);
/// let text = w.to_string();
/// assert!(text.starts_with("t,regret\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvWriter {
    /// Creates a writer with the given column names.
    pub fn new(header: Vec<String>) -> Self {
        CsvWriter {
            header,
            rows: Vec::new(),
        }
    }

    /// Creates a writer from string-slice column names.
    pub fn with_columns(cols: &[&str]) -> Self {
        CsvWriter::new(cols.iter().map(|s| s.to_string()).collect())
    }

    /// Appends one row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "csv row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends one row of numeric cells (formatted with `{}`).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header width.
    pub fn row_values(&mut self, values: &[f64]) {
        let cells: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
        self.row(&cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to CSV text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&join_csv(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&join_csv(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to an arbitrary writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.render().as_bytes())
    }

    /// Writes the CSV to a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

impl std::fmt::Display for CsvWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

fn join_csv(cells: &[String]) -> String {
    cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_roundtrip() {
        let mut w = CsvWriter::with_columns(&["a", "b"]);
        w.row_values(&[1.0, 2.5]);
        assert_eq!(w.render(), "a,b\n1,2.5\n");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn quoting_rules() {
        let mut w = CsvWriter::with_columns(&["x"]);
        w.row(&["hello, world".into()]);
        w.row(&["say \"hi\"".into()]);
        let text = w.render();
        assert!(text.contains("\"hello, world\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "csv row width")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::with_columns(&["a", "b"]);
        w.row(&["only-one".into()]);
    }

    #[test]
    fn write_to_vec() {
        let mut w = CsvWriter::with_columns(&["n"]);
        w.row_values(&[9.0]);
        let mut buf = Vec::new();
        w.write_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "n\n9\n");
    }

    #[test]
    fn display_matches_render() {
        let w = CsvWriter::with_columns(&["z"]);
        assert_eq!(format!("{w}"), w.render());
        assert!(w.is_empty());
    }
}
