//! Markdown table builder for experiment reports.

/// Builds a GitHub-flavoured Markdown table with aligned columns.
///
/// # Example
///
/// ```
/// use sociolearn_plot::MarkdownTable;
///
/// let mut t = MarkdownTable::new(&["N", "regret", "bound"]);
/// t.add_row(&["100".into(), "0.21".into(), "0.4".into()]);
/// t.add_row(&["10000".into(), "0.12".into(), "0.4".into()]);
/// let md = t.render();
/// assert!(md.lines().count() == 4);
/// assert!(md.contains("| 10000 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        MarkdownTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header width.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "table row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row built from `Display` items.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header width.
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let strs: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&strs);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to aligned Markdown.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat((*w).max(3))).collect();
        out.push_str(&format!(
            "|{}|",
            sep.iter()
                .map(|s| format!(" {s} "))
                .collect::<Vec<_>>()
                .join("|")
        ));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        let _ = ncol;
        out
    }
}

impl std::fmt::Display for MarkdownTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_separator() {
        let t = MarkdownTable::new(&["a", "b"]);
        let md = t.render();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("| a"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    fn columns_align() {
        let mut t = MarkdownTable::new(&["name", "v"]);
        t.add_row(&["x".into(), "1".into()]);
        t.add_row(&["longer-name".into(), "2".into()]);
        let md = t.render();
        let lines: Vec<&str> = md.lines().collect();
        // All rows should have equal rendered width.
        assert_eq!(lines[0].chars().count(), lines[2].chars().count());
        assert_eq!(lines[2].chars().count(), lines[3].chars().count());
    }

    #[test]
    fn display_rows() {
        let mut t = MarkdownTable::new(&["x", "y"]);
        t.add_display_row(&[1.5, 2.5]);
        assert!(t.render().contains("1.5"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "table row width")]
    fn mismatched_row_panics() {
        let mut t = MarkdownTable::new(&["a"]);
        t.add_row(&["1".into(), "2".into()]);
    }

    #[test]
    fn display_impl_matches_render() {
        let t = MarkdownTable::new(&["q"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
