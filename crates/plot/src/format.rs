//! Compact numeric formatting for tables and axis labels.

/// Formats a value with `sig` significant digits, choosing fixed or
/// scientific notation by magnitude.
///
/// ```
/// use sociolearn_plot::fmt_sig;
/// assert_eq!(fmt_sig(0.123456, 3), "0.123");
/// assert_eq!(fmt_sig(12345.6, 3), "1.23e4");
/// assert_eq!(fmt_sig(0.0, 3), "0");
/// ```
pub fn fmt_sig(x: f64, sig: usize) -> String {
    let sig = sig.max(1);
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    // Fixed notation only while every displayed digit is significant;
    // otherwise fall through to scientific.
    if (-4..(sig as i32).min(7)).contains(&mag) {
        let decimals = (sig as i32 - 1 - mag).max(0) as usize;
        let s = format!("{x:.decimals$}");
        trim_trailing_zeros(&s)
    } else {
        fmt_sci(x, sig)
    }
}

/// Formats a value in compact scientific notation with `sig`
/// significant digits (`1.23e4` rather than `1.23e+04`).
///
/// ```
/// use sociolearn_plot::fmt_sci;
/// assert_eq!(fmt_sci(12345.6, 3), "1.23e4");
/// assert_eq!(fmt_sci(-0.00012, 2), "-1.2e-4");
/// ```
pub fn fmt_sci(x: f64, sig: usize) -> String {
    let sig = sig.max(1);
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let s = format!("{:.*e}", sig - 1, x);
    // Trim redundant mantissa zeros ("1.00e7" -> "1e7") and a zero
    // exponent ("1e0" -> "1").
    let (mantissa, exponent) = s
        .split_once('e')
        .expect("e-notation always has an exponent");
    let mantissa = trim_trailing_zeros(mantissa);
    if exponent == "0" {
        mantissa
    } else {
        format!("{mantissa}e{exponent}")
    }
}

fn trim_trailing_zeros(s: &str) -> String {
    if s.contains('.') {
        let t = s.trim_end_matches('0').trim_end_matches('.');
        t.to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_range() {
        assert_eq!(fmt_sig(1.0, 3), "1");
        assert_eq!(fmt_sig(8.7659, 4), "8.766");
        assert_eq!(fmt_sig(-2.5, 2), "-2.5");
        assert_eq!(fmt_sig(0.001234, 2), "0.0012");
    }

    #[test]
    fn sci_range() {
        assert_eq!(fmt_sig(1.0e7, 3), "1e7");
        assert_eq!(fmt_sig(4.2e-7, 2), "4.2e-7");
    }

    #[test]
    fn non_finite() {
        assert_eq!(fmt_sig(f64::INFINITY, 3), "inf");
        assert_eq!(fmt_sig(f64::NAN, 3), "NaN");
    }

    #[test]
    fn zero_sig_clamped() {
        assert_eq!(fmt_sig(1.5, 0), "2");
    }

    #[test]
    fn sci_keeps_nonzero_exponent() {
        assert_eq!(fmt_sci(123.0, 3), "1.23e2");
        assert_eq!(fmt_sci(1.0, 3), "1");
    }
}
