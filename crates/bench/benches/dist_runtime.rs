//! Round-synchronous vs. batched vs. event-driven (epoch-quiesced and
//! fully-async, each on both the single-heap and sharded
//! calendar-queue schedulers) runtime cost at fleet scale, plus a
//! faithful reimplementation of the pre-refactor (allocating) round
//! as the baseline the allocation-free path is measured against.
//!
//! Besides the console output, a run writes machine-readable results
//! to `results/BENCH_dist.json` at the workspace root (mean ns/round
//! per runtime and N; the file is gitignored — the committed reference
//! is `results/BENCH_baseline.json`, which the `bench_gate` bin
//! compares a fresh report against in CI). Set `BENCH_DIST_JSON` to
//! redirect the report, or to `skip` to suppress it.

#![forbid(unsafe_code)]

use criterion::{BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sociolearn_bench::{bench_params, reward_stream};
use sociolearn_core::Params;
use sociolearn_dist::{
    DistConfig, EventRuntime, FaultPlan, MetricsRecorder, ProtocolRuntime, Runtime, SchedulerKind,
    StalenessBound, MAX_QUERY_RETRIES,
};

/// Options per fleet in every benchmark.
const M: usize = 4;
/// Fleet sizes under test.
const SIZES: &[usize] = &[1_000, 10_000, 100_000];
/// Rounds per iteration on the batched path (encoded in the bench id
/// so the JSON emitter can normalize back to ns/round).
const BATCH_ROUNDS: usize = 16;
/// Shard count for the sharded-calendar scheduler rows. Eight gives
/// the best single-core locality at N = 1e5 (each shard's node state
/// stays cache-resident through its window sweep) and exercises the
/// cross-shard mailboxes harder than the minimum of four.
const BENCH_SHARDS: usize = 8;

/// The seed (pre-refactor) `Runtime::round` hot path, reproduced
/// faithfully: per round it allocates a fresh `next` choice vector
/// and a fresh count vector, drops last round's, and consults the
/// resolved crash vector for every node *and every queried peer* even
/// when the fault plan schedules nothing (exactly as the seed did).
/// This is the baseline `results/BENCH_dist.json` compares the
/// allocation-free path against.
struct SeedAllocRuntime {
    params: Params,
    n: usize,
    rng: SmallRng,
    choices: Vec<Option<u32>>,
    crash_at: Vec<Option<u64>>,
    counts: Vec<u64>,
    round: u64,
}

impl SeedAllocRuntime {
    fn new(params: Params, n: usize, seed: u64) -> Self {
        let m = params.num_options();
        SeedAllocRuntime {
            params,
            n,
            rng: SmallRng::seed_from_u64(seed),
            choices: (0..n).map(|i| Some((i % m) as u32)).collect(),
            crash_at: vec![None; n],
            counts: vec![0; m],
            round: 0,
        }
    }

    fn alive_in(&self, node: usize, round: u64) -> bool {
        self.crash_at[node].is_none_or(|r| round < r)
    }

    fn round(&mut self, rewards: &[bool]) {
        let m = self.params.num_options();
        let n = self.n;
        let mu = self.params.mu();
        let drop_prob = 0.0f64;
        self.round += 1;
        let t = self.round;
        let prev = std::mem::take(&mut self.choices);
        let mut next: Vec<Option<u32>> = Vec::with_capacity(n);
        let mut counts = vec![0u64; m];
        for i in 0..n {
            if !self.alive_in(i, t) {
                next.push(None);
                continue;
            }
            let considered: u32 = if self.rng.gen_bool(mu) {
                self.rng.gen_range(0..m) as u32
            } else {
                let mut copied = None;
                for _ in 0..MAX_QUERY_RETRIES {
                    let mut peer = self.rng.gen_range(0..n - 1);
                    if peer >= i {
                        peer += 1;
                    }
                    if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                        continue;
                    }
                    if !self.alive_in(peer, t) {
                        continue;
                    }
                    let Some(option) = prev[peer] else { continue };
                    if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                        continue;
                    }
                    copied = Some(option);
                    break;
                }
                match copied {
                    Some(option) => option,
                    None => self.rng.gen_range(0..m) as u32,
                }
            };
            let adopt_p = self.params.adopt_probability(rewards[considered as usize]);
            if self.rng.gen_bool(adopt_p) {
                next.push(Some(considered));
                counts[considered as usize] += 1;
            } else {
                next.push(None);
            }
        }
        self.choices = next;
        self.counts = counts;
    }
}

fn dist_runtime_benches(c: &mut Criterion) {
    let rewards = reward_stream(M, 64, 11);
    let mut group = c.benchmark_group("dist_runtime");
    for &n in SIZES {
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("seed_alloc_round", n), &n, |b, &n| {
            let mut net = SeedAllocRuntime::new(bench_params(M), n, 3);
            let mut t = 0usize;
            b.iter(|| {
                net.round(&rewards[t % rewards.len()]);
                t += 1;
            });
        });

        group.bench_with_input(BenchmarkId::new("round_sync", n), &n, |b, &n| {
            let mut net = Runtime::new(DistConfig::new(bench_params(M), n), 3);
            let mut t = 0usize;
            b.iter(|| {
                net.round(&rewards[t % rewards.len()]);
                t += 1;
            });
        });

        // One batched iteration runs BATCH_ROUNDS rounds, so the
        // console elem/s stays comparable with the per-round benches.
        group.throughput(Throughput::Elements((n * BATCH_ROUNDS) as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("batched_x{BATCH_ROUNDS}"), n),
            &n,
            |b, &n| {
                let mut net = Runtime::new(DistConfig::new(bench_params(M), n), 3);
                let schedule: Vec<&[bool]> = (0..BATCH_ROUNDS)
                    .map(|t| rewards[t % rewards.len()].as_slice())
                    .collect();
                b.iter(|| net.run_batch(&schedule));
            },
        );
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("event_driven", n), &n, |b, &n| {
            let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3);
            let mut t = 0usize;
            b.iter(|| {
                net.tick(&rewards[t % rewards.len()]);
                t += 1;
            });
        });

        // The sharded calendar-queue scheduler on the same quiesced
        // deployment: same law, O(1) scheduling instead of the heap.
        group.bench_with_input(
            BenchmarkId::new(format!("event_sharded{BENCH_SHARDS}"), n),
            &n,
            |b, &n| {
                let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3)
                    .with_scheduler(SchedulerKind::ShardedCalendar {
                        shards: BENCH_SHARDS,
                    });
                let mut t = 0usize;
                b.iter(|| {
                    net.tick(&rewards[t % rewards.len()]);
                    t += 1;
                });
            },
        );

        // The multi-core execution path: the same sharded deployment
        // with a 4-window lookahead block and a 4-thread worker pool.
        // Lookahead K > 1 is a *different* (equally valid) trajectory
        // — messages defer to block boundaries — so this row is not
        // byte-comparable to `event_sharded8`, only cost-comparable.
        // On a multi-core host the pool fans the per-window node sweep
        // across cores; on a single-core host it measures the
        // synchronization overhead ceiling instead.
        group.bench_with_input(
            BenchmarkId::new(format!("event_sharded{BENCH_SHARDS}_look4_t4"), n),
            &n,
            |b, &n| {
                let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3)
                    .with_scheduler(SchedulerKind::ShardedCalendar {
                        shards: BENCH_SHARDS,
                    })
                    .with_lookahead(4)
                    .with_threads(4);
                let mut t = 0usize;
                b.iter(|| {
                    net.tick(&rewards[t % rewards.len()]);
                    t += 1;
                });
            },
        );

        // The same sharded deployment driven through the telemetry
        // observer hook with a live `MetricsRecorder` attached. The
        // sink sees every tick (per-shard loads included), so the
        // delta against the plain `event_sharded8` row is the whole
        // cost of observability — gated in the baseline to pin
        // "telemetry ≤ 2% of tick cost" (well inside the gate's
        // regression allowance).
        group.bench_with_input(
            BenchmarkId::new(format!("event_sharded{BENCH_SHARDS}_telemetry"), n),
            &n,
            |b, &n| {
                let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3)
                    .with_scheduler(SchedulerKind::ShardedCalendar {
                        shards: BENCH_SHARDS,
                    });
                let mut recorder = MetricsRecorder::new(64);
                let mut t = 0usize;
                b.iter(|| {
                    net.observed_round(&rewards[t % rewards.len()], &mut recorder);
                    t += 1;
                });
            },
        );

        // The same quiesced sharded deployment under continuous
        // membership pressure: a trickle rolling restart (batch 1,
        // period 2 — one node is out at any moment, for 2N rounds)
        // drives the membership-transition sweep and an online
        // node→shard rebalance on nearly every tick. This is the row
        // the bench gate watches for churn-path regressions.
        group.bench_with_input(
            BenchmarkId::new(format!("event_sharded{BENCH_SHARDS}_churn"), n),
            &n,
            |b, &n| {
                let plan = FaultPlan::none().rolling_restart(1, 2);
                let mut net =
                    EventRuntime::new(DistConfig::new(bench_params(M), n).with_faults(plan), 3)
                        .with_scheduler(SchedulerKind::ShardedCalendar {
                            shards: BENCH_SHARDS,
                        });
                let mut t = 0usize;
                b.iter(|| {
                    net.tick(&rewards[t % rewards.len()]);
                    t += 1;
                });
            },
        );

        // Fully-async overlapping epochs: one iteration advances the
        // scheduler through one epoch-period window — about one local
        // epoch per node on this clean network — so ns/iteration is
        // comparable to the per-round numbers above to within the
        // fleet's epoch drift.
        group.bench_with_input(BenchmarkId::new("event_async", n), &n, |b, &n| {
            let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3)
                .with_async_epochs(StalenessBound::Unbounded);
            let mut t = 0usize;
            b.iter(|| {
                net.tick(&rewards[t % rewards.len()]);
                t += 1;
            });
        });

        // Fully-async on the sharded calendar scheduler — the
        // headline row: the single `BinaryHeap` was the fully-async
        // hot path's bottleneck, and this is the same tick without it.
        group.bench_with_input(
            BenchmarkId::new(format!("event_async_sharded{BENCH_SHARDS}"), n),
            &n,
            |b, &n| {
                let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3)
                    .with_async_epochs(StalenessBound::Unbounded)
                    .with_scheduler(SchedulerKind::ShardedCalendar {
                        shards: BENCH_SHARDS,
                    });
                let mut t = 0usize;
                b.iter(|| {
                    net.tick(&rewards[t % rewards.len()]);
                    t += 1;
                });
            },
        );

        // Fully-async with lookahead blocks and the worker pool — the
        // multi-core headline row (see the quiesced `_look4_t4` note on
        // trajectory comparability).
        group.bench_with_input(
            BenchmarkId::new(format!("event_async_sharded{BENCH_SHARDS}_look4_t4"), n),
            &n,
            |b, &n| {
                let mut net = EventRuntime::new(DistConfig::new(bench_params(M), n), 3)
                    .with_async_epochs(StalenessBound::Unbounded)
                    .with_scheduler(SchedulerKind::ShardedCalendar {
                        shards: BENCH_SHARDS,
                    })
                    .with_lookahead(4)
                    .with_threads(4);
                let mut t = 0usize;
                b.iter(|| {
                    net.tick(&rewards[t % rewards.len()]);
                    t += 1;
                });
            },
        );
    }
    group.finish();
}

/// Normalizes `dist_runtime/<runtime>/<n>` measurements to ns/round
/// and writes the JSON report the CI perf-tracking step consumes.
fn emit_json(measurements: &[(String, f64)]) -> std::io::Result<()> {
    let path = match std::env::var("BENCH_DIST_JSON") {
        Ok(s) if s == "skip" => return Ok(()),
        Ok(s) => std::path::PathBuf::from(s),
        // Default: `results/BENCH_dist.json` at the workspace root
        // (two levels up from this crate's manifest).
        Err(_) => {
            let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop();
            p.pop();
            p.join("results").join("BENCH_dist.json")
        }
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut rows = Vec::new();
    for (id, mean_ns) in measurements {
        let mut parts = id.splitn(3, '/');
        let (Some("dist_runtime"), Some(runtime), Some(n)) =
            (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let rounds_per_iter = if runtime.starts_with("batched_x") {
            BATCH_ROUNDS as f64
        } else {
            1.0
        };
        rows.push(format!(
            "    {{ \"runtime\": \"{runtime}\", \"n\": {n}, \"ns_per_round\": {:.1} }}",
            mean_ns / rounds_per_iter
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"dist_runtime\",\n  \"unit\": \"ns_per_round\",\n  \
         \"batch_rounds\": {BATCH_ROUNDS},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    dist_runtime_benches(&mut criterion);
    if !criterion.is_test_mode() && !criterion.measurements().is_empty() {
        if let Err(e) = emit_json(criterion.measurements()) {
            eprintln!("failed to write BENCH_dist.json: {e}");
            std::process::exit(1);
        }
    }
}
