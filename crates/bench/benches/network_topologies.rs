//! Network-restricted dynamics cost per topology at large N —
//! the ROADMAP item beyond `graph_topologies` (which stops at
//! N = 1 000 and mostly measures graph *generation*): how much does a
//! neighbor-restricted step cost on a sparse ring, a hub-and-spoke
//! star, and a constant-degree expander when the population reaches
//! fleet scale?
//!
//! The complete graph is deliberately absent: its O(N²) edge list is
//! the scaling wall the sparse topologies exist to avoid.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_bench::{bench_params, reward_stream};
use sociolearn_core::GroupDynamics;
use sociolearn_graph::{topology, Graph};
use sociolearn_network::NetworkPopulation;

/// Options per population in every benchmark.
const M: usize = 2;
/// Population sizes under test.
const SIZES: &[usize] = &[10_000, 100_000];

/// The three ROADMAP topologies at size `n`: local mixing (ring),
/// maximal centralization (star), and fast mixing at constant degree
/// (a random 8-regular graph — an expander with high probability).
fn topologies(n: usize) -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(71);
    vec![
        ("ring_k2", topology::ring(n, 2)),
        ("star", topology::star(n)),
        ("expander_d8", topology::random_regular(n, 8, &mut rng)),
    ]
}

fn network_dynamics_scale(c: &mut Criterion) {
    let rewards = reward_stream(M, 64, 9);
    let params = bench_params(M);
    let mut group = c.benchmark_group("network_dynamics_scale");
    for &n in SIZES {
        group.throughput(Throughput::Elements(n as u64));
        for (label, graph) in topologies(n) {
            group.bench_with_input(BenchmarkId::new(label, n), &graph, |b, graph| {
                let mut pop = NetworkPopulation::new(params, graph.clone());
                let mut rng = SmallRng::seed_from_u64(5);
                let mut t = 0usize;
                b.iter(|| {
                    pop.step(&rewards[t % rewards.len()], &mut rng);
                    t += 1;
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, network_dynamics_scale);
criterion_main!(benches);
