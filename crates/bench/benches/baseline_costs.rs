//! Per-step cost of the social dynamics vs the baselines — the
//! computational side of the "low-memory, low-communication" claim:
//! the collective social step costs O(m) regardless of N, while an
//! N-agent bandit group pays O(N·m) and stores O(N·m) statistics.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_baselines::{Hedge, IndependentBanditGroup, ThompsonSampling, Ucb1};
use sociolearn_bench::{bench_params, reward_stream};
use sociolearn_core::{FinitePopulation, GroupDynamics};

const M: usize = 10;
const N: usize = 1_000;

fn run_dynamics<D: GroupDynamics>(c: &mut Criterion, group_name: &str, label: &str, mut d: D) {
    let rewards = reward_stream(M, 64, 11);
    let mut group = c.benchmark_group(group_name.to_string());
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut t = 0usize;
        b.iter(|| {
            d.step(&rewards[t % rewards.len()], &mut rng);
            t += 1;
        });
    });
    group.finish();
}

fn per_step_costs(c: &mut Criterion) {
    run_dynamics(
        c,
        "per_step_cost",
        "social_collective_N1000",
        FinitePopulation::new(bench_params(M), N),
    );
    run_dynamics(
        c,
        "per_step_cost",
        "hedge",
        Hedge::new(M, 0.1).expect("valid"),
    );
    run_dynamics(
        c,
        "per_step_cost",
        "ucb1_x1000",
        IndependentBanditGroup::new(N, || Ucb1::new(M).expect("valid")),
    );
    run_dynamics(
        c,
        "per_step_cost",
        "thompson_x1000",
        IndependentBanditGroup::new(N, || ThompsonSampling::new(M).expect("valid")),
    );
}

criterion_group!(benches, per_step_costs);
criterion_main!(benches);
