//! Sampling-primitive microbenches: alias table vs CDF inversion for
//! categorical draws, exact binomial/multinomial costs, and the
//! `FinitePopulation` step itself — the primitives whose costs set the
//! dynamics' step costs.
//!
//! The binomial group carries a faithful reimplementation of the old
//! vendored shim's waiting-time sampler at its worst point (n·q ≈
//! 5000, just under the threshold where the old shim switched to a
//! rounded normal) next to the exact BTPE path, so the O(n·q) → O(1)
//! change is measured rather than asserted.
//!
//! Besides the console output, a run writes machine-readable results
//! to `results/BENCH_samplers.json` at the workspace root (mean ns per
//! draw/step; gitignored — the committed reference rows live in
//! `results/BENCH_baseline.json`, which the `bench_gate` bin compares
//! a fresh report against in CI). Set `BENCH_SAMPLERS_JSON` to
//! redirect the report, or to `skip` to suppress it.

#![forbid(unsafe_code)]

use criterion::{BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sociolearn_core::{
    sample_binomial, sample_categorical, sample_multinomial, AliasTable, FinitePopulation,
    GroupDynamics, Params,
};

/// The old shim's worst waiting-time point: n·q = 5000.4, one ulp
/// below the cutoff where it silently switched to the rounded normal.
const CUTOFF_N: u64 = 16_668;
/// p for the cutoff rows.
const CUTOFF_P: f64 = 0.3;

/// The pre-BTPE vendored shim's "exact" path, reproduced faithfully:
/// geometric waiting times, O(n·q) expected RNG draws per sample. This
/// is the baseline the exact BTPE rows are measured against.
fn waiting_time_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let (q, flipped) = if p <= 0.5 {
        (p, false)
    } else {
        (1.0 - p, true)
    };
    let log_one_minus_q = (-q).ln_1p();
    let mut successes = 0u64;
    let mut trials = 0u64;
    loop {
        let u: f64 = rng.gen();
        let gap = (u.ln() / log_one_minus_q).floor() as u64 + 1;
        trials += gap;
        if trials > n {
            break;
        }
        successes += 1;
    }
    if flipped {
        n - successes
    } else {
        successes
    }
}

fn categorical(c: &mut Criterion) {
    let mut group = c.benchmark_group("categorical_draw");
    for &m in &[4usize, 64, 1024] {
        let weights: Vec<f64> = (1..=m).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("alias", m), &m, |b, _| {
            let table = AliasTable::new(&weights).expect("valid weights");
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| table.sample(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("cdf_inversion", m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| sample_categorical(&mut rng, &weights));
        });
    }
    group.finish();
}

fn binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_draw");
    for &n in &[100u64, 100_000, 100_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| sample_binomial(&mut rng, n, 0.3));
        });
    }
    // Head-to-head at the old shim's cutoff: the waiting-time path it
    // used below n·q = 5000 vs the exact BTPE path at the same point.
    group.bench_with_input(
        BenchmarkId::new("waiting_time_nq5000", CUTOFF_N),
        &CUTOFF_N,
        |b, &n| {
            let mut rng = SmallRng::seed_from_u64(5);
            b.iter(|| waiting_time_binomial(&mut rng, n, CUTOFF_P));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("exact_nq5000", CUTOFF_N),
        &CUTOFF_N,
        |b, &n| {
            let mut rng = SmallRng::seed_from_u64(5);
            b.iter(|| sample_binomial(&mut rng, n, CUTOFF_P));
        },
    );
    group.finish();
}

fn multinomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("multinomial_draw");
    for &m in &[4usize, 64, 1024] {
        let probs: Vec<f64> = vec![1.0 / m as f64; m];
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(4);
            let mut out = vec![0u64; m];
            b.iter(|| sample_multinomial(&mut rng, 1_000_000, &probs, &mut out));
        });
    }
    group.finish();
}

fn finite_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("finite_step");
    // N = 1e6 is squarely inside the regime the old shim approximated;
    // with exact BTPE the step is O(m) draws plus the SoA sweeps.
    for &n in &[100_000usize, 1_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = Params::with_all(4, 0.7, 0.3, 0.1).expect("valid params");
            let mut pop = FinitePopulation::new(params, n);
            let mut rng = SmallRng::seed_from_u64(6);
            let mut t = 0u64;
            b.iter(|| {
                let rewards = [t.is_multiple_of(2), t.is_multiple_of(3), true, false];
                pop.step(&rewards, &mut rng);
                t += 1;
            });
        });
    }
    group.finish();
}

/// The `(runtime, n)` rows `bench_gate` enforces (marked `"gated":
/// true` in the report regardless of `n`; everything else is
/// informational).
const GATED: &[(&str, u64)] = &[
    ("binomial_draw", 100_000),
    ("binomial_draw", 100_000_000),
    ("binomial_draw_exact_nq5000", CUTOFF_N),
    ("finite_step", 100_000),
    ("finite_step", 1_000_000),
];

/// Writes the JSON report the CI perf-tracking step consumes: one row
/// per measurement, id `group/name/n` flattened to `group_name` + `n`.
fn emit_json(measurements: &[(String, f64)]) -> std::io::Result<()> {
    let path = match std::env::var("BENCH_SAMPLERS_JSON") {
        Ok(s) if s == "skip" => return Ok(()),
        Ok(s) => std::path::PathBuf::from(s),
        Err(_) => {
            let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop();
            p.pop();
            p.join("results").join("BENCH_samplers.json")
        }
    };
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut rows = Vec::new();
    for (id, mean_ns) in measurements {
        let Some((prefix, n)) = id.rsplit_once('/') else {
            continue;
        };
        let runtime = prefix.replace('/', "_");
        let gated = GATED
            .iter()
            .any(|&(r, gn)| r == runtime && n.parse() == Ok(gn));
        let gated_field = if gated { ", \"gated\": true" } else { "" };
        rows.push(format!(
            "    {{ \"runtime\": \"{runtime}\", \"n\": {n}, \"ns_per_round\": {mean_ns:.1}{gated_field} }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"samplers\",\n  \"unit\": \"ns_per_draw\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    categorical(&mut criterion);
    binomial(&mut criterion);
    multinomial(&mut criterion);
    finite_step(&mut criterion);
    if !criterion.is_test_mode() && !criterion.measurements().is_empty() {
        if let Err(e) = emit_json(criterion.measurements()) {
            eprintln!("failed to write BENCH_samplers.json: {e}");
            std::process::exit(1);
        }
    }
}
