//! Sampling-primitive microbenches: alias table vs CDF inversion for
//! categorical draws, and exact binomial/multinomial costs — the
//! primitives whose costs set the dynamics' step costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_core::{sample_binomial, sample_categorical, sample_multinomial, AliasTable};

fn categorical(c: &mut Criterion) {
    let mut group = c.benchmark_group("categorical_draw");
    for &m in &[4usize, 64, 1024] {
        let weights: Vec<f64> = (1..=m).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("alias", m), &m, |b, _| {
            let table = AliasTable::new(&weights).expect("valid weights");
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| table.sample(&mut rng));
        });
        group.bench_with_input(BenchmarkId::new("cdf_inversion", m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| sample_categorical(&mut rng, &weights));
        });
    }
    group.finish();
}

fn binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_draw");
    for &n in &[100u64, 100_000, 100_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| sample_binomial(&mut rng, n, 0.3));
        });
    }
    group.finish();
}

fn multinomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("multinomial_draw");
    for &m in &[4usize, 64, 1024] {
        let probs: Vec<f64> = vec![1.0 / m as f64; m];
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = SmallRng::seed_from_u64(4);
            let mut out = vec![0u64; m];
            b.iter(|| sample_multinomial(&mut rng, 1_000_000, &probs, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, categorical, binomial, multinomial);
criterion_main!(benches);
