//! End-to-end passes over the code paths the reproduction experiments
//! exercise: a theorem-horizon regret run, a coupled finite/infinite
//! run, and one message-passing round — so `cargo bench` also times
//! the table-generation machinery itself.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_bench::bench_params;
use sociolearn_core::{BernoulliRewards, CoupledRun, FinitePopulation};
use sociolearn_dist::{DistConfig, Runtime};
use sociolearn_sim::{run_one, RunConfig};

fn regret_run(c: &mut Criterion) {
    let params = bench_params(10);
    let horizon = params.min_horizon();
    c.bench_function("e4_path_regret_run_N10k_Tstar", |b| {
        let env = BernoulliRewards::one_good(10, 0.9).expect("valid");
        let cfg = RunConfig::new(horizon);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_one(
                FinitePopulation::new(params, 10_000),
                env.clone(),
                &cfg,
                seed,
            )
            .tracker
            .average_regret()
        });
    });
}

fn coupling_run(c: &mut Criterion) {
    let params = bench_params(3);
    c.bench_function("e3_path_coupled_run_N100k_T10", |b| {
        let env = BernoulliRewards::linear(3, 0.9, 0.3).expect("valid");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut run = CoupledRun::new(params, 100_000);
            run.run(env.clone(), 10, &mut rng).max_deviation()
        });
    });
}

fn dist_round(c: &mut Criterion) {
    let params = bench_params(2);
    c.bench_function("e15_path_dist_round_N1024", |b| {
        let mut net = Runtime::new(DistConfig::new(params, 1024), 1);
        b.iter(|| net.round(&[true, false]));
    });
}

criterion_group!(benches, regret_run, coupling_run, dist_round);
criterion_main!(benches);
