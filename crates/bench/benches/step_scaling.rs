//! Per-step cost of each dynamics form — the table behind the
//! "collective form is O(m), per-agent form is O(N)" claim, and the
//! scalability story for the infinite dynamics in `m`.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_bench::{bench_params, reward_stream};
use sociolearn_core::{AgentPopulation, FinitePopulation, GroupDynamics, InfiniteDynamics};

fn finite_collective_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("finite_collective_step_vs_N");
    let rewards = reward_stream(10, 64, 1);
    for &n in &[100usize, 10_000, 1_000_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = bench_params(10);
            let mut pop = FinitePopulation::new(params, n);
            let mut rng = SmallRng::seed_from_u64(2);
            let mut t = 0usize;
            b.iter(|| {
                pop.step(&rewards[t % rewards.len()], &mut rng);
                t += 1;
            });
        });
    }
    group.finish();
}

fn agent_form_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_form_step_vs_N");
    let rewards = reward_stream(10, 64, 3);
    for &n in &[100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = bench_params(10);
            let mut pop = AgentPopulation::new(params, n);
            let mut rng = SmallRng::seed_from_u64(4);
            let mut t = 0usize;
            b.iter(|| {
                pop.step(&rewards[t % rewards.len()], &mut rng);
                t += 1;
            });
        });
    }
    group.finish();
}

fn infinite_vs_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("infinite_step_vs_m");
    for &m in &[2usize, 10, 100, 1_000] {
        let rewards = reward_stream(m, 64, 5);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let params = bench_params(m);
            let mut dynamics = InfiniteDynamics::new(params);
            let mut t = 0usize;
            b.iter(|| {
                dynamics.step_rewards(&rewards[t % rewards.len()]);
                t += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    finite_collective_vs_n,
    agent_form_vs_n,
    infinite_vs_m
);
criterion_main!(benches);
