//! Topology-generation and network-dynamics step costs backing the
//! E11 experiment's scalability notes.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_bench::{bench_params, reward_stream};
use sociolearn_core::GroupDynamics;
use sociolearn_graph::topology;
use sociolearn_network::NetworkPopulation;

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation_n1000");
    let n = 1_000;
    group.bench_function("ring_k2", |b| b.iter(|| topology::ring(n, 2)));
    group.bench_function("torus", |b| b.iter(|| topology::torus(25, 40)));
    group.bench_function("erdos_renyi", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| topology::erdos_renyi(n, 0.01, &mut rng))
    });
    group.bench_function("watts_strogatz", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| topology::watts_strogatz(n, 3, 0.1, &mut rng))
    });
    group.bench_function("barabasi_albert", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| topology::barabasi_albert(n, 3, &mut rng))
    });
    group.finish();
}

fn network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_dynamics_step_n1000");
    let rewards = reward_stream(2, 64, 4);
    let params = bench_params(2);
    for (label, graph) in [
        ("ring_k2", topology::ring(1_000, 2)),
        ("star", topology::star(1_000)),
        ("complete", topology::complete(1_000)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &graph, |b, graph| {
            let mut pop = NetworkPopulation::new(params, graph.clone());
            let mut rng = SmallRng::seed_from_u64(5);
            let mut t = 0usize;
            b.iter(|| {
                pop.step(&rewards[t % rewards.len()], &mut rng);
                t += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, generation, network_step);
criterion_main!(benches);
