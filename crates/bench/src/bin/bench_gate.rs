//! The CI perf-regression gate: compares fresh bench reports
//! (`BENCH_dist.json` from `cargo bench --bench dist_runtime`,
//! `BENCH_samplers.json` from `--bench samplers`) against the
//! committed reference `results/BENCH_baseline.json` and exits
//! non-zero if any gated row regressed by more than the threshold.
//!
//! ```text
//! cargo run -p sociolearn-bench --bin bench_gate -- [FRESH [BASELINE [FRESH2...]]]
//! ```
//!
//! Defaults: `FRESH = results/BENCH_dist.json`, `BASELINE =
//! results/BENCH_baseline.json`, both relative to the workspace root;
//! any further arguments are additional fresh reports merged into the
//! comparison. A row is gated when its baseline entry carries
//! `"gated": true` (the sampler-bound rows), or — for rows without the
//! flag — when it sits at `N = 100_000` (the dist-runtime convention:
//! smaller fleets are too noisy per-round to gate on). Only runtimes
//! present in the baseline can gate; a new runtime in a fresh report
//! is listed as ungated until the baseline is refreshed.
//! `BENCH_GATE_THRESHOLD` overrides the default 20% regression
//! allowance (e.g. `0.5` for 50%).
//!
//! To refresh the baseline after an intentional perf change, run the
//! bench on a quiet machine and copy the report over the baseline:
//! see README § "Benchmarks and the perf-regression gate".

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The fleet size the gate enforces at.
const GATE_N: u64 = 100_000;

/// Maximum tolerated slowdown before the gate fails (20%).
const DEFAULT_THRESHOLD: f64 = 0.20;

/// One `{ "runtime": ..., "n": ..., "ns_per_round": ... }` row of a
/// bench report. `gated` mirrors the optional `"gated"` JSON field:
/// `Some(true)` forces the row into the gate at any `n`, absent falls
/// back to the `n == GATE_N` convention.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    runtime: String,
    n: u64,
    ns_per_round: f64,
    gated: Option<bool>,
}

/// Extracts the string value of `"key": "..."` from one JSON object
/// body. Purpose-built for the flat rows `dist_runtime` emits — not a
/// general JSON parser (the workspace is offline; no serde).
fn field_str(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value of `"key": <number>` from one JSON
/// object body.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the boolean value of `"key": true|false` from one JSON
/// object body.
fn field_bool(obj: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parses every benchmark row out of a bench report.
///
/// # Errors
///
/// A fragment that names a runtime but lacks a parseable `n` or
/// `ns_per_round` is a **hard error naming the row**, not a skip — a
/// silently dropped row would also silently leave the gate, and a
/// mangled baseline must fail loudly rather than pass vacuously.
fn parse_rows(json: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    // Rows are the only objects in the report carrying a "runtime"
    // key, so splitting on '{' and probing each fragment is enough.
    for obj in json.split('{').skip(1) {
        let Some(runtime) = field_str(obj, "runtime") else {
            continue;
        };
        let (Some(n), Some(ns)) = (field_num(obj, "n"), field_num(obj, "ns_per_round")) else {
            return Err(format!(
                "row {runtime:?} is missing a parseable \"n\" or \"ns_per_round\" value"
            ));
        };
        rows.push(Row {
            runtime,
            n: n as u64,
            ns_per_round: ns,
            gated: field_bool(obj, "gated"),
        });
    }
    Ok(rows)
}

fn load(path: &Path) -> Result<Vec<Row>, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let rows = parse_rows(&json).map_err(|e| format!("{}: {e}", path.display()))?;
    if rows.is_empty() {
        return Err(format!("no benchmark rows found in {}", path.display()));
    }
    Ok(rows)
}

/// Workspace-root-relative default path.
fn root_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("results").join(name)
}

/// The gate verdict for one baseline row, against the fresh report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Ok,
    Improved,
    Regressed,
    MissingInFresh,
    NotGated,
    /// The gated baseline value is zero or non-finite: a ratio against
    /// it is meaningless (0 would read "infinitely regressed" for any
    /// real fresh value), so the gate fails naming the row instead.
    InvalidBaseline,
    /// The gated fresh value is zero or non-finite — a broken bench
    /// run must not slip through as an "improvement".
    InvalidFresh,
}

/// A usable ns/round measurement: finite and strictly positive.
fn valid_ns(ns: f64) -> bool {
    ns.is_finite() && ns > 0.0
}

/// Compares fresh against baseline, returning one `(runtime, n,
/// baseline_ns, fresh_ns, verdict)` line per (runtime, n) pair seen in
/// either report. Only gated baseline rows (explicit `"gated": true`,
/// or `n == gate_n` when the flag is absent) can fail the gate.
fn compare(
    baseline: &[Row],
    fresh: &[Row],
    gate_n: u64,
    threshold: f64,
) -> Vec<(String, u64, f64, f64, Verdict)> {
    let mut out = Vec::new();
    for b in baseline {
        let gate = b.gated.unwrap_or(b.n == gate_n);
        let fresh_row = fresh.iter().find(|f| f.runtime == b.runtime && f.n == b.n);
        let verdict = match fresh_row {
            _ if gate && !valid_ns(b.ns_per_round) => Verdict::InvalidBaseline,
            None if gate => Verdict::MissingInFresh,
            None => Verdict::NotGated,
            Some(f) if gate && !valid_ns(f.ns_per_round) => Verdict::InvalidFresh,
            Some(f) => {
                let ratio = f.ns_per_round / b.ns_per_round;
                if !gate {
                    Verdict::NotGated
                } else if ratio > 1.0 + threshold {
                    Verdict::Regressed
                } else if ratio < 1.0 - threshold {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                }
            }
        };
        out.push((
            b.runtime.clone(),
            b.n,
            b.ns_per_round,
            fresh_row.map_or(f64::NAN, |f| f.ns_per_round),
            verdict,
        ));
    }
    // Runtimes measured fresh but absent from the baseline are shown
    // (ungated) so a stale baseline is visible, not silent.
    for f in fresh {
        if !baseline
            .iter()
            .any(|b| b.runtime == f.runtime && b.n == f.n)
        {
            out.push((
                f.runtime.clone(),
                f.n,
                f64::NAN,
                f.ns_per_round,
                Verdict::NotGated,
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positional args: [FRESH [BASELINE [FRESH2...]]] — the first and
    // any third-and-later are fresh reports, merged row-wise.
    let mut fresh_paths: Vec<PathBuf> = vec![args
        .first()
        .map_or_else(|| root_path("BENCH_dist.json"), PathBuf::from)];
    fresh_paths.extend(args.iter().skip(2).map(PathBuf::from));
    let baseline_path = args
        .get(1)
        .map_or_else(|| root_path("BENCH_baseline.json"), PathBuf::from);
    let threshold = std::env::var("BENCH_GATE_THRESHOLD")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_THRESHOLD);

    let baseline = match load(&baseline_path) {
        Ok(b) => b,
        Err(err) => {
            eprintln!("bench_gate: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut fresh = Vec::new();
    for path in &fresh_paths {
        match load(path) {
            Ok(rows) => fresh.extend(rows),
            Err(err) => {
                eprintln!("bench_gate: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let fresh_list = fresh_paths
        .iter()
        .map(|p| p.display().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "bench_gate: fresh {} vs baseline {} (gate: > {:.0}% slower on gated rows)",
        fresh_list,
        baseline_path.display(),
        threshold * 100.0,
    );
    println!(
        "{:<18} {:>8} {:>14} {:>14} {:>8}  verdict",
        "runtime", "n", "baseline ns", "fresh ns", "ratio"
    );

    let report = compare(&baseline, &fresh, GATE_N, threshold);
    let mut failures = 0usize;
    for (runtime, n, base_ns, fresh_ns, verdict) in &report {
        let ratio = fresh_ns / base_ns;
        let tag = match verdict {
            Verdict::Ok => "ok",
            Verdict::Improved => "ok (faster)",
            Verdict::Regressed => {
                failures += 1;
                "REGRESSED"
            }
            Verdict::MissingInFresh => {
                failures += 1;
                "MISSING in fresh report"
            }
            Verdict::InvalidBaseline => {
                failures += 1;
                "INVALID baseline (zero or non-finite ns)"
            }
            Verdict::InvalidFresh => {
                failures += 1;
                "INVALID fresh value (zero or non-finite ns)"
            }
            Verdict::NotGated => "not gated",
        };
        println!(
            "{runtime:<18} {n:>8} {base_ns:>14.1} {fresh_ns:>14.1} {:>8}  {tag}",
            if ratio.is_nan() {
                "-".to_string()
            } else {
                format!("{ratio:.2}x")
            },
        );
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} gated row(s) failed. If the slowdown is intentional, \
             refresh results/BENCH_baseline.json (see README)."
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: all gated runtimes within {:.0}%",
        threshold * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(runtime: &str, n: u64, ns: f64) -> Row {
        Row {
            runtime: runtime.into(),
            n,
            ns_per_round: ns,
            gated: None,
        }
    }

    fn gated_row(runtime: &str, n: u64, ns: f64) -> Row {
        Row {
            gated: Some(true),
            ..row(runtime, n, ns)
        }
    }

    #[test]
    fn parses_the_emitted_report_shape() {
        let json = r#"{
  "bench": "dist_runtime",
  "unit": "ns_per_round",
  "batch_rounds": 16,
  "results": [
    { "runtime": "round_sync", "n": 1000, "ns_per_round": 23558.2 },
    { "runtime": "event_async", "n": 100000, "ns_per_round": 254300760.0 }
  ]
}
"#;
        let rows = parse_rows(json).expect("well-formed report");
        assert_eq!(
            rows,
            vec![
                row("round_sync", 1000, 23558.2),
                row("event_async", 100_000, 254_300_760.0),
            ]
        );
    }

    #[test]
    fn row_missing_its_ns_value_is_a_named_hard_error() {
        // A gated row whose measurement vanished must not be silently
        // dropped from the comparison — that would pass the gate
        // without gating anything.
        let json = r#"{
  "results": [
    { "runtime": "event_sharded8", "n": 100000 },
    { "runtime": "round_sync", "n": 1000, "ns_per_round": 23558.2 }
  ]
}
"#;
        let err = parse_rows(json).expect_err("must fail");
        assert!(
            err.contains("event_sharded8") && err.contains("ns_per_round"),
            "error must name the broken row, got {err:?}"
        );
        let unparseable = r#"{ "runtime": "event_async", "n": 100000, "ns_per_round": "fast" }"#;
        let err = parse_rows(unparseable).expect_err("must fail");
        assert!(err.contains("event_async"), "got {err:?}");
    }

    #[test]
    fn zero_or_nonfinite_gated_baseline_fails_with_the_row_named() {
        let baseline = vec![
            gated_row("zeroed", GATE_N, 0.0),
            gated_row("nan_row", GATE_N, f64::NAN),
            gated_row("fine", GATE_N, 100.0),
        ];
        let fresh = vec![
            row("zeroed", GATE_N, 100.0),
            row("nan_row", GATE_N, 100.0),
            row("fine", GATE_N, 100.0),
        ];
        let report = compare(&baseline, &fresh, GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::InvalidBaseline);
        assert_eq!(report[0].0, "zeroed");
        assert_eq!(report[1].4, Verdict::InvalidBaseline);
        assert_eq!(report[2].4, Verdict::Ok);
        // A zero baseline with no fresh row is still the baseline's
        // fault — named as invalid, not "missing".
        let report = compare(&[gated_row("zeroed", GATE_N, 0.0)], &[], GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::InvalidBaseline);
    }

    #[test]
    fn zero_fresh_value_on_a_gated_row_is_not_an_improvement() {
        let baseline = vec![gated_row("a", GATE_N, 100.0)];
        let fresh = vec![row("a", GATE_N, 0.0)];
        let report = compare(&baseline, &fresh, GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::InvalidFresh);
    }

    #[test]
    fn regression_beyond_threshold_fails_only_at_gate_n() {
        let baseline = vec![row("a", GATE_N, 100.0), row("a", 1000, 100.0)];
        let fresh = vec![row("a", GATE_N, 130.0), row("a", 1000, 500.0)];
        let report = compare(&baseline, &fresh, GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::Regressed, "30% over at gate N");
        assert_eq!(report[1].4, Verdict::NotGated, "small N is informational");
    }

    #[test]
    fn within_threshold_and_improvements_pass() {
        let baseline = vec![row("a", GATE_N, 100.0), row("b", GATE_N, 100.0)];
        let fresh = vec![row("a", GATE_N, 119.0), row("b", GATE_N, 50.0)];
        let report = compare(&baseline, &fresh, GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::Ok);
        assert_eq!(report[1].4, Verdict::Improved);
    }

    #[test]
    fn missing_gated_runtime_fails_and_new_runtime_is_ungated() {
        let baseline = vec![row("gone", GATE_N, 100.0)];
        let fresh = vec![row("new", GATE_N, 100.0)];
        let report = compare(&baseline, &fresh, GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::MissingInFresh);
        assert_eq!(report[1].4, Verdict::NotGated);
        assert_eq!(report[1].0, "new");
    }

    #[test]
    fn gated_flag_parses_and_gates_at_any_n() {
        let json = r#"{
  "results": [
    { "runtime": "binomial_draw_exact_nq5000", "n": 16668, "ns_per_round": 50.0, "gated": true },
    { "runtime": "finite_step", "n": 1000000, "ns_per_round": 900.0, "gated": true },
    { "runtime": "categorical_draw_alias", "n": 4, "ns_per_round": 5.0 }
  ]
}
"#;
        let rows = parse_rows(json).expect("well-formed report");
        assert_eq!(
            rows,
            vec![
                gated_row("binomial_draw_exact_nq5000", 16_668, 50.0),
                gated_row("finite_step", 1_000_000, 900.0),
                row("categorical_draw_alias", 4, 5.0),
            ]
        );

        // A gated row regresses at an n far from GATE_N; an ungated
        // row at the same n stays informational.
        let baseline = vec![gated_row("a", 16_668, 100.0), row("b", 16_668, 100.0)];
        let fresh = vec![row("a", 16_668, 130.0), row("b", 16_668, 500.0)];
        let report = compare(&baseline, &fresh, GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::Regressed, "gated row must gate");
        assert_eq!(report[1].4, Verdict::NotGated, "flagless off-GATE_N row");
    }

    #[test]
    fn gated_row_missing_in_fresh_fails() {
        let baseline = vec![gated_row("a", 16_668, 100.0)];
        let report = compare(&baseline, &[], GATE_N, 0.2);
        assert_eq!(report[0].4, Verdict::MissingInFresh);
    }

    #[test]
    fn field_parsers_tolerate_whitespace_and_sign() {
        let obj = r#" "runtime" : "x" , "n":  100000, "ns_per_round": -1.5e3 }"#;
        assert_eq!(field_str(obj, "runtime").as_deref(), Some("x"));
        assert_eq!(field_num(obj, "n"), Some(100_000.0));
        assert_eq!(field_num(obj, "ns_per_round"), Some(-1.5e3));
    }
}
