//! # sociolearn-bench
//!
//! Shared fixtures for the Criterion benchmark harness. The benches
//! regenerate the repository's *performance* tables (per-step cost
//! scaling in `N` and `m`, sampler costs, baseline comparisons, graph
//! generation, and quick passes over the experiment code paths),
//! complementing the statistical reproduction suite in
//! `sociolearn-experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_core::{BernoulliRewards, Params, RewardModel};

/// The default parameter point used across benches: `m` options at
/// `beta = 0.6` with the theorem-regime `mu`.
pub fn bench_params(m: usize) -> Params {
    Params::new(m, 0.6).expect("valid bench parameters")
}

/// A deterministic pre-drawn reward stream (`steps × m`), so benches
/// measure dynamics cost, not environment cost.
pub fn reward_stream(m: usize, steps: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut env = BernoulliRewards::linear(m, 0.9, 0.1).expect("valid qualities");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(steps);
    let mut buf = vec![false; m];
    for t in 0..steps {
        env.sample(t as u64, &mut rng, &mut buf);
        out.push(buf.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(reward_stream(3, 10, 7), reward_stream(3, 10, 7));
        assert_ne!(reward_stream(3, 10, 7), reward_stream(3, 10, 8));
        assert_eq!(bench_params(4).num_options(), 4);
    }
}
