//! A persistent worker pool for repeated parallel batches.
//!
//! [`parallel_map`](crate::parallel_map) spawns a scoped thread team
//! per call, which is the right shape for one-shot experiment fan-out
//! but wasteful for a hot loop that fans out thousands of times per
//! second (the sharded calendar engine dispatches its shard lanes once
//! per lookahead block). [`WorkerPool`] keeps the same stealing-cursor
//! work distribution but parks a fixed team of named threads on a
//! condvar between batches, so a batch submission costs a wakeup
//! instead of `threads` thread spawns.
//!
//! The price of persistence is `'static` bounds: jobs outlive the
//! submitting stack frame from the worker threads' point of view, so
//! items, results, and the closure must own their data (`Arc` shared
//! context is the usual pattern). Callers that need to borrow locals
//! should keep using [`parallel_map`](crate::parallel_map).
//!
//! Determinism: like `parallel_map`, the pool only changes *where*
//! each item is computed, never the result — `map` returns results in
//! input order and the closure receives owned items, so a pure
//! closure yields byte-identical output for any thread count.
//!
//! # Example
//!
//! ```
//! use sociolearn_sim::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map((0u64..100).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! // The same pool serves any number of batches, of any type.
//! let labels = pool.map(vec!["a", "b"], |s| s.to_uppercase());
//! assert_eq!(labels, ["A", "B"]);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Work-stealing granularity: how many chunks each thread's fair
/// share is split into, so fast threads can steal from slow ones
/// (mirrors `parallel_map`).
const CHUNKS_PER_THREAD: usize = 8;

/// A type-erased in-flight batch: workers claim and run chunks until
/// the cursor is exhausted.
trait BatchRun: Send + Sync {
    /// Claims and runs one chunk; `false` when no chunks remain.
    fn run_next(&self) -> bool;
    /// Whether every claimed chunk has also finished.
    fn is_done(&self) -> bool;
}

/// One contiguous run of items, handed to whichever thread claims it.
struct ChunkCell<T, R> {
    input: Vec<T>,
    output: Vec<R>,
}

/// A concrete batch: the chunk cells, the stealing cursor, and the
/// mapping closure.
struct Batch<T, R, F> {
    cursor: AtomicUsize,
    /// Chunks not yet *finished* (the cursor tracks chunks *claimed*).
    remaining: AtomicUsize,
    cells: Vec<Mutex<ChunkCell<T, R>>>,
    /// First panic payload out of the closure, resumed at the
    /// submitter once the batch settles.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    f: F,
}

impl<T, R, F> BatchRun for Batch<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    fn run_next(&self) -> bool {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(cell) = self.cells.get(idx) else {
            return false;
        };
        let input = {
            let mut guard = cell.lock().expect("pool chunk poisoned");
            std::mem::take(&mut guard.input)
        };
        // The closure runs outside the cell lock so a panicking job
        // cannot poison the cell; the payload is parked and resumed
        // on the submitting thread after the batch settles.
        match catch_unwind(AssertUnwindSafe(|| {
            input.into_iter().map(&self.f).collect::<Vec<R>>()
        })) {
            Ok(out) => cell.lock().expect("pool chunk poisoned").output = out,
            Err(payload) => {
                let mut slot = self.panic.lock().expect("pool panic slot poisoned");
                slot.get_or_insert(payload);
            }
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        true
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// Shared pool state: the published batch and its epoch, guarded by
/// one mutex with two condvars (work arrival, batch completion).
struct PoolState {
    batch: Option<Arc<dyn BatchRun>>,
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    batch_done: Condvar,
}

/// A fixed team of persistent worker threads executing batches of
/// independent items with a stealing cursor. See the module docs
/// above for the contrast with `parallel_map`.
///
/// `map` serializes internally: concurrent submissions from clones of
/// an `Arc<WorkerPool>` queue up rather than interleave. Jobs must
/// not submit to the same pool they run on (the pool is not
/// re-entrant); dropping the pool joins every worker.
pub struct WorkerPool {
    threads: usize,
    shared: Arc<PoolShared>,
    /// Serializes submitters: one batch in flight at a time.
    submit_lock: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(b) = &state.batch {
                        seen_epoch = state.epoch;
                        break Arc::clone(b);
                    }
                }
                state = shared.work_ready.wait(state).expect("pool state poisoned");
            }
        };
        while batch.run_next() {}
        // Re-acquiring the state lock before notifying pairs with the
        // submitter's check-then-wait, so the completion wakeup cannot
        // be lost. The last chunk's finisher always reaches this point
        // after its final (empty) `run_next`.
        let _state = shared.state.lock().expect("pool state poisoned");
        if batch.is_done() {
            shared.batch_done.notify_all();
        }
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` total execution threads. The
    /// submitting thread participates in every batch, so `threads - 1`
    /// workers are spawned; `threads <= 1` spawns none and `map` runs
    /// inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sociolearn-pool-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            threads,
            shared,
            submit_lock: Mutex::new(()),
            workers,
        }
    }

    /// Total execution threads (workers plus the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel across the pool, and
    /// returns the results in input order. The submitting thread
    /// works alongside the pool's threads and blocks until the batch
    /// settles.
    ///
    /// # Panics
    ///
    /// If `f` panics on any item, the first payload is resumed on the
    /// submitting thread after the rest of the batch settles; the
    /// pool itself stays usable.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n <= 1 || self.threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Poison-tolerant: the guard carries no data, it only
        // serializes submitters, and an unwinding submitter (panic
        // resumed below) must not wedge the pool for later batches.
        let serial = self
            .submit_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());

        let chunk_len = n.div_ceil(self.threads * CHUNKS_PER_THREAD).max(1);
        let mut items = items.into_iter();
        let mut cells = Vec::with_capacity(n.div_ceil(chunk_len));
        loop {
            let input: Vec<T> = items.by_ref().take(chunk_len).collect();
            if input.is_empty() {
                break;
            }
            cells.push(Mutex::new(ChunkCell {
                input,
                output: Vec::new(),
            }));
        }
        let batch = Arc::new(Batch {
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(cells.len()),
            cells,
            panic: Mutex::new(None),
            f,
        });

        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.epoch += 1;
            state.batch = Some(Arc::clone(&batch) as Arc<dyn BatchRun>);
            self.shared.work_ready.notify_all();
        }
        while batch.run_next() {}
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            while !batch.is_done() {
                state = self
                    .shared
                    .batch_done
                    .wait(state)
                    .expect("pool state poisoned");
            }
            state.batch = None;
        }

        drop(serial);
        if let Some(payload) = batch.panic.lock().expect("pool panic slot poisoned").take() {
            resume_unwind(payload);
        }
        let mut out = Vec::with_capacity(n);
        for cell in &batch.cells {
            out.append(&mut cell.lock().expect("pool chunk poisoned").output);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map((0u64..1000).collect(), |x| x * 2);
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn heterogeneous_load_keeps_order() {
        let pool = WorkerPool::new(4);
        // Early items are much slower than late ones, forcing steals.
        let out = pool.map((0usize..200).collect(), |i| {
            let spin = if i < 8 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn pool_is_reusable_across_batches_and_types() {
        let pool = WorkerPool::new(3);
        for round in 0u64..20 {
            let out = pool.map((0u64..64).collect(), move |x| x + round);
            assert_eq!(out[5], 5 + round);
        }
        let strings = pool.map(vec![1, 2, 3], |x: i32| format!("#{x}"));
        assert_eq!(strings, ["#1", "#2", "#3"]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.workers.is_empty());
        assert_eq!(pool.map(vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0u32..100).collect(), |x| {
                assert!(x != 37, "boom on 37");
                x
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .unwrap_or_default()
            });
        assert!(msg.contains("boom on 37"), "original payload: {msg}");
        // The pool keeps working after a poisoned batch.
        assert_eq!(pool.map(vec![1u32, 2], |x| x * 10), vec![10, 20]);
    }

    #[test]
    fn concurrent_submitters_serialize() {
        let pool = Arc::new(WorkerPool::new(4));
        let mut handles = Vec::new();
        for t in 0u64..4 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                p.map((0u64..256).collect(), move |x| x * (t + 1))
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let out = h.join().expect("submitter thread");
            assert_eq!(out[3], 3 * (t as u64 + 1));
        }
    }

    #[test]
    fn results_match_serial_for_any_thread_count() {
        let serial: Vec<u64> = (0u64..500).map(|x| x.wrapping_mul(x) ^ 0xabcd).collect();
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.map((0u64..500).collect(), |x| x.wrapping_mul(x) ^ 0xabcd);
            assert_eq!(out, serial, "threads={threads}");
        }
    }
}
