//! Single-replication execution.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sociolearn_core::{GroupDynamics, History, RegretCurve, RegretTracker, RewardModel};

/// Configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Number of steps `T`.
    pub horizon: u64,
    /// Stride for storing distribution snapshots and regret-curve
    /// points (1 = every step).
    pub record_stride: u64,
}

impl RunConfig {
    /// A config with the given horizon, recording ~200 evenly spaced
    /// points (at least every step).
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(horizon: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        RunConfig {
            horizon,
            record_stride: (horizon / 200).max(1),
        }
    }

    /// Overrides the record stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.record_stride = stride;
        self
    }
}

/// Everything measured in one replication.
#[derive(Debug, Clone)]
pub struct Replication {
    /// The seed the run used.
    pub seed: u64,
    /// Whole-run regret accounting.
    pub tracker: RegretTracker,
    /// `Regret(T)` at the recorded horizons.
    pub curve: RegretCurve,
    /// Share of the best option at the recorded horizons.
    pub best_share_curve: RegretCurve,
    /// Distribution snapshots.
    pub history: History,
}

/// Runs `dynamics` against `env` for `cfg.horizon` steps from the
/// given seed.
///
/// The regret benchmark `(η₁, best index)` is taken from the
/// environment *at the start* (the paper's setting has fixed
/// qualities; for drifting environments the share curves are the
/// meaningful output and the fixed benchmark is documented as
/// start-time). Environments with unknown qualities (traces) get a
/// benchmark of the realized best-option frequency — callers that
/// care should compute their own benchmark.
///
/// # Panics
///
/// Panics if the dynamics and environment disagree on the number of
/// options.
pub fn run_one<D, M>(mut dynamics: D, mut env: M, cfg: &RunConfig, seed: u64) -> Replication
where
    D: GroupDynamics,
    M: RewardModel,
{
    let m = dynamics.num_options();
    assert_eq!(
        m,
        env.num_options(),
        "dynamics/environment option count mismatch"
    );
    let mut rng = SmallRng::seed_from_u64(seed);

    let best_index = env.best_index().unwrap_or(0);
    let best_quality = env.best_quality().unwrap_or(1.0).clamp(0.0, 1.0);
    let mut tracker = RegretTracker::new(best_quality, best_index);
    let mut curve = RegretCurve::new();
    let mut best_share_curve = RegretCurve::new();
    let mut history = History::new(cfg.record_stride);

    let mut before = vec![0.0; m];
    let mut rewards = vec![false; m];
    dynamics.write_distribution(&mut before);
    history.record(0, &before);

    for t in 1..=cfg.horizon {
        dynamics.write_distribution(&mut before);
        env.sample(t, &mut rng, &mut rewards);
        dynamics.step(&rewards, &mut rng);
        let qualities = env.qualities();
        tracker.record(&before, &rewards, qualities.as_deref());
        if t % cfg.record_stride == 0 || t == cfg.horizon {
            curve.push(t, tracker.average_regret());
            best_share_curve.push(t, tracker.average_best_share());
            dynamics.write_distribution(&mut before);
            history.record(t, &before);
        }
    }

    Replication {
        seed,
        tracker,
        curve,
        best_share_curve,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sociolearn_core::{BernoulliRewards, FinitePopulation, InfiniteDynamics, Params};

    fn params() -> Params {
        Params::new(3, 0.6).unwrap()
    }

    #[test]
    fn run_produces_consistent_measurements() {
        let cfg = RunConfig::new(100).with_stride(10);
        let rep = run_one(
            FinitePopulation::new(params(), 500),
            BernoulliRewards::one_good(3, 0.9).unwrap(),
            &cfg,
            7,
        );
        assert_eq!(rep.tracker.steps(), 100);
        assert_eq!(rep.curve.horizons.last(), Some(&100));
        assert_eq!(rep.curve.len(), rep.best_share_curve.len());
        // history: t=0 plus every 10th step.
        assert_eq!(rep.history.times().first(), Some(&0));
        assert_eq!(rep.history.times().last(), Some(&100));
        assert_eq!(rep.seed, 7);
    }

    #[test]
    fn same_seed_same_result() {
        let cfg = RunConfig::new(50);
        let a = run_one(
            FinitePopulation::new(params(), 200),
            BernoulliRewards::one_good(3, 0.8).unwrap(),
            &cfg,
            3,
        );
        let b = run_one(
            FinitePopulation::new(params(), 200),
            BernoulliRewards::one_good(3, 0.8).unwrap(),
            &cfg,
            3,
        );
        assert_eq!(a.tracker.average_regret(), b.tracker.average_regret());
        assert_eq!(a.curve.values, b.curve.values);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RunConfig::new(50);
        let a = run_one(
            FinitePopulation::new(params(), 200),
            BernoulliRewards::one_good(3, 0.8).unwrap(),
            &cfg,
            1,
        );
        let b = run_one(
            FinitePopulation::new(params(), 200),
            BernoulliRewards::one_good(3, 0.8).unwrap(),
            &cfg,
            2,
        );
        assert_ne!(a.tracker.average_regret(), b.tracker.average_regret());
    }

    #[test]
    fn infinite_dynamics_regret_decays() {
        let p = params();
        let long = 40 * p.min_horizon();
        let cfg = RunConfig::new(long);
        let rep = run_one(
            InfiniteDynamics::new(p),
            BernoulliRewards::one_good(3, 0.9).unwrap(),
            &cfg,
            11,
        );
        // Theorem 4.3 with slack for one seed at modest T.
        assert!(
            rep.tracker.average_regret() <= p.regret_bound_infinite(),
            "regret {} above 3 delta {}",
            rep.tracker.average_regret(),
            p.regret_bound_infinite()
        );
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn option_count_mismatch_rejected() {
        let cfg = RunConfig::new(10);
        run_one(
            FinitePopulation::new(params(), 100),
            BernoulliRewards::one_good(5, 0.9).unwrap(),
            &cfg,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        RunConfig::new(0);
    }
}
