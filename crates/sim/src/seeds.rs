//! Deterministic seed derivation.

/// SplitMix64 — the standard 64-bit mixing generator, used here to
/// derive statistically independent child seeds from a root seed.
///
/// # Example
///
/// ```
/// use sociolearn_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A tree of derived seeds: `child(i)` gives a stable, well-mixed seed
/// for the `i`-th replication/branch; nested trees give hierarchical
/// derivation (experiment → sweep point → replication).
///
/// # Example
///
/// ```
/// use sociolearn_sim::SeedTree;
///
/// let root = SeedTree::new(7);
/// assert_ne!(root.child(0), root.child(1));
/// assert_eq!(root.child(3), SeedTree::new(7).child(3)); // stable
/// let sub = root.subtree(2);
/// assert_ne!(sub.child(0), root.child(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedTree { root: seed }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The `i`-th derived seed.
    pub fn child(&self, i: u64) -> u64 {
        let mut g = SplitMix64::new(self.root ^ i.wrapping_mul(0xA24B_AED4_963E_E407));
        g.next_u64()
    }

    /// A subtree rooted at the `i`-th derived seed (offset so that
    /// `subtree(i).child(j) != child(k)` collisions are not structural).
    pub fn subtree(&self, i: u64) -> SeedTree {
        SeedTree {
            root: self.child(i) ^ 0x5851_F42D_4C95_7F2D,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_distinct() {
        let mut g = SplitMix64::new(0);
        let a = g.next_u64();
        let b = g.next_u64();
        let c = g.next_u64();
        assert_ne!(a, b);
        assert_ne!(b, c);
        // Known first output of SplitMix64 with seed 0.
        assert_eq!(a, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn children_look_independent() {
        let tree = SeedTree::new(123);
        let seeds: Vec<u64> = (0..1000).map(|i| tree.child(i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "child seed collision");
        // Crude bit balance check on the low bit.
        let ones = seeds.iter().filter(|s| *s & 1 == 1).count();
        assert!((400..600).contains(&ones), "low-bit bias: {ones}");
    }

    #[test]
    fn subtrees_do_not_collide_with_children() {
        let tree = SeedTree::new(9);
        let children: std::collections::HashSet<u64> = (0..100).map(|i| tree.child(i)).collect();
        for i in 0..100 {
            for j in 0..10 {
                assert!(!children.contains(&tree.subtree(i).child(j)));
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(SeedTree::new(5).child(17), SeedTree::new(5).child(17));
        assert_eq!(
            SeedTree::new(5).subtree(3).child(2),
            SeedTree::new(5).subtree(3).child(2)
        );
    }
}
