//! # sociolearn-sim
//!
//! Experiment machinery: deterministic seed derivation, single-run
//! execution, parallel replication, parameter sweeps, and aggregation
//! of regret/share curves with confidence intervals.
//!
//! Everything in the reproduction suite is driven from explicit `u64`
//! seeds through [`SeedTree`], so every number in `EXPERIMENTS.md` is
//! reproducible from the seed printed next to it.
//!
//! # Example
//!
//! ```
//! use sociolearn_core::{BernoulliRewards, FinitePopulation, Params};
//! use sociolearn_sim::{replicate, run_one, RunConfig};
//!
//! let params = Params::new(3, 0.6)?;
//! let cfg = RunConfig::new(params.min_horizon());
//! let results = replicate(8, 42, |seed| {
//!     run_one(
//!         FinitePopulation::new(params, 1_000),
//!         BernoulliRewards::one_good(3, 0.9).unwrap(),
//!         &cfg,
//!         seed,
//!     )
//! });
//! assert_eq!(results.len(), 8);
//! # Ok::<(), sociolearn_core::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod measure;
mod parallel;
mod pool;
mod runner;
mod seeds;
mod sweep;

pub use measure::{aggregate_curves, final_values, AggregatedCurve, CurvePoints};
pub use parallel::{parallel_map, replicate};
pub use pool::WorkerPool;
pub use runner::{run_one, Replication, RunConfig};
pub use seeds::{SeedTree, SplitMix64};
pub use sweep::{grid2, grid3};
