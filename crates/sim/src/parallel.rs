//! Thread-pool parallel execution with deterministic seeding.

use crate::seeds::SeedTree;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a scoped thread pool (one thread per
/// available core, capped by the item count). Order of results matches
/// the input order.
///
/// # Example
///
/// ```
/// let squares = sociolearn_sim::parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work mutex poisoned")
                    .take()
                    .expect("each slot consumed once");
                let out = f(item);
                *results[i].lock().expect("result mutex poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Runs `reps` independent replications of `f` in parallel, passing
/// each a deterministic seed derived from `base_seed`. Results come
/// back in replication order regardless of scheduling.
///
/// # Example
///
/// ```
/// let outs = sociolearn_sim::replicate(4, 99, |seed| seed);
/// let again = sociolearn_sim::replicate(4, 99, |seed| seed);
/// assert_eq!(outs, again); // deterministic seed derivation
/// ```
pub fn replicate<R, F>(reps: u64, base_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let tree = SeedTree::new(base_seed);
    let seeds: Vec<u64> = (0..reps).map(|i| tree.child(i)).collect();
    parallel_map(seeds, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..500u32).collect(), |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![5], |x| x + 1), vec![6]);
    }

    #[test]
    fn replicate_seeds_distinct_and_stable() {
        let seeds = replicate(32, 7, |s| s);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 32);
        assert_eq!(seeds, replicate(32, 7, |s| s));
        assert_ne!(seeds, replicate(32, 8, |s| s));
    }

    #[test]
    fn actually_runs_concurrently_or_at_least_correctly() {
        // Heavier closure to exercise the pool; correctness check only.
        let out = parallel_map((0..64u64).collect(), |x| {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i * x);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 0);
    }
}
