//! Thread-pool parallel execution with deterministic seeding.

use crate::seeds::SeedTree;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many work chunks each thread's share of the input is split
/// into. Oversubscription lets the stealing cursor rebalance
/// heterogeneous item costs while keeping the number of handoff cells
/// O(threads), independent of the item count.
const CHUNKS_PER_THREAD: usize = 8;

/// Applies `f` to every item on a scoped thread pool (one thread per
/// available core, capped by the item count). Order of results matches
/// the input order.
///
/// Work is handed out as disjoint chunks: each chunk pairs an owned
/// slice of the input with the exclusive `&mut` window of the result
/// vector it fills, claimed through a single atomic cursor. Workers
/// therefore write results straight into their final, input-ordered
/// slots with no per-item locking — the only synchronization on the
/// hot path is one `fetch_add` plus one handoff-cell lock per *chunk*.
///
/// A panic in `f` propagates to the caller once all workers have
/// stopped, exactly like a panic in a plain `std::thread::scope`.
///
/// # Example
///
/// ```
/// let squares = sociolearn_sim::parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    // Pair each owned input chunk with the disjoint result window it
    // fills. The `Mutex<Option<..>>` is only the one-shot handoff cell
    // a worker takes the pair through after winning the chunk index on
    // the cursor — it is locked exactly once per chunk, never per item.
    type Chunk<'a, T, R> = Mutex<Option<(Vec<T>, &'a mut [Option<R>])>>;
    let mut input = items.into_iter();
    let work: Vec<Chunk<'_, T, R>> = slots
        .chunks_mut(chunk_len)
        .map(|out| {
            let chunk: Vec<T> = input.by_ref().take(out.len()).collect();
            Mutex::new(Some((chunk, out)))
        })
        .collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= work.len() {
                    break;
                }
                let (chunk, out) = work[c]
                    .lock()
                    .expect("work cell poisoned")
                    .take()
                    .expect("each chunk claimed once");
                for (item, slot) in chunk.into_iter().zip(out) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    // Release the borrows of `slots` before consuming it.
    drop(work);
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Runs `reps` independent replications of `f` in parallel, passing
/// each a deterministic seed derived from `base_seed`. Results come
/// back in replication order regardless of scheduling.
///
/// # Example
///
/// ```
/// let outs = sociolearn_sim::replicate(4, 99, |seed| seed);
/// let again = sociolearn_sim::replicate(4, 99, |seed| seed);
/// assert_eq!(outs, again); // deterministic seed derivation
/// ```
pub fn replicate<R, F>(reps: u64, base_seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let tree = SeedTree::new(base_seed);
    let seeds: Vec<u64> = (0..reps).map(|i| tree.child(i)).collect();
    parallel_map(seeds, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..500u32).collect(), |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![5], |x| x + 1), vec![6]);
    }

    #[test]
    fn replicate_seeds_distinct_and_stable() {
        let seeds = replicate(32, 7, |s| s);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 32);
        assert_eq!(seeds, replicate(32, 7, |s| s));
        assert_ne!(seeds, replicate(32, 8, |s| s));
    }

    #[test]
    fn order_pinned_under_contended_heterogeneous_load() {
        // Regression for the de-locked work distribution: item costs
        // span three orders of magnitude and the expensive ones are
        // front-loaded, so chunks finish far out of claim order and
        // the stealing cursor constantly rebalances. Results must
        // still come back in exact input order.
        fn cook(i: u64) -> (u64, u64) {
            let spins = if i.is_multiple_of(7) { 20_000 } else { 20 };
            let mut acc = i;
            for k in 0..spins {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(k);
            }
            (i, acc)
        }
        let n = 2_000u64;
        let out = parallel_map((0..n).collect(), cook);
        let expected: Vec<(u64, u64)> = (0..n).map(cook).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..100u32).collect::<Vec<_>>(), |x| {
                assert_ne!(x, 57, "boom");
                x
            })
        });
        assert!(caught.is_err(), "a panicking worker must fail the map");
    }

    #[test]
    fn actually_runs_concurrently_or_at_least_correctly() {
        // Heavier closure to exercise the pool; correctness check only.
        let out = parallel_map((0..64u64).collect(), |x| {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i * x);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 0);
    }
}
