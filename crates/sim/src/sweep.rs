//! Cartesian parameter sweeps.

/// Cartesian product of two parameter lists, row-major.
///
/// ```
/// let pts = sociolearn_sim::grid2(&[1, 2], &["a", "b"]);
/// assert_eq!(pts, vec![(1, "a"), (1, "b"), (2, "a"), (2, "b")]);
/// ```
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three parameter lists, row-major.
///
/// ```
/// let pts = sociolearn_sim::grid3(&[1], &[2, 3], &[4]);
/// assert_eq!(pts, vec![(1, 2, 4), (1, 3, 4)]);
/// ```
pub fn grid3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_sizes() {
        assert_eq!(grid2(&[1, 2, 3], &[4, 5]).len(), 6);
        assert!(grid2::<u8, u8>(&[], &[1]).is_empty());
    }

    #[test]
    fn grid3_order() {
        let pts = grid3(&[1, 2], &[10], &[100, 200]);
        assert_eq!(
            pts,
            vec![(1, 10, 100), (1, 10, 200), (2, 10, 100), (2, 10, 200)]
        );
    }
}
