//! Aggregation of per-replication measurements.

use sociolearn_core::RegretCurve;
use sociolearn_stats::{OnlineStats, Summary};

/// A polyline of `(x, y)` points, ready for plotting.
pub type CurvePoints = Vec<(f64, f64)>;

/// A mean ± CI curve aggregated across replications.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedCurve {
    /// Shared horizons.
    pub horizons: Vec<u64>,
    /// Mean value at each horizon.
    pub means: Vec<f64>,
    /// Normal-approximation 95% half-widths.
    pub ci_half: Vec<f64>,
}

impl AggregatedCurve {
    /// `(horizon, mean)` points for plotting.
    pub fn mean_points(&self) -> CurvePoints {
        self.horizons
            .iter()
            .zip(&self.means)
            .map(|(&t, &v)| (t as f64, v))
            .collect()
    }

    /// `(horizon, mean + half)` and `(horizon, mean − half)` band
    /// curves.
    pub fn band(&self) -> (CurvePoints, CurvePoints) {
        let hi = self
            .horizons
            .iter()
            .zip(self.means.iter().zip(&self.ci_half))
            .map(|(&t, (&m, &h))| (t as f64, m + h))
            .collect();
        let lo = self
            .horizons
            .iter()
            .zip(self.means.iter().zip(&self.ci_half))
            .map(|(&t, (&m, &h))| (t as f64, m - h))
            .collect();
        (hi, lo)
    }

    /// The final mean value.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty.
    pub fn final_mean(&self) -> f64 {
        *self.means.last().expect("aggregated curve is empty")
    }
}

/// Aggregates replication curves that share the same horizon grid.
///
/// # Panics
///
/// Panics if the list is empty or the horizon grids differ.
pub fn aggregate_curves(curves: &[RegretCurve]) -> AggregatedCurve {
    assert!(!curves.is_empty(), "no curves to aggregate");
    let horizons = curves[0].horizons.clone();
    for c in curves {
        assert_eq!(c.horizons, horizons, "curves have mismatched horizon grids");
    }
    let mut means = Vec::with_capacity(horizons.len());
    let mut ci_half = Vec::with_capacity(horizons.len());
    for i in 0..horizons.len() {
        let mut acc = OnlineStats::new();
        for c in curves {
            acc.push(c.values[i]);
        }
        means.push(acc.mean());
        ci_half.push(if acc.count() >= 2 {
            acc.ci_half_width(0.95)
        } else {
            0.0
        });
    }
    AggregatedCurve {
        horizons,
        means,
        ci_half,
    }
}

/// Summary of the final value of each curve (one number per
/// replication).
///
/// # Panics
///
/// Panics if the list is empty or any curve is empty.
pub fn final_values(curves: &[RegretCurve]) -> Summary {
    assert!(!curves.is_empty(), "no curves");
    let finals: Vec<f64> = curves
        .iter()
        .map(|c| c.last_value().expect("curve has no points"))
        .collect();
    Summary::from_slice(&finals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(vals: &[f64]) -> RegretCurve {
        let mut c = RegretCurve::new();
        for (i, &v) in vals.iter().enumerate() {
            c.push((i as u64 + 1) * 10, v);
        }
        c
    }

    #[test]
    fn aggregate_means() {
        let a = curve(&[1.0, 2.0]);
        let b = curve(&[3.0, 4.0]);
        let agg = aggregate_curves(&[a, b]);
        assert_eq!(agg.horizons, vec![10, 20]);
        assert_eq!(agg.means, vec![2.0, 3.0]);
        assert_eq!(agg.final_mean(), 3.0);
        assert!(agg.ci_half[0] > 0.0);
        let (hi, lo) = agg.band();
        assert!(hi[0].1 > lo[0].1);
    }

    #[test]
    fn single_curve_zero_ci() {
        let agg = aggregate_curves(&[curve(&[5.0])]);
        assert_eq!(agg.ci_half, vec![0.0]);
        assert_eq!(agg.mean_points(), vec![(10.0, 5.0)]);
    }

    #[test]
    fn final_values_summary() {
        let s = final_values(&[curve(&[1.0, 10.0]), curve(&[1.0, 20.0])]);
        assert_eq!(s.mean(), 15.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatched horizon")]
    fn mismatched_grids_rejected() {
        let a = curve(&[1.0]);
        let b = curve(&[1.0, 2.0]);
        aggregate_curves(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "no curves")]
    fn empty_rejected() {
        aggregate_curves(&[]);
    }
}
